#!/usr/bin/env bash
# Repository hygiene gate: formatting and lints, exactly as CI would run
# them. Fails on any diff or warning.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ok: formatting clean, no lints"
