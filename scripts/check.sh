#!/usr/bin/env bash
# Repository hygiene gate: formatting, lints, the runner determinism
# suite, and a serial-vs-parallel smoke pass of the combined acceptance
# harness. Fails on any diff, warning, test failure, or byte divergence
# between --jobs 1 and --jobs N output.
#
# `--bench` additionally runs the perf section: the queue_bench fig4
# golden-digest smoke, the cluster_study byte-identity gate, and the
# wall-time regression gate (`bench_gate`) over a fresh BENCH_runner.json
# versus the committed trajectory. Set XC_BENCH_GATE=off to disarm the
# regression comparison on timing-noisy hosts (the byte gates still run).
set -euo pipefail
cd "$(dirname "$0")/.."

bench=0
for arg in "$@"; do
    case "$arg" in
        --bench) bench=1 ;;
        *) echo "usage: $0 [--bench]" >&2; exit 2 ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets incl. feature-gated code, warnings are errors) =="
cargo clippy --workspace --all-targets \
    --features xc-sim/proptest,xc-workloads/proptest,xc-faults/proptest,xc-verify/proptest,xc-verify/profile \
    -- -D warnings

echo "== runner determinism suite =="
cargo test -q -p xc-bench --test determinism

echo "== all_experiments --jobs 1 vs --jobs N smoke pass =="
cargo build -q --release -p xc-bench --bin all_experiments
bin=target/release/all_experiments
jobs=$(nproc 2>/dev/null || echo 4)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

t0=$(date +%s.%N)
"$bin" --jobs 1 >"$tmp/serial.out"
t1=$(date +%s.%N)
cp results/all_experiments.json "$tmp/serial.json"
"$bin" --jobs "$jobs" >"$tmp/parallel.out"
t2=$(date +%s.%N)
cp results/all_experiments.json "$tmp/parallel.json"

if ! diff -q "$tmp/serial.out" "$tmp/parallel.out" >/dev/null; then
    echo "FAIL: all_experiments stdout diverges between --jobs 1 and --jobs $jobs" >&2
    diff "$tmp/serial.out" "$tmp/parallel.out" >&2 || true
    exit 1
fi
if ! diff -q "$tmp/serial.json" "$tmp/parallel.json" >/dev/null; then
    echo "FAIL: results/all_experiments.json diverges between --jobs 1 and --jobs $jobs" >&2
    exit 1
fi
awk -v s="$t0" -v m="$t1" -v p="$t2" -v j="$jobs" 'BEGIN {
    printf "ok: identical output at --jobs 1 (%.1fs) and --jobs %s (%.1fs, incl. serial self-check)\n",
        m - s, j, p - m
}'

echo "== chaos_study --quick --jobs 1 vs --jobs N byte-identity gate =="
cargo build -q --release -p xc-bench --bin chaos_study
target/release/chaos_study --quick --jobs 1 >"$tmp/chaos-serial.out"
cp results/chaos.json "$tmp/chaos-serial.json"
target/release/chaos_study --quick --jobs "$jobs" >"$tmp/chaos-parallel.out"
cp results/chaos.json "$tmp/chaos-parallel.json"
if ! diff -q "$tmp/chaos-serial.out" "$tmp/chaos-parallel.out" >/dev/null; then
    echo "FAIL: chaos_study stdout diverges between --jobs 1 and --jobs $jobs" >&2
    diff "$tmp/chaos-serial.out" "$tmp/chaos-parallel.out" >&2 || true
    exit 1
fi
if ! diff -q "$tmp/chaos-serial.json" "$tmp/chaos-parallel.json" >/dev/null; then
    echo "FAIL: results/chaos.json diverges between --jobs 1 and --jobs $jobs" >&2
    exit 1
fi
if grep -q "VIOLATED" "$tmp/chaos-serial.out"; then
    echo "FAIL: chaos_study reports a conservation violation" >&2
    exit 1
fi
echo "ok: chaos sweep byte-identical at --jobs 1 and --jobs $jobs, all ledgers balanced"

echo "== panic isolation smoke: a poisoned cell must not abort the grid =="
cargo test -q -p xc-bench --test determinism panicking_cell_is_isolated_from_the_grid

echo "== coverage regression gate: verify_lint --quick (golden digest, coverage floor, Unknown ceiling) =="
cargo build -q --release -p xc-bench --bin verify_lint
target/release/verify_lint --quick

echo "== crash-safety smoke: interrupted cluster_study --quick resumes byte-identically =="
# Reference run, then a journaled run halted mid-grid (exit 3 = resumable),
# then --resume; the merged output and findings ledger must byte-match the
# uninterrupted run and the retired journal must be gone (DESIGN.md §4j).
# Pinned to --jobs 2 so --halt-after 8 always leaves cells for the resume.
cargo build -q --release -p xc-bench --bin cluster_study
target/release/cluster_study --quick --jobs 2 >"$tmp/resume-ref.out"
cp results/cluster.json "$tmp/resume-ref.json"
rc=0
target/release/cluster_study --quick --jobs 2 --fresh --halt-after 8 \
    >"$tmp/resume-halt.out" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: halted cluster_study exited $rc (want 3, the resumable status)" >&2
    exit 1
fi
target/release/cluster_study --quick --jobs 2 --resume >"$tmp/resume.out"
cp results/cluster.json "$tmp/resume.json"
if ! diff -q "$tmp/resume-ref.out" "$tmp/resume.out" >/dev/null; then
    echo "FAIL: resumed cluster_study stdout differs from an uninterrupted run" >&2
    diff "$tmp/resume-ref.out" "$tmp/resume.out" >&2 || true
    exit 1
fi
if ! diff -q "$tmp/resume-ref.json" "$tmp/resume.json" >/dev/null; then
    echo "FAIL: resumed results/cluster.json differs from an uninterrupted run" >&2
    exit 1
fi
if [ -e results/.journal/cluster_study_quick/cells.jsonl ]; then
    echo "FAIL: completed resume left its journal behind" >&2
    exit 1
fi
echo "ok: interrupted run resumed to byte-identical output, journal retired"

if [ "$bench" -eq 1 ]; then
    # Snapshot the committed trajectory before the perf section's
    # harness runs rewrite BENCH_runner.json in place.
    git show HEAD:BENCH_runner.json >"$tmp/bench-baseline.json" 2>/dev/null \
        || cp BENCH_runner.json "$tmp/bench-baseline.json"

    echo "== cluster_study --quick --jobs 1 vs --jobs N byte-identity gate =="
    cargo build -q --release -p xc-bench --bin cluster_study
    target/release/cluster_study --quick --jobs 1 >"$tmp/cluster-serial.out"
    cp results/cluster.json "$tmp/cluster-serial.json"
    target/release/cluster_study --quick --jobs "$jobs" >"$tmp/cluster-parallel.out"
    cp results/cluster.json "$tmp/cluster-parallel.json"
    if ! diff -q "$tmp/cluster-serial.out" "$tmp/cluster-parallel.out" >/dev/null; then
        echo "FAIL: cluster_study stdout diverges between --jobs 1 and --jobs $jobs" >&2
        diff "$tmp/cluster-serial.out" "$tmp/cluster-parallel.out" >&2 || true
        exit 1
    fi
    if ! diff -q "$tmp/cluster-serial.json" "$tmp/cluster-parallel.json" >/dev/null; then
        echo "FAIL: results/cluster.json diverges between --jobs 1 and --jobs $jobs" >&2
        exit 1
    fi
    echo "ok: cluster study byte-identical at --jobs 1 and --jobs $jobs"

    echo "== perf smoke: queue_bench --quick (fig4 golden digest gate) =="
    cargo build -q --release -p xc-bench --bin queue_bench
    target/release/queue_bench --quick --sparse

    echo "== perf regression gate: fresh wall times vs committed BENCH_runner.json =="
    cargo build -q --release -p xc-bench --bin fig3_macro --bin cluster_study --bin bench_gate
    # Refresh the gated harnesses at the jobs values the committed
    # trajectory was recorded at, so the gate compares like with like
    # (each binary records the --jobs it actually ran with).
    target/release/fig3_macro --jobs 2 >/dev/null
    target/release/all_experiments --jobs 2 >/dev/null
    target/release/cluster_study --jobs 1 >/dev/null
    target/release/chaos_study --jobs 1 >/dev/null
    target/release/verify_lint --jobs 1 >/dev/null
    target/release/bench_gate --baseline "$tmp/bench-baseline.json"
    echo "ok: perf section green (byte gates, fig4 digest, wall-time budget)"
fi

echo "ok: formatting clean, no lints, deterministic at any --jobs, fault-tolerant runner, lint coverage at floor"
