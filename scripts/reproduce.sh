#!/usr/bin/env bash
# Regenerates every table and figure of the X-Containers evaluation and
# collects machine-readable results under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace

for bin in table1 fig3_macro fig4_syscall fig5_micro fig6_libos \
           fig8_scalability fig9_loadbalance spawn_time ablations \
           security_matrix rdma_study verify_study verify_lint \
           chaos_study cluster_study; do
  echo
  echo "================ $bin ================"
  cargo run -q --release -p xc-bench --bin "$bin"
done

echo
echo "================ acceptance pass ================"
cargo run -q --release -p xc-bench --bin all_experiments
echo "JSON results in results/"
