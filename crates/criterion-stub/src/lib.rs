//! # xc-criterion-stub — an offline subset of the `criterion` API
//!
//! The workspace's `cargo bench` targets were written against
//! [criterion](https://crates.io/crates/criterion), which cannot be
//! fetched in registry-less environments. This crate provides the small
//! slice those benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock timing loop instead of criterion's statistical engine.
//!
//! Timings are printed as `name ... median ns/iter` so regressions are
//! still eyeballable; swap the workspace dependency back to real
//! criterion for publication-grade numbers.

#![forbid(unsafe_code)]

use std::time::Instant;

/// How batched setup output is sized (accepted for API compatibility;
/// the stub always runs one setup per measured batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: criterion would batch many per allocation.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` over a fixed sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run_samples(|| {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            elapsed.as_secs_f64()
        });
    }

    /// Time `routine` on fresh input from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            elapsed.as_secs_f64()
        });
    }

    fn run_samples<F: FnMut() -> f64>(&mut self, mut sample: F) {
        const WARMUP: usize = 3;
        const BUDGET_SECS: f64 = 0.25;
        const MAX_SAMPLES: usize = 2_000;
        for _ in 0..WARMUP {
            sample();
        }
        let started = Instant::now();
        while self.samples.len() < MAX_SAMPLES
            && (self.samples.len() < 10 || started.elapsed().as_secs_f64() < BUDGET_SECS)
        {
            self.samples.push(sample());
        }
    }

    fn median_nanos(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.samples[self.samples.len() / 2] * 1e9
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark and print its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        let median = bencher.median_nanos();
        let (value, unit) = if median >= 1e6 {
            (median / 1e6, "ms")
        } else if median >= 1e3 {
            (median / 1e3, "µs")
        } else {
            (median, "ns")
        };
        println!(
            "{name:<50} {value:>10.2} {unit}/iter ({} samples)",
            bencher.samples.len()
        );
        self
    }
}

/// Bundle benchmark functions into one group runner, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut c = Criterion::default();
        let mut iters = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)))
            .bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u8; 16],
                    |v| {
                        iters += 1;
                        v.len()
                    },
                    BatchSize::SmallInput,
                )
            });
        assert!(iters > 0);
    }

    criterion_group!(smoke, run_one);

    fn run_one(c: &mut Criterion) {
        c.bench_function("group-member", |b| b.iter(|| 0u8));
    }

    #[test]
    fn group_macro_produces_runner() {
        smoke();
    }
}
