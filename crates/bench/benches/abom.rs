//! Criterion benchmarks for the ABOM pipeline: pattern recognition,
//! online patching, interpreted wrapper execution, and the offline
//! detour tool.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use xcontainers::abom::binaries::{
    glibc_wrapper_image, invoke, library_image, WrapperSpec, WrapperStyle,
};
use xcontainers::abom::offline::OfflinePatcher;
use xcontainers::abom::patcher::Abom;
use xcontainers::abom::patterns::recognize;
use xcontainers::prelude::*;

fn pattern_recognition(c: &mut Criterion) {
    let image = glibc_wrapper_image(1);
    let syscall_addr = image.symbol("wrapper").unwrap() + 5;
    c.bench_function("abom/recognize_case1", |b| {
        b.iter(|| black_box(recognize(&image, syscall_addr)))
    });
}

fn online_patch(c: &mut Criterion) {
    c.bench_function("abom/patch_case1", |b| {
        b.iter_batched(
            || (glibc_wrapper_image(1), Abom::new()),
            |(mut image, mut abom)| {
                let at = image.symbol("wrapper").unwrap() + 5;
                black_box(abom.on_syscall_trap(&mut image, at))
            },
            BatchSize::SmallInput,
        )
    });
}

fn interpreted_execution(c: &mut Criterion) {
    c.bench_function("abom/warm_wrapper_invocation", |b| {
        let mut image = glibc_wrapper_image(1);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        // Warm: first invocation patches.
        invoke(&mut image, &mut kernel, entry, None).unwrap();
        b.iter(|| {
            invoke(&mut image, &mut kernel, entry, None).unwrap();
            black_box(kernel.stats().via_function_call)
        })
    });
}

fn offline_tool(c: &mut Criterion) {
    let specs: Vec<WrapperSpec> = (0..32)
        .map(|index| WrapperSpec {
            index,
            style: if index % 3 == 0 {
                WrapperStyle::PthreadCancellable
            } else {
                WrapperStyle::GlibcSmall
            },
            nr: index as u64,
        })
        .collect();
    let image = library_image(&specs);
    c.bench_function("abom/offline_patch_32_wrappers", |b| {
        b.iter(|| {
            black_box(
                OfflinePatcher::new()
                    .patch(&image)
                    .unwrap()
                    .1
                    .total_patched(),
            )
        })
    });
}

criterion_group!(
    benches,
    pattern_recognition,
    online_patch,
    interpreted_execution,
    offline_tool
);
criterion_main!(benches);
