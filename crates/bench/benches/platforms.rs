//! Criterion benchmarks for platform cost evaluation and the closed-loop
//! workload simulator — the paths every figure harness hammers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xcontainers::prelude::*;
use xcontainers::workloads::apps::nginx_static;
use xcontainers::workloads::http::run_closed_loop;
use xcontainers::workloads::scalability::{throughput, ScalabilityConfig};
use xcontainers::workloads::table1::table1_profiles;

fn cost_evaluation(c: &mut Criterion) {
    let costs = CostModel::skylake_cloud();
    let platforms = Platform::cloud_configurations(CloudEnv::GoogleGce);
    c.bench_function("platform/syscall_cost_all_configs", |b| {
        b.iter(|| {
            let total: u64 = platforms
                .iter()
                .map(|p| p.syscall_cost(&costs).as_nanos())
                .sum();
            black_box(total)
        })
    });
    let profile = nginx_static();
    c.bench_function("platform/service_time_nginx", |b| {
        let p = Platform::x_container(CloudEnv::AmazonEc2, true);
        b.iter(|| black_box(profile.service_time(&p, &costs)))
    });
}

fn closed_loop(c: &mut Criterion) {
    let costs = CostModel::skylake_cloud();
    let server = ServerModel {
        platform: Platform::docker(CloudEnv::AmazonEc2, true),
        profile: nginx_static(),
        workers: 4,
        cores: 4,
    };
    c.bench_function("workload/closed_loop_50conn_50ms", |b| {
        b.iter(|| {
            black_box(
                run_closed_loop(&server, &costs, 50, Nanos::from_millis(50), 7).throughput_rps,
            )
        })
    });
}

fn figure_sweeps(c: &mut Criterion) {
    let costs = CostModel::skylake_cloud();
    c.bench_function("workload/fig8_point_n400", |b| {
        b.iter(|| black_box(throughput(ScalabilityConfig::XContainer, 400, &costs)))
    });
    c.bench_function("workload/table1_memcached_2k_syscalls", |b| {
        let profile = table1_profiles().remove(0);
        b.iter(|| black_box(profile.measure(2_000, 42).online_reduction))
    });
}

criterion_group!(benches, cost_evaluation, closed_loop, figure_sweeps);
criterion_main!(benches);
