//! Criterion benchmarks for the simulation substrate: event queue,
//! RNG, histogram, and the two schedulers. These guard the *model's own*
//! performance so figure regeneration stays fast.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use xcontainers::libos::sched::{FairScheduler, WEIGHT_NICE_0};
use xcontainers::prelude::*;
use xcontainers::sim::engine::{EventQueue, Simulation, World};
use xcontainers::xen::sched::CreditScheduler;

struct Chain;
impl World for Chain {
    type Event = u32;
    fn handle(&mut self, _now: Nanos, depth: u32, queue: &mut EventQueue<u32>) {
        if depth > 0 {
            queue.schedule_in(Nanos::from_nanos(10), depth - 1);
        }
    }
}

fn engine(c: &mut Criterion) {
    c.bench_function("engine/10k_chained_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(Chain);
                sim.queue_mut().schedule_at(Nanos::ZERO, 10_000);
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.steps())
            },
            BatchSize::SmallInput,
        )
    });
}

fn rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64", |b| {
        let mut r = Rng::new(7);
        b.iter(|| black_box(r.next_u64()))
    });
    c.bench_function("rng/zipf_1e6", |b| {
        let mut r = Rng::new(7);
        b.iter(|| black_box(r.zipf(1_000_000, 0.9)))
    });
}

fn histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 20));
        })
    });
    c.bench_function("histogram/quantile_p99", |b| {
        let h: Histogram = (1..100_000u64).collect();
        b.iter(|| black_box(h.quantile(0.99)))
    });
}

fn schedulers(c: &mut Criterion) {
    c.bench_function("cfs/pick_account_64_tasks", |b| {
        let mut s = FairScheduler::new();
        for _ in 0..64 {
            let t = s.add_task(WEIGHT_NICE_0);
            s.set_runnable(t, true);
        }
        b.iter(|| {
            let t = s.pick_next().expect("runnable");
            s.account(t, Nanos::from_micros(750));
            black_box(t)
        })
    });
    c.bench_function("credit/tick_400_vcpus_16_pcpus", |b| {
        let mut s = CreditScheduler::new(16);
        for _ in 0..400 {
            let v = s.add_vcpu(256);
            s.set_runnable(v, true).expect("vcpu");
        }
        b.iter(|| black_box(s.tick().len()))
    });
}

fn substrate(c: &mut Criterion) {
    use xcontainers::libos::netdev::VirtualNic;
    use xcontainers::xen::domain::DomainId;

    c.bench_function("netdev/send_poll_reap_batch32", |b| {
        b.iter_batched(
            || VirtualNic::connect(DomainId(3), DomainId(2)).expect("handshake"),
            |mut nic| {
                for i in 0..32u32 {
                    nic.send(&i.to_le_bytes()).expect("send");
                }
                nic.backend_poll().expect("poll");
                black_box(nic.frontend_reap().expect("reap"))
            },
            BatchSize::SmallInput,
        )
    });

    use xcontainers::libos::kernel::GuestKernel;
    use xcontainers::libos::Backend;
    c.bench_function("guest_kernel/pipe_roundtrip", |b| {
        let costs = CostModel::skylake_cloud();
        let mut k = GuestKernel::new(Backend::XKernel, KernelConfig::xlibos_default());
        k.spawn("bench", 100, &costs).expect("spawn");
        let pipe = k.pipe(&costs);
        let mut buf = [0u8; 64];
        b.iter(|| {
            k.write_pipe(pipe, &[1u8; 64], &costs).expect("write");
            black_box(k.read_pipe(pipe, &mut buf, &costs).expect("read"))
        })
    });
}

criterion_group!(benches, engine, rng, histogram, schedulers, substrate);
criterion_main!(benches);
