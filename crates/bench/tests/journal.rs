//! Crash-safety contract, end to end (DESIGN.md §4j): an interrupted
//! journaled harness run, resumed, must render byte-identical output to
//! an uninterrupted run — and a damaged journal must degrade to partial
//! re-execution, never to a panic or to different bytes.
//!
//! These tests drive the real harness entry points
//! ([`cluster::run_journaled`], [`chaos::run_journaled`]) against
//! throwaway journal roots, interrupting via `--halt-after` semantics
//! (`ResumeArgs::halt_after`) rather than signals so they stay
//! process-local and parallel-safe.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use xc_bench::findings_json;
use xc_bench::harness::{chaos, cluster, Journaled};
use xc_bench::journal::{ResumeArgs, ResumeMode};
use xc_bench::runner::Runner;

/// A process-unique throwaway journal root under the OS temp dir.
fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xc-journal-it-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp journal root");
    dir
}

fn resume_args(mode: ResumeMode, halt_after: Option<usize>) -> ResumeArgs {
    ResumeArgs {
        mode,
        halt_after,
        max_wall: None,
    }
}

/// Interrupt a quick cluster study partway, resume it, and demand the
/// merged output — text and serialized findings — is byte-identical to
/// a straight (journal-free) run. This is the acceptance criterion for
/// the whole subsystem.
#[test]
fn interrupted_cluster_resume_matches_a_straight_run() {
    let runner = Runner::new(2);
    let straight = cluster::run(&runner, true);

    let root = temp_root("cluster-resume");
    let halted = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Resume, Some(4)),
    )
    .expect("journaled run");
    let completed = match halted {
        Journaled::Interrupted { completed, total } => {
            assert!(completed >= 4, "halt-after floor respected");
            assert!(completed < total, "halt left work for the resume");
            completed
        }
        Journaled::Complete { .. } => panic!("halt-after 4 must interrupt the quick grid"),
    };

    let resumed = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Resume, None),
    )
    .expect("resumed run");
    match resumed {
        Journaled::Complete {
            out,
            replayed,
            executed,
        } => {
            assert_eq!(replayed, completed, "every checkpointed cell replays");
            assert!(executed > 0, "the resume executes the remainder");
            assert_eq!(out.text, straight.text, "resumed text diverged");
            assert_eq!(
                findings_json(&out.findings),
                findings_json(&straight.findings),
                "resumed findings diverged"
            );
        }
        Journaled::Interrupted { .. } => panic!("unbounded resume must complete"),
    }
    assert!(
        !root
            .join("cluster_study_quick")
            .join("cells.jsonl")
            .exists(),
        "a completed run removes its journal"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Corrupt the checkpointed journal's tail (a torn final record, the
/// shape a crash mid-append leaves) between the interruption and the
/// resume: the resume re-executes the damaged cells and still renders
/// byte-identical output.
#[test]
fn corrupted_journal_tail_degrades_to_reexecution_not_divergence() {
    let runner = Runner::new(2);
    let straight = cluster::run(&runner, true);

    let root = temp_root("cluster-torn");
    let halted = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Resume, Some(4)),
    )
    .expect("journaled run");
    assert!(matches!(halted, Journaled::Interrupted { .. }));

    // Tear the last record in half, as if the process died mid-append.
    let path = root.join("cluster_study_quick").join("cells.jsonl");
    let body = std::fs::read_to_string(&path).expect("journal exists after interruption");
    assert!(body.ends_with('\n'), "intact journals end with a newline");
    let torn = &body[..body.len() - body.len().min(20)];
    std::fs::write(&path, torn).expect("tear the journal tail");

    let resumed = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Resume, None),
    )
    .expect("resume over a torn journal");
    match resumed {
        Journaled::Complete { out, .. } => {
            assert_eq!(out.text, straight.text, "torn-tail resume diverged");
            assert_eq!(
                findings_json(&out.findings),
                findings_json(&straight.findings)
            );
        }
        Journaled::Interrupted { .. } => panic!("unbounded resume must complete"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// `--fresh` discards a prior journal: nothing replays, every cell
/// executes, and the output still matches a straight run.
#[test]
fn fresh_discards_the_prior_journal_and_reruns_everything() {
    let runner = Runner::new(2);
    let straight = cluster::run(&runner, true);

    let root = temp_root("cluster-fresh");
    let halted = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Resume, Some(4)),
    )
    .expect("journaled run");
    assert!(matches!(halted, Journaled::Interrupted { .. }));

    let fresh = cluster::run_journaled(
        &runner,
        true,
        &root,
        "cluster_study_quick",
        &resume_args(ResumeMode::Fresh, None),
    )
    .expect("fresh run");
    match fresh {
        Journaled::Complete {
            out,
            replayed,
            executed,
        } => {
            assert_eq!(replayed, 0, "--fresh replays nothing");
            assert_eq!(out.text, straight.text);
            assert!(executed > 0);
        }
        Journaled::Interrupted { .. } => panic!("unbounded fresh run must complete"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The chaos study rides the same seam: an interrupted quick sweep,
/// resumed, renders byte-identical output to a straight run.
#[test]
fn interrupted_chaos_resume_matches_a_straight_run() {
    let runner = Runner::new(2);
    let straight = chaos::run_with(&runner, true, None);

    let root = temp_root("chaos-resume");
    let halted = chaos::run_journaled(
        &runner,
        true,
        None,
        &root,
        "chaos_study_quick",
        &resume_args(ResumeMode::Resume, Some(3)),
    )
    .expect("journaled run");
    assert!(matches!(halted, Journaled::Interrupted { .. }));

    let resumed = chaos::run_journaled(
        &runner,
        true,
        None,
        &root,
        "chaos_study_quick",
        &resume_args(ResumeMode::Resume, None),
    )
    .expect("resumed run");
    match resumed {
        Journaled::Complete { out, replayed, .. } => {
            assert!(replayed >= 3);
            assert_eq!(out.text, straight.text, "resumed chaos text diverged");
            assert_eq!(
                findings_json(&out.findings),
                findings_json(&straight.findings)
            );
        }
        Journaled::Interrupted { .. } => panic!("unbounded resume must complete"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
