//! The runner's core contract: every harness produces byte-identical
//! output at every `--jobs` value. These tests exercise the cheap
//! harnesses end-to-end (text *and* serialized findings) and a reduced
//! verify-study slice, at 1, 2 and 4 workers on whatever host runs the
//! suite — worker count, not host core count, is what the contract
//! quantifies over.

use xc_bench::findings_json;
use xc_bench::harness::{chaos, cluster, fig3, fig4, fig5, fig8, verify_lint, verify_study};
use xc_bench::runner::{RunPolicy, Runner};
use xcontainers::prelude::{ClosedLoopCache, FaultPlan, FaultRates, Histogram, Rng, Summary};

/// Byte-compares one harness's full output across worker counts.
fn assert_jobs_invariant(run: impl Fn(&Runner) -> (String, String)) {
    let (text1, json1) = run(&Runner::new(1));
    for jobs in [2, 4] {
        let (text, json) = run(&Runner::new(jobs));
        assert_eq!(text, text1, "text diverged at --jobs {jobs}");
        assert_eq!(json, json1, "findings diverged at --jobs {jobs}");
    }
}

/// The closed-loop macrobenchmark grid — per-worker shard worlds, one
/// shared memoization cache racing across cells — must still render
/// byte-identically at every worker count: results are a function of
/// the derived cost table alone, never of cache scheduling.
#[test]
fn fig3_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig3::run(r);
        (out.text, findings_json(&out.findings))
    });
}

/// One cache shared across *runs* (the `fig3_macro` persistent-cache
/// shape) must not change a byte either: a warm cache answers from
/// values the cold run computed.
#[test]
fn fig3_shared_cache_is_run_invariant() {
    let cache = ClosedLoopCache::new();
    let cold = fig3::run_with(&Runner::new(2), &cache);
    let warm = fig3::run_with(&Runner::new(2), &cache);
    assert_eq!(cold.text, warm.text);
    assert_eq!(findings_json(&cold.findings), findings_json(&warm.findings));
    let (hits, misses) = warm.cache_stats.expect("fig3 reports cache stats");
    assert_eq!(misses, 0, "a warm cache re-simulates nothing");
    assert!(hits > 0);
}

/// The cluster study's (platform × host-chunk) grid merges
/// [`ClusterResult`]s in host-index order, so the quick configuration
/// must render byte-identically at every worker count.
///
/// [`ClusterResult`]: xcontainers::prelude::ClusterResult
#[test]
fn cluster_quick_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = cluster::run(r, true);
        (out.text, findings_json(&out.findings))
    });
}

#[test]
fn fig4_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig4::run(r);
        (out.text, findings_json(&out.findings))
    });
}

#[test]
fn fig5_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig5::run(r);
        (out.text, findings_json(&out.findings))
    });
}

#[test]
fn fig8_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig8::run(r);
        (out.text, findings_json(&out.findings))
    });
}

/// A reduced verify-study pass (300 syscalls/app instead of 3000) must
/// produce the same stable digest — rendered tables with the wall-time
/// column blanked, plus findings — at every worker count, including the
/// RNG-dependent ablation columns fed by per-cell substreams.
#[test]
fn verify_study_slice_is_jobs_invariant() {
    let digest1 = verify_study::run_with(&Runner::new(1), 300, verify_study::SEED).stable_digest();
    for jobs in [2, 4] {
        let digest =
            verify_study::run_with(&Runner::new(jobs), 300, verify_study::SEED).stable_digest();
        assert_eq!(digest, digest1, "verify study diverged at --jobs {jobs}");
    }
}

/// The lint sweep has no wall-time columns at all, so its full output —
/// table, per-rule counts, rendered findings, machine JSON — must be
/// byte-identical at every worker count.
#[test]
fn verify_lint_is_jobs_invariant() {
    let digest1 = verify_lint::run(&Runner::new(1)).stable_digest();
    for jobs in [2, 4] {
        let digest = verify_lint::run(&Runner::new(jobs)).stable_digest();
        assert_eq!(digest, digest1, "verify lint diverged at --jobs {jobs}");
    }
}

/// The verify-study cache must observe hits (the offline pre-flight
/// re-reads the coverage pass's analysis) at any worker count.
#[test]
fn verify_study_slice_reports_cache_hits() {
    let out = verify_study::run_with(&Runner::new(4), 300, verify_study::SEED);
    assert!(out.cache_hits() > 0, "expected analysis-cache hits");
    assert!(out.cache_hit_rate() > 0.0);
}

/// The chaos sweep — faults, retries, watchdog restarts and all — must
/// be byte-identical at every worker count (the quick grid keeps the
/// suite fast; each cell still runs a full second of simulated time).
#[test]
fn chaos_quick_sweep_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = chaos::run_with(r, true, None);
        (out.text, findings_json(&out.findings))
    });
}

/// Satellite property: a [`FaultPlan`]'s schedule digest is a pure
/// function of `(seed, rates)` — identical when the per-cell digests are
/// computed at 1, 2 or 8 workers, and identical under any shard-merge
/// ordering (here: forward, reverse, and stride-interleaved), because
/// each cell derives its own substreams rather than sharing a cursor.
#[test]
fn fault_plan_schedule_is_jobs_and_merge_order_invariant() {
    const CELLS: usize = 16;
    const DRAWS: u32 = 256;
    let digest_for = |cell: usize| {
        let seed = Rng::substream(2019, cell as u64).next_u64();
        FaultPlan::schedule_digest(seed, FaultRates::scaled(0.01), DRAWS)
    };

    let reference: Vec<u64> = Runner::new(1).run(CELLS, digest_for);
    for jobs in [2, 8] {
        let digests: Vec<u64> = Runner::new(jobs).run(CELLS, digest_for);
        assert_eq!(digests, reference, "digests diverged at --jobs {jobs}");
    }

    // Merge-order independence: computing cells in any order yields the
    // same per-cell digest, so any shard partition merges identically.
    let mut reversed: Vec<(usize, u64)> = (0..CELLS).rev().map(|c| (c, digest_for(c))).collect();
    reversed.sort_by_key(|&(c, _)| c);
    let mut strided: Vec<(usize, u64)> = (0..CELLS)
        .filter(|c| c % 2 == 0)
        .chain((0..CELLS).filter(|c| c % 2 == 1))
        .map(|c| (c, digest_for(c)))
        .collect();
    strided.sort_by_key(|&(c, _)| c);
    for (order, digests) in [("reverse", reversed), ("stride", strided)] {
        let merged: Vec<u64> = digests.into_iter().map(|(_, d)| d).collect();
        assert_eq!(merged, reference, "digests diverged under {order} merge");
    }
}

/// A cell that panics must not take down the rest of the grid: the
/// runner isolates it, retries it, and reports a structured failure
/// while every other cell's result survives — at any worker count.
#[test]
fn panicking_cell_is_isolated_from_the_grid() {
    for jobs in [1, 4] {
        let report = Runner::new(jobs).try_run(6, RunPolicy::default(), |i| {
            assert!(i != 3, "cell 3 always panics");
            i * 10
        });
        assert!(!report.ok());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 3);
        assert!(report.failures[0].message.contains("cell 3 always panics"));
        let got: Vec<Option<usize>> = report.results;
        assert_eq!(
            got,
            vec![Some(0), Some(10), Some(20), None, Some(40), Some(50)],
            "surviving cells diverged at --jobs {jobs}"
        );
    }
}

/// Sharded statistics merge to the same result at every worker count.
#[test]
fn sharded_stats_are_jobs_invariant() {
    let sample_h = |rng: &mut Rng| rng.next_below(1_000_000);
    let sample_s = |rng: &mut Rng| rng.next_f64() * 500.0;
    let h1: Histogram = Runner::new(1).sharded_histogram(8, 10_000, 42, sample_h);
    let s1: Summary = Runner::new(1).sharded_summary(8, 10_000, 42, sample_s);
    for jobs in [2, 4] {
        assert_eq!(
            Runner::new(jobs).sharded_histogram(8, 10_000, 42, sample_h),
            h1
        );
        let s = Runner::new(jobs).sharded_summary(8, 10_000, 42, sample_s);
        assert_eq!(s.count(), s1.count());
        assert_eq!(s.sum().to_bits(), s1.sum().to_bits());
        assert_eq!(s.min().to_bits(), s1.min().to_bits());
        assert_eq!(s.max().to_bits(), s1.max().to_bits());
    }
}
