//! The runner's core contract: every harness produces byte-identical
//! output at every `--jobs` value. These tests exercise the cheap
//! harnesses end-to-end (text *and* serialized findings) and a reduced
//! verify-study slice, at 1, 2 and 4 workers on whatever host runs the
//! suite — worker count, not host core count, is what the contract
//! quantifies over.

use xc_bench::findings_json;
use xc_bench::harness::{fig4, fig5, fig8, verify_study};
use xc_bench::runner::Runner;
use xcontainers::prelude::{Histogram, Rng, Summary};

/// Byte-compares one harness's full output across worker counts.
fn assert_jobs_invariant(run: impl Fn(&Runner) -> (String, String)) {
    let (text1, json1) = run(&Runner::new(1));
    for jobs in [2, 4] {
        let (text, json) = run(&Runner::new(jobs));
        assert_eq!(text, text1, "text diverged at --jobs {jobs}");
        assert_eq!(json, json1, "findings diverged at --jobs {jobs}");
    }
}

#[test]
fn fig4_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig4::run(r);
        (out.text, findings_json(&out.findings))
    });
}

#[test]
fn fig5_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig5::run(r);
        (out.text, findings_json(&out.findings))
    });
}

#[test]
fn fig8_is_jobs_invariant() {
    assert_jobs_invariant(|r| {
        let out = fig8::run(r);
        (out.text, findings_json(&out.findings))
    });
}

/// A reduced verify-study pass (300 syscalls/app instead of 3000) must
/// produce the same stable digest — rendered tables with the wall-time
/// column blanked, plus findings — at every worker count, including the
/// RNG-dependent ablation columns fed by per-cell substreams.
#[test]
fn verify_study_slice_is_jobs_invariant() {
    let digest1 = verify_study::run_with(&Runner::new(1), 300, verify_study::SEED).stable_digest();
    for jobs in [2, 4] {
        let digest =
            verify_study::run_with(&Runner::new(jobs), 300, verify_study::SEED).stable_digest();
        assert_eq!(digest, digest1, "verify study diverged at --jobs {jobs}");
    }
}

/// The verify-study cache must observe hits (the offline pre-flight
/// re-reads the coverage pass's analysis) at any worker count.
#[test]
fn verify_study_slice_reports_cache_hits() {
    let out = verify_study::run_with(&Runner::new(4), 300, verify_study::SEED);
    assert!(out.cache_hits() > 0, "expected analysis-cache hits");
    assert!(out.cache_hit_rate() > 0.0);
}

/// Sharded statistics merge to the same result at every worker count.
#[test]
fn sharded_stats_are_jobs_invariant() {
    let sample_h = |rng: &mut Rng| rng.next_below(1_000_000);
    let sample_s = |rng: &mut Rng| rng.next_f64() * 500.0;
    let h1: Histogram = Runner::new(1).sharded_histogram(8, 10_000, 42, sample_h);
    let s1: Summary = Runner::new(1).sharded_summary(8, 10_000, 42, sample_s);
    for jobs in [2, 4] {
        assert_eq!(
            Runner::new(jobs).sharded_histogram(8, 10_000, 42, sample_h),
            h1
        );
        let s = Runner::new(jobs).sharded_summary(8, 10_000, 42, sample_s);
        assert_eq!(s.count(), s1.count());
        assert_eq!(s.sum().to_bits(), s1.sum().to_bits());
        assert_eq!(s.min().to_bits(), s1.min().to_bits());
        assert_eq!(s.max().to_bits(), s1.max().to_bits());
    }
}
