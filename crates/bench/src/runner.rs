//! Deterministic parallel experiment runner.
//!
//! Every figure in the paper's evaluation is a grid of independent
//! (configuration, seed) cells, and each cell is a *pure function*: the
//! DES engine in `xc-sim` is single-threaded and dependency-free by
//! policy (DESIGN.md §6), so a cell's result depends only on its inputs.
//! That makes the harness layer — not the engine — the right place for
//! parallelism: [`Runner::run`] shards cells across `std::thread::scope`
//! workers and merges results **in cell-index order**, so the merged
//! output is bit-for-bit identical to a serial run at any `--jobs` value.
//!
//! Three properties carry the determinism argument:
//!
//! 1. **Cell purity** — cells share nothing mutable; each owns its world,
//!    RNG, and statistics.
//! 2. **Substream seeding** — a sharded experiment gives shard `i` the
//!    generator [`Rng::substream`]`(seed, i)`, a function of the shard
//!    index alone, never of the executing worker or claim order.
//! 3. **Index-ordered merge** — workers record `(index, result)` pairs;
//!    the merge sorts by index before any fold, so order-sensitive
//!    reducers ([`Histogram::merge`], [`Summary::merge`], report
//!    rendering) see the serial order.
//!
//! The runner also owns the perf trajectory file, `BENCH_runner.json`:
//! each harness upserts a [`BenchEntry`] (wall time, jobs, serial
//! reference time, cache hit rates) through [`record_bench`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use xcontainers::prelude::{json_object, shard_share, Histogram, Json, Rng, Summary};

/// Where harnesses record wall-clock and cache measurements.
pub const BENCH_PATH: &str = "BENCH_runner.json";

/// Environment variable consulted for the worker count when no `--jobs`
/// flag is present. Parsed as strictly as the flag: a malformed or zero
/// value is an error, not a silent fallback.
pub const JOBS_ENV: &str = "XC_JOBS";

/// How [`Runner::try_run`] treats a failing cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Times a panicking (or hard-deadline-busting) cell is attempted
    /// before it is reported as failed (≥ 1; cells are pure, so retries
    /// mainly catch harness bugs that depend on ambient state, e.g.
    /// filesystem races).
    pub max_attempts: u32,
    /// Wall-clock budget per cell. Exceeding it cannot abort the cell —
    /// cells are ordinary closures — but it is flagged on stderr so a
    /// wedged grid is diagnosable. Never affects results.
    pub soft_deadline: Option<Duration>,
    /// Per-cell hard timeout. A cell whose attempt runs longer than
    /// this has its result *discarded* and the attempt counted as
    /// failed — bounded-retry escalation, with the final failure
    /// reported as a [`CellFailure`] with `timed_out` set. Unlike the
    /// soft deadline this can turn a slow-but-correct cell into a
    /// failure, so it trades determinism for liveness: leave it `None`
    /// (the default) for the byte-gated harnesses, and reserve it for
    /// operational sweeps where a wedged cell must not hold the whole
    /// grid's checkpoint hostage.
    pub hard_deadline: Option<Duration>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            max_attempts: 2,
            soft_deadline: None,
            hard_deadline: None,
        }
    }
}

/// One cell that kept panicking (or timing out) through every attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's grid index.
    pub index: usize,
    /// Attempts made.
    pub attempts: u32,
    /// The final panic's message (or the timeout description).
    pub message: String,
    /// Whether the final attempt failed by exceeding
    /// [`RunPolicy::hard_deadline`] rather than panicking.
    pub timed_out: bool,
}

/// Outcome of a fault-tolerant grid run: per-cell results in index
/// order, with failed cells as `None` plus a structured failure record.
#[derive(Debug)]
pub struct RunReport<T> {
    /// `results[i]` is `Some` iff cell `i` succeeded; index order.
    pub results: Vec<Option<T>>,
    /// Failed cells, in index order.
    pub failures: Vec<CellFailure>,
}

impl<T> RunReport<T> {
    /// Whether every cell succeeded.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line-per-cell failure summary (empty string when all passed).
    pub fn failure_summary(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut s = format!(
            "{} of {} cells failed:",
            self.failures.len(),
            self.results.len()
        );
        for f in &self.failures {
            s.push_str(&format!(
                "\n  cell {} ({} attempt{}): {}",
                f.index,
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.message
            ));
        }
        s
    }

    /// Unwraps into the plain result vector.
    ///
    /// # Errors
    ///
    /// The failure summary, if any cell failed.
    pub fn into_results(self) -> Result<Vec<T>, String> {
        if self.ok() {
            Ok(self.results.into_iter().flatten().collect())
        } else {
            Err(self.failure_summary())
        }
    }
}

/// Cooperative control surface for [`Runner::try_run_ctl`]: a
/// cancellation predicate checked before each cell claim, and a
/// success observer invoked from worker threads as cells complete (in
/// completion order, not index order — observers that care about order
/// must key on the index they are handed).
pub struct RunCtl<'a, T> {
    /// Checked before every claim; `true` stops further claims while
    /// in-flight cells finish gracefully.
    pub should_stop: &'a (dyn Fn() -> bool + Sync),
    /// Called with `(index, &result)` for each successful cell.
    pub on_success: &'a (dyn Fn(usize, &T) + Sync),
}

impl<'a, T> RunCtl<'a, T> {
    /// A control surface that never cancels and observes nothing — the
    /// plain [`Runner::try_run`] behavior.
    pub fn never_stopping() -> Self {
        RunCtl {
            should_stop: &|| false,
            on_success: &|_, _| (),
        }
    }
}

/// Outcome of a cancellable grid run.
#[derive(Debug)]
pub struct CtlReport<T> {
    /// Per-cell results; a cell skipped by cancellation is `None` with
    /// no matching [`CellFailure`].
    pub report: RunReport<T>,
    /// Cells never claimed because the run was cancelled.
    pub unrun: usize,
}

/// A deterministic parallel cell executor (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1;
    /// `1` is the legacy serial path — no threads are spawned).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// A runner configured from the process arguments: `--jobs N`,
    /// `--jobs=N` or `-j N`; then the [`JOBS_ENV`] environment variable;
    /// then the host's available parallelism. Malformed or zero values
    /// from either source are a usage error (exit 2), never silently
    /// clamped — a typo'd worker count should fail loudly, not run a
    /// multi-minute sweep at the wrong width.
    pub fn from_args() -> Self {
        let env = std::env::var(JOBS_ENV).ok();
        match jobs_from(std::env::args().skip(1), env.as_deref()) {
            Ok(jobs) => Runner::new(jobs),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Worker count this runner shards across.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluates `cell(i)` for `i in 0..cells` and returns the results in
    /// index order — identically at every worker count.
    ///
    /// # Panics
    ///
    /// A panicking cell no longer takes the whole grid down mid-flight:
    /// every other cell still runs to completion ([`Runner::try_run`]
    /// with the default [`RunPolicy`]), and only then does the runner
    /// panic with a structured per-cell report naming each failed index
    /// and its panic message.
    pub fn run<T, F>(&self, cells: usize, cell: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self
            .try_run(cells, RunPolicy::default(), cell)
            .into_results()
        {
            Ok(results) => results,
            Err(summary) => panic!("{summary}"),
        }
    }

    /// Fault-isolating grid run: evaluates `cell(i)` for `i in 0..cells`
    /// under `policy`, catching per-cell panics so one bad cell cannot
    /// poison its worker's remaining claims. Results come back in index
    /// order with failures recorded per cell — identically at every
    /// worker count (retries and deadlines are wall-clock concerns and
    /// never alter a successful cell's value).
    pub fn try_run<T, F>(&self, cells: usize, policy: RunPolicy, cell: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let ctl = RunCtl::never_stopping();
        let ctl_report = self.try_run_ctl(cells, policy, ctl, cell);
        debug_assert_eq!(
            ctl_report.unrun, 0,
            "an uncancellable run cannot stop early"
        );
        ctl_report.report
    }

    /// The generalized grid run every other entry point reduces to:
    /// like [`Runner::try_run`], but with a cooperative cancellation
    /// check consulted before each cell claim and a per-success observer
    /// invoked from the executing worker the moment a cell completes —
    /// the seam the crash-safe journal ([`crate::journal`]) hooks to
    /// checkpoint finished cells before an interrupted process exits.
    ///
    /// Cancellation is graceful by construction: in-flight cells run to
    /// completion (and are observed); only *unclaimed* cells are
    /// skipped, coming back as `None` results with no failure record
    /// and counted in [`CtlReport::unrun`].
    pub fn try_run_ctl<T, F>(
        &self,
        cells: usize,
        policy: RunPolicy,
        ctl: RunCtl<'_, T>,
        cell: F,
    ) -> CtlReport<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(cells);
        let run_one = |i: usize| {
            let outcome = attempt_cell(&cell, i, policy);
            if let Ok(v) = &outcome {
                (ctl.on_success)(i, v);
            }
            (i, outcome)
        };
        let outcomes: Vec<(usize, Result<T, CellFailure>)> = if workers <= 1 {
            let mut local = Vec::new();
            for i in 0..cells {
                if (ctl.should_stop)() {
                    break;
                }
                local.push(run_one(i));
            }
            local
        } else {
            let next = AtomicUsize::new(0);
            let mut indexed: Vec<(usize, Result<T, CellFailure>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                if (ctl.should_stop)() {
                                    return local;
                                }
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= cells {
                                    return local;
                                }
                                local.push(run_one(i));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("runner worker panicked"))
                    .collect()
            });
            indexed.sort_unstable_by_key(|&(i, _)| i);
            indexed
        };
        let mut report = RunReport {
            results: (0..cells).map(|_| None).collect(),
            failures: Vec::new(),
        };
        let unrun = cells - outcomes.len();
        for (i, outcome) in outcomes {
            match outcome {
                Ok(v) => report.results[i] = Some(v),
                Err(f) => report.failures.push(f),
            }
        }
        CtlReport { report, unrun }
    }

    /// Runs a sharded experiment: shard `i` of `shards` receives its own
    /// substream generator `Rng::substream(seed, i)` and the results come
    /// back in shard order. The output is a function of `(shards, seed)`
    /// only — never of the worker count.
    pub fn run_sharded<T, F>(&self, shards: usize, seed: u64, shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Rng) -> T + Sync,
    {
        self.run(shards, |i| shard(i, Rng::substream(seed, i as u64)))
    }

    /// Draws `total` samples of `sample` split across `shards` substreams
    /// and folds the per-shard histograms in shard order with one
    /// [`Histogram::merge_many`] pass (integer buckets are
    /// order-independent, so the one-pass reduce is byte-identical to the
    /// old sequential merges).
    pub fn sharded_histogram<F>(&self, shards: usize, total: u64, seed: u64, sample: F) -> Histogram
    where
        F: Fn(&mut Rng) -> u64 + Sync,
    {
        let parts = self.run_sharded(shards.max(1), seed, |i, mut rng| {
            let mut h = Histogram::new();
            for _ in 0..shard_len(total, shards.max(1), i) {
                h.record(sample(&mut rng));
            }
            h
        });
        let mut merged = Histogram::new();
        merged.merge_many(&parts.iter().collect::<Vec<_>>());
        merged
    }

    /// Draws `total` samples of `sample` split across `shards` substreams
    /// and merges the per-shard summaries in shard order with
    /// [`Summary::merge_many`] (a sequential fold — Welford combination is
    /// order-sensitive, so summaries never tree-reduce).
    pub fn sharded_summary<F>(&self, shards: usize, total: u64, seed: u64, sample: F) -> Summary
    where
        F: Fn(&mut Rng) -> f64 + Sync,
    {
        let parts = self.run_sharded(shards.max(1), seed, |i, mut rng| {
            let mut s = Summary::new();
            for _ in 0..shard_len(total, shards.max(1), i) {
                s.record(sample(&mut rng));
            }
            s
        });
        let mut merged = Summary::new();
        merged.merge_many(&parts.iter().collect::<Vec<_>>());
        merged
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_args()
    }
}

/// Samples shard `i` draws when `total` samples split over `shards`
/// shards — [`shard_share`], so the runner, the per-worker closed loop
/// and the cluster study all cut ranges with the same arithmetic.
fn shard_len(total: u64, shards: usize, i: usize) -> u64 {
    shard_share(total, shards as u64, i as u64)
}

/// Runs one cell under `policy`: up to `max_attempts` tries with
/// per-attempt panic isolation, soft-deadline reporting on stderr, and
/// hard-deadline escalation (a too-slow attempt's result is discarded
/// and the attempt counted as failed).
fn attempt_cell<T, F>(cell: &F, index: usize, policy: RunPolicy) -> Result<T, CellFailure>
where
    F: Fn(usize) -> T,
{
    let attempts = policy.max_attempts.max(1);
    let mut message = String::new();
    let mut timed_out = false;
    for attempt in 1..=attempts {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| cell(index)));
        let elapsed = started.elapsed();
        if let Some(deadline) = policy.soft_deadline {
            if elapsed > deadline {
                eprintln!(
                    "note: cell {index} took {:.1}s (soft deadline {:.1}s)",
                    elapsed.as_secs_f64(),
                    deadline.as_secs_f64()
                );
            }
        }
        match outcome {
            Ok(v) => match policy.hard_deadline {
                Some(hard) if elapsed > hard => {
                    timed_out = true;
                    message = format!(
                        "exceeded hard deadline: ran {:.1}s (budget {:.1}s)",
                        elapsed.as_secs_f64(),
                        hard.as_secs_f64()
                    );
                    if attempt < attempts {
                        eprintln!(
                            "note: cell {index} {message} (attempt {attempt}/{attempts}); \
                                 retrying"
                        );
                    }
                }
                _ => return Ok(v),
            },
            Err(payload) => {
                timed_out = false;
                message = panic_message(payload.as_ref());
                if attempt < attempts {
                    eprintln!(
                        "note: cell {index} panicked (attempt {attempt}/{attempts}): {message}"
                    );
                }
            }
        }
    }
    Err(CellFailure {
        index,
        attempts,
        message,
        timed_out,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Parses the worker count from an argument stream (`--jobs N`,
/// `--jobs=N`, `-j N`), falling back to the [`JOBS_ENV`] value when no
/// flag is present (an empty/whitespace value counts as unset), then to
/// the host's available parallelism.
///
/// Strict by design: zero and non-numeric values are errors. The flag
/// wins over the environment, so a malformed `XC_JOBS` is only
/// diagnosed when it would actually be used.
fn jobs_from<I: Iterator<Item = String>>(mut args: I, env: Option<&str>) -> Result<usize, String> {
    fn parse(value: &str, source: &str) -> Result<usize, String> {
        match value.parse::<usize>() {
            Ok(0) => Err(format!(
                "{source} expects a positive integer, got 0 (use 1 for a serial run)"
            )),
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "{source} expects a positive integer, got {value:?}"
            )),
        }
    }
    while let Some(arg) = args.next() {
        if arg == "--jobs" || arg == "-j" {
            return match args.next() {
                Some(v) => parse(&v, "--jobs"),
                None => Err("--jobs expects a value".to_owned()),
            };
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            return parse(v, "--jobs");
        }
    }
    if let Some(v) = env.map(str::trim).filter(|v| !v.is_empty()) {
        return parse(v, JOBS_ENV);
    }
    Ok(std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1))
}

/// One harness's entry in [`BENCH_PATH`].
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Harness name, e.g. `fig4_syscall`.
    pub harness: &'static str,
    /// Worker count the measured run used.
    pub jobs: usize,
    /// Wall-clock time of the measured run, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock time of a serial (`--jobs 1`) reference run, when the
    /// harness performed one.
    pub serial_wall_ms: Option<f64>,
    /// Whether the parallel output was byte-identical to the serial
    /// reference (only set when a reference ran).
    pub parallel_matches_serial: Option<bool>,
    /// Analysis-cache hits observed by the run, for caching harnesses.
    pub cache_hits: Option<u64>,
    /// Analysis-cache misses observed by the run.
    pub cache_misses: Option<u64>,
    /// Extra named numeric metrics (e.g. `coverage_pct`), serialized as
    /// additional top-level keys so the trajectory file tracks harness
    /// quality measures alongside wall time.
    pub metrics: Vec<(&'static str, f64)>,
}

impl BenchEntry {
    /// A timing-only entry (no serial reference, no cache accounting).
    pub fn timing(harness: &'static str, jobs: usize, wall_ms: f64) -> Self {
        BenchEntry {
            harness,
            jobs,
            wall_ms,
            serial_wall_ms: None,
            parallel_matches_serial: None,
            cache_hits: None,
            cache_misses: None,
            metrics: Vec::new(),
        }
    }

    /// Serializes the populated fields only: a harness that never ran a
    /// serial reference or has no cache simply omits those keys instead
    /// of emitting `null` placeholders.
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("harness", Json::from(self.harness)),
            ("jobs", Json::Num(self.jobs as f64)),
            (
                "host_parallelism",
                Json::Num(
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                        as f64,
                ),
            ),
            ("wall_ms", Json::Num(self.wall_ms)),
        ];
        if let Some(v) = self.serial_wall_ms {
            fields.push(("serial_wall_ms", Json::Num(v)));
        }
        if let Some(v) = self.parallel_matches_serial {
            fields.push(("parallel_matches_serial", Json::Bool(v)));
        }
        if let Some(h) = self.cache_hits {
            fields.push(("cache_hits", Json::Num(h as f64)));
        }
        if let Some(m) = self.cache_misses {
            fields.push(("cache_misses", Json::Num(m as f64)));
        }
        if let (Some(h), Some(m)) = (self.cache_hits, self.cache_misses) {
            if h + m > 0 {
                fields.push(("cache_hit_rate", Json::Num(h as f64 / (h + m) as f64)));
            }
        }
        for &(name, value) in &self.metrics {
            fields.push((name, Json::Num(value)));
        }
        json_object(fields)
    }
}

/// Upserts `entry` into [`BENCH_PATH`] (one JSON object per line inside a
/// top-level array, keyed by harness name, sorted for stable diffs).
/// The replacement body lands via tmp-file + atomic rename
/// ([`crate::journal::atomic_write`]), so a harness killed mid-upsert
/// can never leave a torn ledger behind — readers see the old complete
/// file or the new complete file, nothing in between. Errors are
/// reported but non-fatal, mirroring [`crate::record`].
pub fn record_bench(entry: &BenchEntry) {
    let mut lines = read_bench_lines(BENCH_PATH);
    let marker = format!(
        "\"harness\":{}",
        Json::from(entry.harness).to_string_compact()
    );
    lines.retain(|l| !l.contains(&marker));
    lines.push(entry.to_json().to_string_compact());
    lines.sort_unstable();
    let mut body = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(line);
    }
    body.push_str("\n]\n");
    if let Err(e) = crate::journal::atomic_write(std::path::Path::new(BENCH_PATH), body.as_bytes())
    {
        eprintln!("note: cannot write {BENCH_PATH}: {e}");
    }
}

/// Reads the entry lines (one compact JSON object per line) back out of
/// the bench file; tolerates a missing or malformed file by starting
/// fresh.
fn read_bench_lines(path: &str) -> Vec<String> {
    let Ok(body) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    body.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(',').to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_cell_order_at_any_parallelism() {
        let square = |i: usize| i * i;
        let serial = Runner::new(1).run(37, square);
        for jobs in [2, 4, 8] {
            assert_eq!(Runner::new(jobs).run(37, square), serial);
        }
    }

    #[test]
    fn run_handles_edge_sizes() {
        assert!(Runner::new(4).run(0, |i| i).is_empty());
        assert_eq!(Runner::new(4).run(1, |i| i + 10), vec![10]);
        // More workers than cells.
        assert_eq!(Runner::new(64).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_sharded_is_jobs_invariant() {
        let draw = |_i: usize, mut rng: Rng| (0..100).map(|_| rng.next_u64()).collect::<Vec<_>>();
        let serial = Runner::new(1).run_sharded(8, 2019, draw);
        let parallel = Runner::new(4).run_sharded(8, 2019, draw);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_histogram_is_jobs_invariant() {
        let sample = |rng: &mut Rng| rng.next_below(10_000);
        let a = Runner::new(1).sharded_histogram(8, 10_000, 7, sample);
        let b = Runner::new(4).sharded_histogram(8, 10_000, 7, sample);
        assert_eq!(a.count(), 10_000);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn sharded_summary_is_jobs_invariant() {
        let sample = |rng: &mut Rng| rng.next_f64();
        let a = Runner::new(1).sharded_summary(5, 1_000, 42, sample);
        let b = Runner::new(8).sharded_summary(5, 1_000, 42, sample);
        assert_eq!(a.count(), 1_000);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.stddev(), b.stddev());
    }

    #[test]
    fn shard_len_splits_exactly() {
        for total in [0u64, 1, 7, 100] {
            for shards in [1usize, 3, 8] {
                let sum: u64 = (0..shards).map(|i| shard_len(total, shards, i)).sum();
                assert_eq!(sum, total);
            }
        }
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from(args.iter().map(|s| (*s).to_owned()), None);
        assert_eq!(parse(&["--jobs", "4"]), Ok(4));
        assert_eq!(parse(&["--jobs=2"]), Ok(2));
        assert_eq!(parse(&["-j", "8"]), Ok(8));
        let default = parse(&[]).expect("default is host parallelism");
        assert!(default >= 1);
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_garbage() {
        let parse = |args: &[&str]| jobs_from(args.iter().map(|s| (*s).to_owned()), None);
        assert!(
            parse(&["--jobs", "0"]).is_err(),
            "zero is rejected, not clamped"
        );
        assert!(parse(&["--jobs=0"]).is_err());
        assert!(parse(&["-j", "four"]).is_err());
        assert!(parse(&["--jobs", "-2"]).is_err());
        assert!(parse(&["--jobs=2.5"]).is_err());
        assert!(parse(&["--jobs"]).is_err(), "missing value is rejected");
    }

    #[test]
    fn jobs_env_is_fallback_only_and_just_as_strict() {
        let parse = |args: &[&str], env| jobs_from(args.iter().map(|s| (*s).to_owned()), env);
        assert_eq!(parse(&[], Some("6")), Ok(6));
        assert_eq!(parse(&[], Some(" 3 ")), Ok(3), "surrounding whitespace ok");
        assert!(parse(&[], Some("0")).is_err());
        assert!(parse(&[], Some("lots")).is_err());
        // Empty counts as unset, not malformed.
        assert!(parse(&[], Some("")).is_ok());
        assert!(parse(&[], Some("  ")).is_ok());
        // The flag wins; a malformed env var is not even consulted.
        assert_eq!(parse(&["--jobs", "2"], Some("bogus")), Ok(2));
        assert_eq!(parse(&["--jobs=5"], Some("1")), Ok(5));
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        for jobs in [1, 4] {
            let report = Runner::new(jobs).try_run(10, RunPolicy::default(), |i| {
                assert!(i != 3 && i != 7, "cell {i} exploded");
                i * 2
            });
            assert!(!report.ok());
            // Every healthy cell still produced its result.
            for i in [0, 1, 2, 4, 5, 6, 8, 9] {
                assert_eq!(report.results[i], Some(i * 2), "jobs={jobs}");
            }
            assert_eq!(report.results[3], None);
            assert_eq!(report.results[7], None);
            let indices: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
            assert_eq!(
                indices,
                vec![3, 7],
                "failures in index order at jobs={jobs}"
            );
            assert_eq!(report.failures[0].attempts, 2);
            assert!(report.failures[0].message.contains("cell 3 exploded"));
            let summary = report.failure_summary();
            assert!(summary.contains("2 of 10 cells failed"), "{summary}");
            assert!(summary.contains("cell 7"), "{summary}");
        }
    }

    #[test]
    fn try_run_with_no_failures_matches_run() {
        let report = Runner::new(4).try_run(20, RunPolicy::default(), |i| i + 1);
        assert!(report.ok());
        assert!(report.failure_summary().is_empty());
        assert_eq!(
            report.into_results().expect("all cells passed"),
            Runner::new(4).run(20, |i| i + 1)
        );
    }

    #[test]
    fn run_panics_with_structured_summary_after_finishing_the_grid() {
        let touched = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new(2).run(8, |i| {
                touched.fetch_add(1, Ordering::Relaxed);
                assert!(i != 5, "boom in cell {i}");
                i
            })
        }));
        let payload = result.expect_err("a failing cell must surface");
        let message = panic_message(payload.as_ref());
        assert!(message.contains("1 of 8 cells failed"), "{message}");
        assert!(message.contains("boom in cell 5"), "{message}");
        // Every cell ran (the failing one twice) before the panic.
        assert_eq!(touched.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn retry_recovers_a_flaky_cell() {
        // A cell that panics on its first attempt but succeeds on the
        // second is rescued by the default two-attempt policy, and the
        // rescue is invisible in the results.
        let first_tries = std::sync::Mutex::new(std::collections::HashSet::new());
        let report = Runner::new(1).try_run(5, RunPolicy::default(), |i| {
            if i == 2 && first_tries.lock().unwrap().insert(i) {
                panic!("transient failure in cell {i}");
            }
            i * 10
        });
        assert!(report.ok(), "{}", report.failure_summary());
        assert_eq!(report.results[2], Some(20));
    }

    #[test]
    fn zero_max_attempts_clamps_to_one() {
        let runs = AtomicUsize::new(0);
        let policy = RunPolicy {
            max_attempts: 0,
            ..RunPolicy::default()
        };
        let report = Runner::new(1).try_run(1, policy, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            assert!(i != 0, "always fails");
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1, "exactly one attempt");
        assert_eq!(report.failures[0].attempts, 1);
        assert!(!report.failures[0].timed_out);
    }

    #[test]
    fn soft_deadline_reports_but_never_fails_a_cell() {
        let policy = RunPolicy {
            max_attempts: 1,
            soft_deadline: Some(Duration::from_nanos(1)),
            hard_deadline: None,
        };
        let report = Runner::new(1).try_run(3, policy, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i
        });
        assert!(report.ok(), "soft deadline is advisory only");
        assert_eq!(report.results, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn hard_deadline_discards_slow_cells_and_marks_the_timeout() {
        let policy = RunPolicy {
            max_attempts: 2,
            soft_deadline: None,
            hard_deadline: Some(Duration::from_nanos(1)),
        };
        let attempts_made = AtomicUsize::new(0);
        let report = Runner::new(1).try_run(1, policy, |i| {
            attempts_made.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(2));
            i
        });
        assert!(!report.ok());
        assert_eq!(
            attempts_made.load(Ordering::Relaxed),
            2,
            "the timeout consumed the retry budget"
        );
        let f = &report.failures[0];
        assert!(f.timed_out, "failure records the deadline overrun");
        assert!(f.message.contains("hard deadline"), "{}", f.message);
        assert_eq!(report.results[0], None, "the slow result was discarded");
    }

    #[test]
    fn generous_hard_deadline_changes_nothing() {
        let policy = RunPolicy {
            max_attempts: 2,
            soft_deadline: None,
            hard_deadline: Some(Duration::from_secs(3600)),
        };
        let report = Runner::new(4).try_run(10, policy, |i| i + 1);
        assert!(report.ok());
        assert_eq!(
            report.into_results().expect("all pass"),
            (1..=10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_run_ctl_stops_claiming_after_cancellation() {
        for jobs in [1, 4] {
            let done = AtomicUsize::new(0);
            let ctl = RunCtl {
                should_stop: &|| done.load(Ordering::Relaxed) >= 3,
                on_success: &|_, _| {
                    done.fetch_add(1, Ordering::Relaxed);
                },
            };
            let out = Runner::new(jobs).try_run_ctl(100, RunPolicy::default(), ctl, |i| i);
            assert!(out.unrun > 0, "jobs={jobs}: cancellation skipped cells");
            assert!(out.report.ok(), "skipped cells are not failures");
            let completed = out.report.results.iter().flatten().count();
            assert_eq!(completed + out.unrun, 100, "jobs={jobs}");
            // Every completed cell landed at its own index.
            for (i, r) in out.report.results.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(*v, i);
                }
            }
        }
    }

    #[test]
    fn try_run_ctl_observer_sees_every_success_with_its_index() {
        let seen = std::sync::Mutex::new(Vec::new());
        let ctl = RunCtl {
            should_stop: &|| false,
            on_success: &|i, v: &usize| seen.lock().unwrap().push((i, *v)),
        };
        let out = Runner::new(4).try_run_ctl(20, RunPolicy::default(), ctl, |i| i * 3);
        assert_eq!(out.unrun, 0);
        let mut observed = seen.into_inner().unwrap();
        observed.sort_unstable();
        assert_eq!(
            observed,
            (0..20).map(|i| (i, i * 3)).collect::<Vec<_>>(),
            "observer fired exactly once per cell"
        );
    }

    #[test]
    fn bench_entry_serializes_expected_fields() {
        let e = BenchEntry {
            cache_hits: Some(9),
            cache_misses: Some(1),
            ..BenchEntry::timing("fig4_syscall", 4, 12.5)
        };
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"harness\":\"fig4_syscall\""));
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"cache_hit_rate\":0.9"));
        assert!(
            !json.contains("serial_wall_ms"),
            "never-populated fields are dropped, not serialized as null: {json}"
        );
        assert!(
            !json.contains("null"),
            "no null placeholders at all: {json}"
        );
    }

    #[test]
    fn bench_entry_with_serial_reference_serializes_it() {
        let e = BenchEntry {
            serial_wall_ms: Some(40.0),
            parallel_matches_serial: Some(true),
            ..BenchEntry::timing("fig3_macro", 4, 12.5)
        };
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"serial_wall_ms\":40"));
        assert!(json.contains("\"parallel_matches_serial\":true"));
        assert!(
            !json.contains("cache_hits"),
            "absent cache stays absent: {json}"
        );
    }

    #[test]
    fn bench_entry_metrics_serialize_as_extra_keys() {
        let e = BenchEntry {
            metrics: vec![("coverage_pct", 100.0), ("unknown_sites", 0.0)],
            ..BenchEntry::timing("verify_lint", 1, 3.0)
        };
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"coverage_pct\":100"));
        assert!(json.contains("\"unknown_sites\":0"));
        assert!(!json.contains("null"));
    }
}
