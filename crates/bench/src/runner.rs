//! Deterministic parallel experiment runner.
//!
//! Every figure in the paper's evaluation is a grid of independent
//! (configuration, seed) cells, and each cell is a *pure function*: the
//! DES engine in `xc-sim` is single-threaded and dependency-free by
//! policy (DESIGN.md §5), so a cell's result depends only on its inputs.
//! That makes the harness layer — not the engine — the right place for
//! parallelism: [`Runner::run`] shards cells across `std::thread::scope`
//! workers and merges results **in cell-index order**, so the merged
//! output is bit-for-bit identical to a serial run at any `--jobs` value.
//!
//! Three properties carry the determinism argument:
//!
//! 1. **Cell purity** — cells share nothing mutable; each owns its world,
//!    RNG, and statistics.
//! 2. **Substream seeding** — a sharded experiment gives shard `i` the
//!    generator [`Rng::substream`]`(seed, i)`, a function of the shard
//!    index alone, never of the executing worker or claim order.
//! 3. **Index-ordered merge** — workers record `(index, result)` pairs;
//!    the merge sorts by index before any fold, so order-sensitive
//!    reducers ([`Histogram::merge`], [`Summary::merge`], report
//!    rendering) see the serial order.
//!
//! The runner also owns the perf trajectory file, `BENCH_runner.json`:
//! each harness upserts a [`BenchEntry`] (wall time, jobs, serial
//! reference time, cache hit rates) through [`record_bench`].

use std::sync::atomic::{AtomicUsize, Ordering};

use xcontainers::prelude::{json_object, Histogram, Json, Rng, Summary};

/// Where harnesses record wall-clock and cache measurements.
pub const BENCH_PATH: &str = "BENCH_runner.json";

/// A deterministic parallel cell executor (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1;
    /// `1` is the legacy serial path — no threads are spawned).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// A runner configured from the process arguments: `--jobs N`,
    /// `--jobs=N` or `-j N`, defaulting to the host's available
    /// parallelism when absent.
    pub fn from_args() -> Self {
        Runner::new(jobs_from(std::env::args().skip(1)))
    }

    /// Worker count this runner shards across.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluates `cell(i)` for `i in 0..cells` and returns the results in
    /// index order — identically at every worker count.
    ///
    /// Workers claim cell indices from a shared atomic counter (work
    /// stealing keeps unequal cell costs balanced) and stash
    /// `(index, result)` pairs locally; the merge sorts by index.
    pub fn run<T, F>(&self, cells: usize, cell: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(cells);
        if workers <= 1 {
            return (0..cells).map(cell).collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cells {
                                return local;
                            }
                            local.push((i, cell(i)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("runner worker panicked"))
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(indexed.len(), cells);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// Runs a sharded experiment: shard `i` of `shards` receives its own
    /// substream generator `Rng::substream(seed, i)` and the results come
    /// back in shard order. The output is a function of `(shards, seed)`
    /// only — never of the worker count.
    pub fn run_sharded<T, F>(&self, shards: usize, seed: u64, shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Rng) -> T + Sync,
    {
        self.run(shards, |i| shard(i, Rng::substream(seed, i as u64)))
    }

    /// Draws `total` samples of `sample` split across `shards` substreams
    /// and merges the per-shard histograms in shard order with
    /// [`Histogram::merge`].
    pub fn sharded_histogram<F>(&self, shards: usize, total: u64, seed: u64, sample: F) -> Histogram
    where
        F: Fn(&mut Rng) -> u64 + Sync,
    {
        let parts = self.run_sharded(shards.max(1), seed, |i, mut rng| {
            let mut h = Histogram::new();
            for _ in 0..shard_len(total, shards.max(1), i) {
                h.record(sample(&mut rng));
            }
            h
        });
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        merged
    }

    /// Draws `total` samples of `sample` split across `shards` substreams
    /// and merges the per-shard summaries in shard order with
    /// [`Summary::merge`].
    pub fn sharded_summary<F>(&self, shards: usize, total: u64, seed: u64, sample: F) -> Summary
    where
        F: Fn(&mut Rng) -> f64 + Sync,
    {
        let parts = self.run_sharded(shards.max(1), seed, |i, mut rng| {
            let mut s = Summary::new();
            for _ in 0..shard_len(total, shards.max(1), i) {
                s.record(sample(&mut rng));
            }
            s
        });
        let mut merged = Summary::new();
        for part in &parts {
            merged.merge(part);
        }
        merged
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_args()
    }
}

/// Samples shard `i` draws when `total` samples split over `shards`
/// shards: the remainder goes to the lowest-indexed shards, so the split
/// is a pure function of `(total, shards)`.
fn shard_len(total: u64, shards: usize, i: usize) -> u64 {
    let shards = shards as u64;
    let i = i as u64;
    total / shards + u64::from(i < total % shards)
}

/// Parses the `--jobs` flag out of an argument stream; defaults to the
/// host's available parallelism.
fn jobs_from<I: Iterator<Item = String>>(mut args: I) -> usize {
    let parse = |v: &str| -> usize {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --jobs expects a positive integer, got {v:?}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        if arg == "--jobs" || arg == "-j" {
            match args.next() {
                Some(v) => return parse(&v).max(1),
                None => {
                    eprintln!("error: --jobs expects a value");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            return parse(v).max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One harness's entry in [`BENCH_PATH`].
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Harness name, e.g. `fig4_syscall`.
    pub harness: &'static str,
    /// Worker count the measured run used.
    pub jobs: usize,
    /// Wall-clock time of the measured run, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock time of a serial (`--jobs 1`) reference run, when the
    /// harness performed one.
    pub serial_wall_ms: Option<f64>,
    /// Whether the parallel output was byte-identical to the serial
    /// reference (only set when a reference ran).
    pub parallel_matches_serial: Option<bool>,
    /// Analysis-cache hits observed by the run, for caching harnesses.
    pub cache_hits: Option<u64>,
    /// Analysis-cache misses observed by the run.
    pub cache_misses: Option<u64>,
}

impl BenchEntry {
    /// A timing-only entry (no serial reference, no cache accounting).
    pub fn timing(harness: &'static str, jobs: usize, wall_ms: f64) -> Self {
        BenchEntry {
            harness,
            jobs,
            wall_ms,
            serial_wall_ms: None,
            parallel_matches_serial: None,
            cache_hits: None,
            cache_misses: None,
        }
    }

    /// Serializes the populated fields only: a harness that never ran a
    /// serial reference or has no cache simply omits those keys instead
    /// of emitting `null` placeholders.
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("harness", Json::from(self.harness)),
            ("jobs", Json::Num(self.jobs as f64)),
            (
                "host_parallelism",
                Json::Num(
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                        as f64,
                ),
            ),
            ("wall_ms", Json::Num(self.wall_ms)),
        ];
        if let Some(v) = self.serial_wall_ms {
            fields.push(("serial_wall_ms", Json::Num(v)));
        }
        if let Some(v) = self.parallel_matches_serial {
            fields.push(("parallel_matches_serial", Json::Bool(v)));
        }
        if let Some(h) = self.cache_hits {
            fields.push(("cache_hits", Json::Num(h as f64)));
        }
        if let Some(m) = self.cache_misses {
            fields.push(("cache_misses", Json::Num(m as f64)));
        }
        if let (Some(h), Some(m)) = (self.cache_hits, self.cache_misses) {
            if h + m > 0 {
                fields.push(("cache_hit_rate", Json::Num(h as f64 / (h + m) as f64)));
            }
        }
        json_object(fields)
    }
}

/// Upserts `entry` into [`BENCH_PATH`] (one JSON object per line inside a
/// top-level array, keyed by harness name, sorted for stable diffs).
/// Errors are reported but non-fatal, mirroring [`crate::record`].
pub fn record_bench(entry: &BenchEntry) {
    let mut lines = read_bench_lines(BENCH_PATH);
    let marker = format!(
        "\"harness\":{}",
        Json::from(entry.harness).to_string_compact()
    );
    lines.retain(|l| !l.contains(&marker));
    lines.push(entry.to_json().to_string_compact());
    lines.sort_unstable();
    let mut body = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(line);
    }
    body.push_str("\n]\n");
    if let Err(e) = std::fs::write(BENCH_PATH, body) {
        eprintln!("note: cannot write {BENCH_PATH}: {e}");
    }
}

/// Reads the entry lines (one compact JSON object per line) back out of
/// the bench file; tolerates a missing or malformed file by starting
/// fresh.
fn read_bench_lines(path: &str) -> Vec<String> {
    let Ok(body) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    body.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(',').to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_cell_order_at_any_parallelism() {
        let square = |i: usize| i * i;
        let serial = Runner::new(1).run(37, square);
        for jobs in [2, 4, 8] {
            assert_eq!(Runner::new(jobs).run(37, square), serial);
        }
    }

    #[test]
    fn run_handles_edge_sizes() {
        assert!(Runner::new(4).run(0, |i| i).is_empty());
        assert_eq!(Runner::new(4).run(1, |i| i + 10), vec![10]);
        // More workers than cells.
        assert_eq!(Runner::new(64).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_sharded_is_jobs_invariant() {
        let draw = |_i: usize, mut rng: Rng| (0..100).map(|_| rng.next_u64()).collect::<Vec<_>>();
        let serial = Runner::new(1).run_sharded(8, 2019, draw);
        let parallel = Runner::new(4).run_sharded(8, 2019, draw);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_histogram_is_jobs_invariant() {
        let sample = |rng: &mut Rng| rng.next_below(10_000);
        let a = Runner::new(1).sharded_histogram(8, 10_000, 7, sample);
        let b = Runner::new(4).sharded_histogram(8, 10_000, 7, sample);
        assert_eq!(a.count(), 10_000);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn sharded_summary_is_jobs_invariant() {
        let sample = |rng: &mut Rng| rng.next_f64();
        let a = Runner::new(1).sharded_summary(5, 1_000, 42, sample);
        let b = Runner::new(8).sharded_summary(5, 1_000, 42, sample);
        assert_eq!(a.count(), 1_000);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.stddev(), b.stddev());
    }

    #[test]
    fn shard_len_splits_exactly() {
        for total in [0u64, 1, 7, 100] {
            for shards in [1usize, 3, 8] {
                let sum: u64 = (0..shards).map(|i| shard_len(total, shards, i)).sum();
                assert_eq!(sum, total);
            }
        }
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from(args.iter().map(|s| (*s).to_owned()));
        assert_eq!(parse(&["--jobs", "4"]), 4);
        assert_eq!(parse(&["--jobs=2"]), 2);
        assert_eq!(parse(&["-j", "8"]), 8);
        assert_eq!(parse(&["--jobs", "0"]), 1, "clamped to at least one");
        let default = parse(&[]);
        assert!(default >= 1);
    }

    #[test]
    fn bench_entry_serializes_expected_fields() {
        let e = BenchEntry {
            cache_hits: Some(9),
            cache_misses: Some(1),
            ..BenchEntry::timing("fig4_syscall", 4, 12.5)
        };
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"harness\":\"fig4_syscall\""));
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"cache_hit_rate\":0.9"));
        assert!(
            !json.contains("serial_wall_ms"),
            "never-populated fields are dropped, not serialized as null: {json}"
        );
        assert!(
            !json.contains("null"),
            "no null placeholders at all: {json}"
        );
    }

    #[test]
    fn bench_entry_with_serial_reference_serializes_it() {
        let e = BenchEntry {
            serial_wall_ms: Some(40.0),
            parallel_matches_serial: Some(true),
            ..BenchEntry::timing("fig3_macro", 4, 12.5)
        };
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"serial_wall_ms\":40"));
        assert!(json.contains("\"parallel_matches_serial\":true"));
        assert!(
            !json.contains("cache_hits"),
            "absent cache stays absent: {json}"
        );
    }
}
