//! Crash-safe cell journal: checkpoint/resume for the long harnesses.
//!
//! The cluster, chaos and combined-acceptance sweeps are grids of pure
//! cells executed by [`crate::runner::Runner`]; until now an interrupted
//! run restarted from zero. This module makes completed cells durable:
//! as each cell finishes, the runner's success observer
//! ([`crate::runner::RunCtl::on_success`]) appends one JSONL record to
//! `results/.journal/<harness>/cells.jsonl`, and a resumed run replays
//! those records instead of re-executing their cells. Because cells are
//! pure and the JSON emitter/parser round-trips `f64` exactly
//! (`Json::parse` pins this), a replayed cell's contribution to the
//! merged report is byte-identical to a freshly executed one — the
//! resume path is covered by the same golden digests as the straight
//! path.
//!
//! ## Record format (one per line, version 1)
//!
//! ```text
//! {"v":1,"cell":17,"fp":"<16 hex>","payload":{...},"digest":"<16 hex>"}
//! ```
//!
//! * `cell` — grid index of the completed cell.
//! * `fp` — FNV-1a fingerprint of the harness configuration
//!   ([`fingerprint`]); a record whose fingerprint disagrees with the
//!   current run's is *stale* (written under different parameters) and
//!   is ignored, forcing clean re-execution of just that cell.
//! * `payload` — the cell's result, serialized by [`CellPayload`].
//! * `digest` — FNV-1a over the compact `payload` text; a mismatch
//!   means the record (not just the line ending) was corrupted.
//!
//! ## Validation and tail recovery
//!
//! Appends are `write(2)`-then-flush of a complete line, so the only
//! torn state a crash can leave is a truncated *final* record. On open,
//! the journal walks records in order and keeps the longest valid
//! prefix: the first structurally corrupt line (unparseable JSON,
//! missing fields, digest mismatch) and everything after it are
//! discarded — a damaged middle cannot vouch for what follows it, since
//! appends are strictly ordered. Stale-fingerprint records are the
//! exception: they are well-formed, so they are dropped individually
//! without condemning the tail. Whenever anything was dropped the
//! surviving prefix is rewritten through [`atomic_write`], so the
//! on-disk journal is clean before new appends land.
//!
//! ## Atomicity
//!
//! [`atomic_write`] is the tmp-file + `rename(2)` primitive shared with
//! [`crate::runner::record_bench`] and [`crate::record`]: the ledger and
//! findings files are replaced whole, never written in place, so a kill
//! at any instant leaves either the old complete file or the new one.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xcontainers::prelude::{Histogram, HistogramCheckpoint, Json};

use crate::runner::{CellFailure, RunCtl, RunPolicy, Runner};

/// Journal root shared by the resumable harnesses (hidden inside the
/// results directory so `results/*.json` globs never pick it up).
pub const JOURNAL_ROOT: &str = "results/.journal";

/// Journal record schema version.
const VERSION: u64 = 1;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// FNV-1a over a byte slice, from `seed` (use [`FNV_OFFSET`]-seeded
/// [`fnv`] unless chaining).
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of `bytes` from the standard offset basis.
pub fn fnv(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Configuration fingerprint: FNV-1a over a harness tag and the
/// parameter words that select the grid (seeds, sizes, platform counts;
/// floats via `to_bits`). Two runs share a fingerprint iff their cells
/// compute the same values at the same indices.
pub fn fingerprint(tag: &str, words: &[u64]) -> u64 {
    let mut h = fnv(tag.as_bytes());
    for &w in words {
        h = fnv1a(h, &w.to_le_bytes());
    }
    h
}

/// Writes `bytes` to `path` atomically: the content lands in a
/// same-directory temp file first and is `rename(2)`d over the target,
/// so readers (and crash recovery) only ever see a complete old file or
/// a complete new file. The temp name carries the pid, so concurrent
/// writers cannot tear each other's staging files either — last rename
/// wins whole.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    let write = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        fs::rename(&tmp, path)
    };
    let result = write();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// How a cell result crosses the process boundary. Implemented per
/// harness for its cell output type; the contract is exact round-trip:
/// `from_payload(&to_payload(v)) == Some(v)` bit-for-bit, including
/// `u64`/`u128` counters (encode those as hex strings — `Json::Num` is
/// an `f64` and would silently round above 2^53).
pub trait CellPayload: Sized {
    /// Serializes the cell result for the journal record.
    fn to_payload(&self) -> Json;
    /// Decodes a journaled payload; `None` rejects the record (the cell
    /// simply re-executes).
    fn from_payload(payload: &Json) -> Option<Self>;
}

/// Encodes an exact integer as a hex string payload field.
pub fn hex_u64(v: u64) -> Json {
    Json::from(format!("{v:x}"))
}

/// Decodes [`hex_u64`].
pub fn u64_from_hex(j: &Json) -> Option<u64> {
    u64::from_str_radix(j.as_str()?, 16).ok()
}

/// Encodes an exact `u128` as a hex string payload field.
pub fn hex_u128(v: u128) -> Json {
    Json::from(format!("{v:x}"))
}

/// Decodes [`hex_u128`].
pub fn u128_from_hex(j: &Json) -> Option<u128> {
    u128::from_str_radix(j.as_str()?, 16).ok()
}

/// Serializes a histogram exactly via [`Histogram::checkpoint`]: raw
/// counters as hex (they are `u64`/`u128` — `Json::Num` would round),
/// non-zero buckets as sparse `[index, hex count]` pairs.
pub fn histogram_to_json(h: &Histogram) -> Json {
    let c = h.checkpoint();
    xcontainers::prelude::json_object([
        ("total", hex_u64(c.total)),
        ("sum", hex_u128(c.sum)),
        ("min", hex_u64(c.min)),
        ("max", hex_u64(c.max)),
        (
            "counts",
            Json::Arr(
                c.counts
                    .iter()
                    .map(|&(i, n)| Json::Arr(vec![Json::Num(f64::from(i)), hex_u64(n)]))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes [`histogram_to_json`]; `None` on any structural or
/// consistency violation ([`Histogram::from_checkpoint`] re-validates
/// the counters).
pub fn histogram_from_json(j: &Json) -> Option<Histogram> {
    let counts = j
        .get("counts")?
        .as_arr()?
        .iter()
        .map(|e| {
            let pair = e.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let idx = pair[0].as_num()?;
            if idx.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&idx) {
                return None;
            }
            Some((idx as u32, u64_from_hex(&pair[1])?))
        })
        .collect::<Option<Vec<_>>>()?;
    Histogram::from_checkpoint(&HistogramCheckpoint {
        total: u64_from_hex(j.get("total")?)?,
        sum: u128_from_hex(j.get("sum")?)?,
        min: u64_from_hex(j.get("min")?)?,
        max: u64_from_hex(j.get("max")?)?,
        counts,
    })
}

/// What [`Journal::open_at`] found on disk (all zero for a fresh run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalScan {
    /// Valid records replayed.
    pub replayed: usize,
    /// Records discarded as a damaged tail (truncated or corrupt).
    pub damaged: usize,
    /// Well-formed records ignored for a fingerprint mismatch.
    pub stale: usize,
}

/// An append-only per-cell checkpoint file (see the module docs).
pub struct Journal<T> {
    path: PathBuf,
    fingerprint: u64,
    cells: usize,
    replayed: BTreeMap<usize, T>,
    scan: JournalScan,
    sink: Mutex<fs::File>,
}

impl<T: CellPayload> Journal<T> {
    /// Opens (or creates) the journal for `harness` under `root`,
    /// replaying every valid record whose fingerprint matches and
    /// repairing the file if a damaged tail or stale records were
    /// found. `root` is injectable so tests journal into temp
    /// directories; binaries pass [`JOURNAL_ROOT`].
    pub fn open_at(root: &Path, harness: &str, fingerprint: u64, cells: usize) -> io::Result<Self> {
        let dir = root.join(harness);
        fs::create_dir_all(&dir)?;
        let path = dir.join("cells.jsonl");
        let body = match fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let (replayed, kept_lines, scan) = scan_body(&body, fingerprint, cells);
        if scan.damaged > 0 || scan.stale > 0 {
            let mut clean = kept_lines.join("\n");
            if !clean.is_empty() {
                clean.push('\n');
            }
            atomic_write(&path, clean.as_bytes())?;
        }
        let sink = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal {
            path,
            fingerprint,
            cells,
            replayed,
            scan,
            sink: Mutex::new(sink),
        })
    }

    /// What the open-time scan found.
    pub fn scan(&self) -> JournalScan {
        self.scan
    }

    /// Cells with a replayable checkpoint.
    pub fn replayed(&self) -> &BTreeMap<usize, T> {
        &self.replayed
    }

    /// Grid indices that still need to execute, ascending.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.cells)
            .filter(|i| !self.replayed.contains_key(i))
            .collect()
    }

    /// Appends a completed cell's checkpoint record. Called from runner
    /// worker threads (the sink is behind a mutex); the full line is
    /// written and flushed in one go, so a crash can only truncate the
    /// final record — exactly what open-time tail recovery handles.
    /// Errors are reported but non-fatal: a read-only filesystem
    /// degrades to a non-resumable run, never a failed one.
    pub fn append(&self, index: usize, value: &T) {
        let line = encode_record(index, self.fingerprint, value);
        let mut sink = self.sink.lock().expect("journal sink poisoned");
        if let Err(e) = sink.write_all(line.as_bytes()).and_then(|()| sink.flush()) {
            eprintln!("note: cannot checkpoint cell {index}: {e}");
        }
    }

    /// Removes the journal after a fully successful run (keeping it
    /// would only replay into identical output, but dropping it keeps
    /// `results/` tidy and makes `--fresh` the no-op it should be).
    pub fn remove(self) {
        drop(self.sink);
        let _ = fs::remove_file(&self.path);
        if let Some(dir) = self.path.parent() {
            let _ = fs::remove_dir(dir); // only if now empty
        }
    }
}

/// Discards any journal for `harness` under `root` (the `--fresh`
/// path). A missing journal is not an error.
pub fn discard(root: &Path, harness: &str) -> io::Result<()> {
    match fs::remove_file(root.join(harness).join("cells.jsonl")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Serializes one journal record line (trailing newline included).
fn encode_record<T: CellPayload>(index: usize, fingerprint: u64, value: &T) -> String {
    let payload = value.to_payload().to_string_compact();
    let digest = fnv(payload.as_bytes());
    format!(
        "{{\"v\":{VERSION},\"cell\":{index},\"fp\":\"{fingerprint:016x}\",\
         \"payload\":{payload},\"digest\":\"{digest:016x}\"}}\n"
    )
}

/// Decodes one journal line. `Err(())` = structurally corrupt (condemns
/// the tail); `Ok(None)` = well-formed but not replayable here (stale
/// fingerprint, foreign index, undecodable payload — the cell simply
/// re-executes).
#[allow(clippy::result_unit_err)]
fn decode_record<T: CellPayload>(
    line: &str,
    fingerprint: u64,
    cells: usize,
) -> Result<Option<(usize, T)>, ()> {
    let json = Json::parse(line).map_err(|_| ())?;
    if json.get("v").and_then(Json::as_num) != Some(VERSION as f64) {
        return Err(());
    }
    let cell = json.get("cell").and_then(Json::as_num).ok_or(())?;
    if cell.fract() != 0.0 || cell < 0.0 {
        return Err(());
    }
    let payload = json.get("payload").ok_or(())?;
    let digest = json
        .get("digest")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(())?;
    if digest != fnv(payload.to_string_compact().as_bytes()) {
        return Err(());
    }
    let fp = json
        .get("fp")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(())?;
    if fp != fingerprint {
        return Ok(None); // stale: written under a different configuration
    }
    let index = cell as usize;
    if index >= cells {
        return Ok(None); // foreign grid shape that happens to share a fp tag
    }
    Ok(T::from_payload(payload).map(|v| (index, v)))
}

/// Walks a journal body, returning the replayable records, the raw
/// lines worth keeping on disk, and the scan tally. The first corrupt
/// record condemns itself and everything after it; a final line without
/// its newline is a truncated append and is likewise dropped.
fn scan_body<T: CellPayload>(
    body: &str,
    fingerprint: u64,
    cells: usize,
) -> (BTreeMap<usize, T>, Vec<&str>, JournalScan) {
    let mut replayed = BTreeMap::new();
    let mut kept = Vec::new();
    let mut scan = JournalScan::default();
    let complete = match body.rfind('\n') {
        Some(end) => {
            if end + 1 < body.len() {
                scan.damaged += 1; // truncated trailing record
            }
            &body[..end]
        }
        None => {
            if !body.is_empty() {
                scan.damaged += 1;
            }
            ""
        }
    };
    let lines: Vec<&str> = if complete.is_empty() {
        Vec::new()
    } else {
        complete.split('\n').collect()
    };
    for (n, line) in lines.iter().enumerate() {
        match decode_record::<T>(line, fingerprint, cells) {
            Ok(Some((index, value))) => {
                replayed.insert(index, value); // duplicate index: last wins
                kept.push(*line);
            }
            Ok(None) => scan.stale += 1,
            Err(()) => {
                scan.damaged += lines.len() - n;
                break;
            }
        }
    }
    scan.replayed = replayed.len();
    (replayed, kept, scan)
}

// ---------------------------------------------------------------------------
// Graceful interruption
// ---------------------------------------------------------------------------

/// Set by the SIGINT handler; checked by every [`Interrupt`].
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT handler that requests graceful cancellation (the
/// runner stops claiming cells; in-flight cells finish and flush their
/// checkpoints). Safe to call more than once. On non-Unix targets this
/// is a no-op and Ctrl-C keeps its default hard-kill behavior — the
/// journal's tail recovery covers that case too.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_sig: i32) {
            // Async-signal-safe: a relaxed store to a static atomic.
            SIGINT_RECEIVED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Whether a SIGINT has been observed since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::Relaxed)
}

/// Test hook: clears the SIGINT latch.
#[cfg(test)]
fn reset_sigint() {
    SIGINT_RECEIVED.store(false, Ordering::Relaxed);
}

/// Graceful-cancellation sources for a resumable run: SIGINT, a
/// run-level wall deadline, and a deterministic halt-after-N-cells
/// testing hook (how the check.sh resume gate "kills" a run mid-grid
/// without racing a real signal against the scheduler).
pub struct Interrupt {
    started: Instant,
    max_wall: Option<Duration>,
    halt_after: Option<usize>,
    completed: AtomicUsize,
}

impl Interrupt {
    /// An interrupt source honoring SIGINT only.
    pub fn new() -> Self {
        Interrupt {
            started: Instant::now(),
            max_wall: None,
            halt_after: None,
            completed: AtomicUsize::new(0),
        }
    }

    /// Adds a run-level wall-clock deadline (graceful, unlike the
    /// per-cell [`RunPolicy::hard_deadline`]: the grid stops claiming
    /// and checkpoints what finished).
    pub fn with_max_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Stops claiming cells once `n` have completed in this process.
    pub fn with_halt_after(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Records one completed cell (wired to the runner's success
    /// observer by [`run_resumable`]).
    pub fn note_completion(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the run should stop claiming new cells.
    pub fn stop_requested(&self) -> bool {
        if sigint_received() {
            return true;
        }
        if let Some(limit) = self.max_wall {
            if self.started.elapsed() >= limit {
                return true;
            }
        }
        if let Some(n) = self.halt_after {
            if self.completed.load(Ordering::Relaxed) >= n {
                return true;
            }
        }
        false
    }
}

impl Default for Interrupt {
    fn default() -> Self {
        Interrupt::new()
    }
}

// ---------------------------------------------------------------------------
// Resume flags and the resumable run loop
// ---------------------------------------------------------------------------

/// How a binary's journal flags resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeMode {
    /// No journal flags: run straight through, no checkpointing. The
    /// default keeps the byte-gated paths and determinism tests exactly
    /// as they were.
    #[default]
    Off,
    /// `--resume`: replay any journal, execute the rest, checkpointing.
    Resume,
    /// `--fresh`: discard any journal, run with checkpointing from zero.
    Fresh,
}

/// Parsed journal/interruption flags shared by the resumable binaries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResumeArgs {
    /// Journal behavior.
    pub mode: ResumeMode,
    /// `--halt-after N`: stop claiming after N cells complete (testing
    /// hook; implies checkpointing even in [`ResumeMode::Off`]).
    pub halt_after: Option<usize>,
    /// `--max-wall-ms N`: graceful run-level deadline.
    pub max_wall: Option<Duration>,
}

impl ResumeArgs {
    /// Extracts the journal flags from an argument stream, leaving
    /// unrelated flags to the caller.
    ///
    /// # Errors
    ///
    /// A usage message for conflicting flags (`--resume` with
    /// `--fresh`) or malformed values.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        fn value<I: Iterator<Item = String>>(
            args: &mut I,
            inline: Option<&str>,
            flag: &str,
        ) -> Result<usize, String> {
            let raw = match inline {
                Some(v) => v.to_owned(),
                None => args
                    .next()
                    .ok_or_else(|| format!("{flag} expects a value"))?,
            };
            raw.parse::<usize>()
                .map_err(|_| format!("{flag} expects a non-negative integer, got {raw:?}"))
        }
        let mut out = ResumeArgs::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => {
                    if out.mode == ResumeMode::Fresh {
                        return Err("--resume conflicts with --fresh".to_owned());
                    }
                    out.mode = ResumeMode::Resume;
                }
                "--fresh" => {
                    if out.mode == ResumeMode::Resume {
                        return Err("--resume conflicts with --fresh".to_owned());
                    }
                    out.mode = ResumeMode::Fresh;
                }
                "--halt-after" => out.halt_after = Some(value(&mut args, None, "--halt-after")?),
                "--max-wall-ms" => {
                    out.max_wall =
                        Some(Duration::from_millis(
                            value(&mut args, None, "--max-wall-ms")? as u64,
                        ));
                }
                other => {
                    if let Some(v) = other.strip_prefix("--halt-after=") {
                        out.halt_after = Some(value(&mut args, Some(v), "--halt-after")?);
                    } else if let Some(v) = other.strip_prefix("--max-wall-ms=") {
                        out.max_wall =
                            Some(Duration::from_millis(
                                value(&mut args, Some(v), "--max-wall-ms")? as u64,
                            ));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Whether any flag asks for checkpointing machinery.
    pub fn journaled(&self) -> bool {
        self.mode != ResumeMode::Off || self.halt_after.is_some() || self.max_wall.is_some()
    }
}

/// Outcome of [`run_resumable`].
#[derive(Debug)]
pub struct ResumeReport<T> {
    /// Per-cell results in grid-index order; `None` for cells that
    /// failed or were skipped by cancellation.
    pub results: Vec<Option<T>>,
    /// Failed cells (grid indices), in index order.
    pub failures: Vec<CellFailure>,
    /// Cells satisfied from the journal.
    pub replayed: usize,
    /// Cells executed (and checkpointed) by this process.
    pub executed: usize,
    /// Whether the run stopped before claiming every cell.
    pub interrupted: bool,
}

impl<T> ResumeReport<T> {
    /// Cells with neither a result nor a failure (skipped by
    /// cancellation).
    pub fn pending(&self) -> usize {
        self.results.iter().filter(|r| r.is_none()).count() - self.failures.len()
    }
}

/// The journaled grid run: replays checkpointed cells, executes the
/// missing ones through [`Runner::try_run_ctl`] (checkpointing each as
/// it completes), and honors `interrupt` gracefully — in-flight cells
/// finish and flush before the report comes back. The merged results
/// are index-ordered and, for a completed run, byte-identical to
/// [`Runner::try_run`] output: replay returns exactly the values the
/// cells produced.
pub fn run_resumable<T, F>(
    runner: &Runner,
    policy: RunPolicy,
    journal: &mut Journal<T>,
    interrupt: &Interrupt,
    cell: F,
) -> ResumeReport<T>
where
    T: CellPayload + Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let cells = journal.cells;
    let missing = journal.missing();
    let replayed = journal.replayed.len();
    let out = {
        let journal_ref: &Journal<T> = journal;
        let should_stop = || interrupt.stop_requested();
        let on_success = |j: usize, v: &T| {
            journal_ref.append(missing[j], v);
            interrupt.note_completion();
        };
        let ctl = RunCtl {
            should_stop: &should_stop,
            on_success: &on_success,
        };
        runner.try_run_ctl(missing.len(), policy, ctl, |j| cell(missing[j]))
    };
    let interrupted = out.unrun > 0;
    let mut results: Vec<Option<T>> = (0..cells).map(|_| None).collect();
    let mut executed = 0;
    for (j, r) in out.report.results.into_iter().enumerate() {
        if let Some(v) = r {
            results[missing[j]] = Some(v);
            executed += 1;
        }
    }
    for (index, value) in std::mem::take(&mut journal.replayed) {
        results[index] = Some(value);
    }
    let mut failures: Vec<CellFailure> = out
        .report
        .failures
        .into_iter()
        .map(|mut f| {
            f.index = missing[f.index];
            f
        })
        .collect();
    failures.sort_by_key(|f| f.index);
    ResumeReport {
        results,
        failures,
        replayed,
        executed,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that touch the process-global SIGINT latch
    /// so one cannot trip another's cancellation check mid-run.
    static SIGINT_LATCH_LOCK: Mutex<()> = Mutex::new(());

    /// Minimal payload type for journal unit tests: an exact `u64`
    /// carried as hex (the `Json::Num` f64 would corrupt it above
    /// 2^53) next to a float that must round-trip bit-for-bit.
    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        exact: u64,
        float: f64,
    }

    impl CellPayload for Probe {
        fn to_payload(&self) -> Json {
            xcontainers::prelude::json_object([
                ("exact", hex_u64(self.exact)),
                ("float", Json::Num(self.float)),
            ])
        }

        fn from_payload(payload: &Json) -> Option<Self> {
            Some(Probe {
                exact: u64_from_hex(payload.get("exact")?)?,
                float: payload.get("float")?.as_num()?,
            })
        }
    }

    fn probe(i: usize) -> Probe {
        Probe {
            exact: u64::MAX - i as u64,
            float: (i as f64) / 3.0,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xc-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn journal_path(root: &Path) -> PathBuf {
        root.join("probe/cells.jsonl")
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let root = temp_root("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("ledger.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer body").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer body");
        // No staging debris left behind.
        let names: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_roundtrips_exact_payloads() {
        let root = temp_root("roundtrip");
        let fp = fingerprint("probe", &[1, 2]);
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 4).unwrap();
        assert_eq!(j.scan(), JournalScan::default());
        assert_eq!(j.missing(), vec![0, 1, 2, 3]);
        for i in [0usize, 2] {
            j.append(i, &probe(i));
        }
        drop(j);
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 4).unwrap();
        assert_eq!(j.scan().replayed, 2);
        assert_eq!(j.missing(), vec![1, 3]);
        assert_eq!(j.replayed()[&0], probe(0), "bit-exact replay");
        assert_eq!(j.replayed()[&2], probe(2));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_trailing_record_is_dropped_and_repaired() {
        let root = temp_root("truncated");
        let fp = fingerprint("probe", &[]);
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 3).unwrap();
        for i in 0..3 {
            j.append(i, &probe(i));
        }
        drop(j);
        // Simulate a crash mid-append: chop the final record's tail off.
        let path = journal_path(&root);
        let body = fs::read_to_string(&path).unwrap();
        let cut = body.len() - 7;
        fs::write(&path, &body.as_bytes()[..cut]).unwrap();
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 3).unwrap();
        assert_eq!(j.scan().replayed, 2, "intact prefix survives");
        assert_eq!(j.scan().damaged, 1, "only the torn record is dropped");
        assert_eq!(j.missing(), vec![2]);
        drop(j);
        // The file was repaired in place: reopening is clean.
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 3).unwrap();
        assert_eq!(j.scan().damaged, 0);
        assert_eq!(j.scan().replayed, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn digest_mismatch_condemns_the_tail() {
        let root = temp_root("digest");
        let fp = fingerprint("probe", &[]);
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 4).unwrap();
        for i in 0..4 {
            j.append(i, &probe(i));
        }
        drop(j);
        let path = journal_path(&root);
        let body = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = body.lines().map(str::to_owned).collect();
        // Flip a payload nibble inside record 1 without touching its
        // digest: probe(1).exact is u64::MAX - 1 = ...fffe.
        assert!(lines[1].contains("fffffffffffffffe"));
        lines[1] = lines[1].replacen("fffffffffffffffe", "ffffffffffffff00", 1);
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 4).unwrap();
        assert_eq!(j.scan().replayed, 1, "only the prefix before the damage");
        assert_eq!(j.scan().damaged, 3, "the corrupt record condemns its tail");
        assert_eq!(j.missing(), vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_fingerprint_records_are_ignored_individually() {
        let root = temp_root("stale");
        let old_fp = fingerprint("probe", &[1]);
        let j = Journal::<Probe>::open_at(&root, "probe", old_fp, 3).unwrap();
        j.append(0, &probe(0));
        drop(j);
        let new_fp = fingerprint("probe", &[2]);
        // Opening under the new fingerprint ignores the old record —
        // its cell simply re-runs — and repairs it off the disk.
        let j = Journal::<Probe>::open_at(&root, "probe", new_fp, 3).unwrap();
        assert_eq!(j.scan().stale, 1);
        assert_eq!(j.scan().damaged, 0);
        assert_eq!(j.missing(), vec![0, 1, 2], "nothing replays across configs");
        j.append(1, &probe(1));
        drop(j);
        // The repair was durable: a reopen sees only the fresh record.
        let j = Journal::<Probe>::open_at(&root, "probe", new_fp, 3).unwrap();
        assert_eq!(
            j.scan(),
            JournalScan {
                replayed: 1,
                damaged: 0,
                stale: 0
            }
        );
        assert_eq!(j.missing(), vec![0, 2]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_journal_degrades_to_a_fresh_run() {
        let root = temp_root("garbage");
        let dir = root.join("probe");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("cells.jsonl"), "not json at all\n{\"v\":9}\n").unwrap();
        let fp = fingerprint("probe", &[]);
        let j = Journal::<Probe>::open_at(&root, "probe", fp, 2).unwrap();
        assert_eq!(j.scan().replayed, 0);
        assert_eq!(j.scan().damaged, 2);
        assert_eq!(j.missing(), vec![0, 1]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn run_resumable_completes_and_matches_a_straight_run() {
        let _guard = SIGINT_LATCH_LOCK.lock().unwrap();
        let root = temp_root("resume-full");
        let fp = fingerprint("probe", &[7]);
        let mut j = Journal::<Probe>::open_at(&root, "probe", fp, 6).unwrap();
        let runner = Runner::new(4);
        let out = run_resumable(
            &runner,
            RunPolicy::default(),
            &mut j,
            &Interrupt::new(),
            probe,
        );
        assert!(!out.interrupted);
        assert_eq!(out.executed, 6);
        assert_eq!(out.replayed, 0);
        assert!(out.failures.is_empty());
        let values: Vec<Probe> = out.results.into_iter().flatten().collect();
        assert_eq!(values, (0..6).map(probe).collect::<Vec<_>>());
        j.remove();
        assert!(!journal_path(&root).exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn interrupted_run_resumes_to_identical_results() {
        let _guard = SIGINT_LATCH_LOCK.lock().unwrap();
        reset_sigint();
        let root = temp_root("resume-halt");
        let fp = fingerprint("probe", &[13]);
        let runner = Runner::new(2);
        // First leg: halt after 3 completions.
        let mut j = Journal::<Probe>::open_at(&root, "probe", fp, 10).unwrap();
        let halted = Interrupt::new().with_halt_after(3);
        let first = run_resumable(&runner, RunPolicy::default(), &mut j, &halted, probe);
        assert!(first.interrupted);
        assert!(first.executed >= 3, "in-flight cells still flushed");
        assert!(first.executed < 10);
        drop(j);
        // Second leg: resume and finish.
        let mut j = Journal::<Probe>::open_at(&root, "probe", fp, 10).unwrap();
        assert_eq!(
            j.scan().replayed,
            first.executed,
            "every completion was journaled"
        );
        let second = run_resumable(
            &runner,
            RunPolicy::default(),
            &mut j,
            &Interrupt::new(),
            probe,
        );
        assert!(!second.interrupted);
        assert_eq!(second.replayed, first.executed);
        assert_eq!(second.replayed + second.executed, 10);
        let resumed: Vec<Probe> = second.results.into_iter().flatten().collect();
        let straight: Vec<Probe> = (0..10).map(probe).collect();
        assert_eq!(resumed, straight, "resume is invisible in the results");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_args_parse_and_conflict() {
        let parse = |args: &[&str]| ResumeArgs::parse(args.iter().map(|s| (*s).to_owned()));
        assert_eq!(parse(&[]).unwrap(), ResumeArgs::default());
        assert!(!parse(&["--quick"]).unwrap().journaled());
        let r = parse(&["--resume", "--jobs", "4"]).unwrap();
        assert_eq!(r.mode, ResumeMode::Resume);
        assert!(r.journaled());
        assert_eq!(parse(&["--fresh"]).unwrap().mode, ResumeMode::Fresh);
        let h = parse(&["--halt-after", "8"]).unwrap();
        assert_eq!(h.halt_after, Some(8));
        assert!(h.journaled(), "halt-after implies checkpointing");
        assert_eq!(
            parse(&["--halt-after=5", "--max-wall-ms=250"]).unwrap(),
            ResumeArgs {
                mode: ResumeMode::Off,
                halt_after: Some(5),
                max_wall: Some(Duration::from_millis(250)),
            }
        );
        assert!(parse(&["--resume", "--fresh"]).is_err());
        assert!(parse(&["--fresh", "--resume"]).is_err());
        assert!(parse(&["--halt-after"]).is_err());
        assert!(parse(&["--halt-after", "soon"]).is_err());
        assert!(parse(&["--max-wall-ms=never"]).is_err());
    }

    #[test]
    fn interrupt_sources_trigger_stop() {
        let _guard = SIGINT_LATCH_LOCK.lock().unwrap();
        reset_sigint();
        let i = Interrupt::new();
        assert!(!i.stop_requested());
        let i = Interrupt::new().with_halt_after(2);
        i.note_completion();
        assert!(!i.stop_requested());
        i.note_completion();
        assert!(i.stop_requested());
        let i = Interrupt::new().with_max_wall(Duration::from_nanos(0));
        assert!(i.stop_requested());
        // The SIGINT latch reaches every Interrupt.
        let i = Interrupt::new();
        SIGINT_RECEIVED.store(true, Ordering::Relaxed);
        assert!(i.stop_requested());
        reset_sigint();
    }
}
