//! Chaos study — throughput degradation and recovery latency under
//! deterministic fault injection (see the `chaos_study` binary).
//!
//! Sweeps fault rate × platform over the closed-loop chaos world
//! (`xcontainers::faults::chaos`). Each grid cell gets its own
//! [`FaultPlan`] derived from `(SEED, cell index)`, so the whole sweep
//! is byte-identical at any `--jobs` value, and every cell's three
//! conservation ledgers are asserted after the run: faults may slow
//! work down or route it onto fallback paths, but never lose it.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use xcontainers::faults::chaos::arena_counters;
use xcontainers::prelude::*;

use super::{HarnessOutput, Journaled};
use crate::journal::{
    fingerprint, hex_u64, histogram_from_json, histogram_to_json, u64_from_hex, CellPayload,
    ResumeArgs,
};
use crate::runner::Runner;
use crate::Finding;

/// Root seed of the sweep (the repo-wide experiment seed).
const SEED: u64 = 2019;
/// Fault-rate axis of the full sweep (`scaled` multipliers).
const RATES: [f64; 4] = [0.0, 0.002, 0.01, 0.05];
/// Fault-rate axis under `--quick`.
const QUICK_RATES: [f64; 2] = [0.0, 0.01];
/// ABOM warm-up corpus (syscall numbers) on ABOM platforms.
const CORPUS_SITES: u64 = 128;
/// Syscalls a modeled request performs.
const SYSCALLS_PER_REQUEST: u64 = 64;
/// Application compute per request, on top of kernel crossings.
const APP_COMPUTE: Nanos = Nanos::from_micros(20);

/// The platforms the sweep compares (all Meltdown-patched, EC2), with
/// distinct labels — `Platform::name()` does not distinguish the
/// ABOM-disabled X-Container variant.
fn platforms() -> Vec<(&'static str, Platform)> {
    vec![
        (
            "X-Container",
            Platform::x_container(CloudEnv::AmazonEc2, true),
        ),
        (
            "X-Container/no-ABOM",
            Platform::x_container_no_abom(CloudEnv::AmazonEc2, true),
        ),
        (
            "Xen-Container",
            Platform::xen_container(CloudEnv::AmazonEc2, true),
        ),
    ]
}

/// Chaos-world parameters for one platform: service time composed from
/// the platform's syscall costs, restart priced at its real spawn time.
fn params_for(platform: &Platform, costs: &CostModel, duration: Nanos) -> ChaosParams {
    let syscall = platform.syscall_cost(costs);
    let trapped = platform.syscall_cost_trapped(costs);
    ChaosParams {
        connections: 32,
        parallelism: 4,
        duration,
        rtt: Nanos::from_millis(1),
        base_service: APP_COMPUTE
            + syscall.saturating_mul(SYSCALLS_PER_REQUEST)
            + platform.event_entry_cost(costs),
        service_jitter: Nanos::from_micros(5),
        corpus_sites: if platform.abom_enabled() {
            CORPUS_SITES
        } else {
            0
        },
        syscalls_per_request: SYSCALLS_PER_REQUEST,
        trap_extra: trapped.saturating_sub(syscall),
        payload_bytes: 4096,
        delay_max: Nanos::from_micros(100),
        resend_timeout: Nanos::from_millis(2),
        retry: RetryPolicy::event_default(),
        watchdog_period: Nanos::from_millis(10),
        watchdog_timeout: Nanos::from_millis(20),
        restart_cost: Container::new("chaos-server", platform.clone()).spawn_time(),
    }
}

/// Lowercases a platform label into a findings-metric slug.
fn metric_slug(label: &str) -> String {
    label.to_lowercase().replace([' ', '-', '/'], "_")
}

/// One grid cell's inputs and outputs.
struct CellOutcome {
    platform: usize,
    label: &'static str,
    rate: f64,
    result: ChaosResult,
}

/// Exact checkpoint codec for a chaos cell. Counters are hex strings
/// (`u64`-exact), times ride as raw nanosecond counts, histograms
/// through the sparse checkpoint codec, and the `&'static str` label is
/// re-derived from the platform index rather than stored.
impl CellPayload for CellOutcome {
    fn to_payload(&self) -> Json {
        let r = &self.result;
        json_object([
            ("platform", Json::Num(self.platform as f64)),
            ("rate", Json::Num(self.rate)),
            ("issued", hex_u64(r.issued)),
            ("completed", hex_u64(r.completed)),
            ("abandoned", hex_u64(r.abandoned)),
            ("in_flight", hex_u64(r.in_flight)),
            ("resends", hex_u64(r.resends)),
            ("hypercall_retries", hex_u64(r.hypercall_retries)),
            ("grant_faults", hex_u64(r.grant_faults)),
            ("stalls", hex_u64(r.stalls)),
            ("crashes", hex_u64(r.crashes)),
            ("restarts", hex_u64(r.restarts)),
            ("sends", hex_u64(r.sends)),
            ("deliveries", hex_u64(r.deliveries)),
            ("drops", hex_u64(r.drops)),
            ("pending", hex_u64(r.pending)),
            ("hypercalls", hex_u64(r.hypercalls)),
            ("hypervisor_ns", hex_u64(r.hypervisor_ns.as_nanos())),
            ("bytes_copied", hex_u64(r.bytes_copied)),
            ("live_grants", hex_u64(r.live_grants)),
            ("demoted", hex_u64(r.demoted)),
            ("corpus_sites", hex_u64(r.corpus_sites)),
            ("latency", histogram_to_json(&r.latency)),
            ("recovery", histogram_to_json(&r.recovery)),
            (
                "drawn",
                Json::Arr(r.fault_stats.drawn.iter().map(|&v| hex_u64(v)).collect()),
            ),
            (
                "injected",
                Json::Arr(r.fault_stats.injected.iter().map(|&v| hex_u64(v)).collect()),
            ),
            ("duration", hex_u64(r.duration.as_nanos())),
        ])
    }

    fn from_payload(payload: &Json) -> Option<Self> {
        let field = |k: &str| u64_from_hex(payload.get(k)?);
        let counters = |k: &str| -> Option<[u64; 8]> {
            let arr = payload.get(k)?.as_arr()?;
            if arr.len() != 8 {
                return None;
            }
            let mut out = [0u64; 8];
            for (slot, v) in out.iter_mut().zip(arr) {
                *slot = u64_from_hex(v)?;
            }
            Some(out)
        };
        let platform = payload.get("platform")?.as_num()?;
        if platform.fract() != 0.0 || platform < 0.0 {
            return None;
        }
        let platform = platform as usize;
        let (label, _) = *platforms().get(platform)?;
        Some(CellOutcome {
            platform,
            label,
            rate: payload.get("rate")?.as_num()?,
            result: ChaosResult {
                issued: field("issued")?,
                completed: field("completed")?,
                abandoned: field("abandoned")?,
                in_flight: field("in_flight")?,
                resends: field("resends")?,
                hypercall_retries: field("hypercall_retries")?,
                grant_faults: field("grant_faults")?,
                stalls: field("stalls")?,
                crashes: field("crashes")?,
                restarts: field("restarts")?,
                sends: field("sends")?,
                deliveries: field("deliveries")?,
                drops: field("drops")?,
                pending: field("pending")?,
                hypercalls: field("hypercalls")?,
                hypervisor_ns: Nanos::from_nanos(field("hypervisor_ns")?),
                bytes_copied: field("bytes_copied")?,
                live_grants: field("live_grants")?,
                demoted: field("demoted")?,
                corpus_sites: field("corpus_sites")?,
                latency: histogram_from_json(payload.get("latency")?)?,
                recovery: histogram_from_json(payload.get("recovery")?)?,
                fault_stats: FaultStats {
                    drawn: counters("drawn")?,
                    injected: counters("injected")?,
                },
                duration: Nanos::from_nanos(field("duration")?),
            },
        })
    }
}

/// The sweep's cell grid (fault rate × platform): geometry, the cell
/// function and the journal fingerprint, shared by [`run_with`] and the
/// crash-safe [`run_journaled`].
pub struct Grid {
    rates: Vec<f64>,
    duration: Nanos,
    costs: CostModel,
    platforms: Vec<(&'static str, Platform)>,
}

impl Grid {
    /// Builds the grid for one mode (`rate_override` pins the fault
    /// axis to `[0, rate]`, mirroring the `--fault-rate` flag).
    pub fn new(quick: bool, rate_override: Option<f64>) -> Self {
        let rates: Vec<f64> = match rate_override {
            Some(r) => vec![0.0, r],
            None if quick => QUICK_RATES.to_vec(),
            None => RATES.to_vec(),
        };
        let duration = if quick {
            Nanos::from_millis(1000)
        } else {
            Nanos::from_secs(4)
        };
        Grid {
            rates,
            duration,
            costs: CostModel::skylake_cloud(),
            platforms: platforms(),
        }
    }

    /// Cells in the platform-major grid.
    pub fn cells(&self) -> usize {
        self.platforms.len() * self.rates.len()
    }

    /// Executes cell `i`: one (platform, fault-rate) pair under its own
    /// deterministic fault plan.
    fn cell(&self, i: usize) -> CellOutcome {
        let p = i / self.rates.len();
        let rate = self.rates[i % self.rates.len()];
        let (label, platform) = &self.platforms[p];
        let params = params_for(platform, &self.costs, self.duration);
        let plan = FaultPlan::for_cell(SEED, i as u64, FaultRates::scaled(rate));
        let jitter_seed = Rng::substream(SEED, 0x1000 + i as u64).next_u64();
        CellOutcome {
            platform: p,
            label,
            rate,
            result: run_chaos(params, plan, jitter_seed),
        }
    }

    /// Journal fingerprint over everything that selects a cell's value:
    /// the seed, the fault-rate axis, the simulated duration and the
    /// platform count.
    pub fn fingerprint(&self) -> u64 {
        let mut words = vec![
            SEED,
            self.duration.as_nanos(),
            self.platforms.len() as u64,
            CORPUS_SITES,
            SYSCALLS_PER_REQUEST,
            APP_COMPUTE.as_nanos(),
        ];
        words.extend(self.rates.iter().map(|r| r.to_bits()));
        fingerprint("chaos_study", &words)
    }
}

/// Runs the sweep. `quick` shrinks the grid and the simulated duration
/// (the check-script smoke gate); `rate_override` pins the fault axis
/// to `[0, rate]` (the `--fault-rate` flag).
pub fn run_with(runner: &Runner, quick: bool, rate_override: Option<f64>) -> HarnessOutput {
    let grid = Grid::new(quick, rate_override);
    let (allocs_before, reuses_before) = arena_counters();
    let outcomes: Vec<CellOutcome> = runner.run(grid.cells(), |i| grid.cell(i));
    let mut out = render_cells(&grid.rates, &outcomes);
    // Chaos-world arena effectiveness over this sweep: after the first
    // cell on each worker thread, every world should be rebuilt from
    // recycled storage. Ledger-only — the split depends on thread
    // count, so it stays out of the deterministic text/findings.
    let (allocs_after, reuses_after) = arena_counters();
    out.metrics = vec![
        ("arena_allocs", (allocs_after - allocs_before) as f64),
        ("arena_reuses", (reuses_after - reuses_before) as f64),
    ];
    out
}

/// The crash-safe variant of [`run_with`]: checkpoints each completed
/// cell under `root`, resumes from any compatible journal, and stops
/// gracefully on SIGINT or the `resume` limits.
///
/// # Errors
///
/// Filesystem errors opening or repairing the journal.
pub fn run_journaled(
    runner: &Runner,
    quick: bool,
    rate_override: Option<f64>,
    root: &Path,
    name: &str,
    resume: &ResumeArgs,
) -> io::Result<Journaled> {
    let grid = Grid::new(quick, rate_override);
    super::run_journaled(
        runner,
        root,
        name,
        grid.fingerprint(),
        grid.cells(),
        resume,
        |i| grid.cell(i),
        |outcomes| render_cells(&grid.rates, &outcomes),
    )
}

/// Renders the sweep table, shape notes and findings from the
/// index-ordered cell outcomes — the deterministic output both paths
/// share.
fn render_cells(rates: &[f64], outcomes: &[CellOutcome]) -> HarnessOutput {
    let mut findings = Vec::new();
    let mut table = Table::new(
        "Chaos study: throughput degradation and recovery under injected faults",
        &[
            "platform",
            "fault rate",
            "throughput (req/s)",
            "vs healthy",
            "abandoned",
            "resends",
            "restarts",
            "recovery p99",
            "ledgers",
        ],
    );
    let mut violations = 0u64;
    for outcome in outcomes {
        let r = &outcome.result;
        let conserved = r.check_conservation();
        if conserved.is_err() {
            violations += 1;
        }
        // The platform's own rate-0 row is the degradation baseline.
        let healthy = outcomes
            .iter()
            .find(|o| o.platform == outcome.platform && o.rate == 0.0)
            .map_or(0.0, |o| o.result.throughput_rps());
        let relative = if healthy > 0.0 {
            r.throughput_rps() / healthy
        } else {
            0.0
        };
        let recovery_p99 = Nanos::from_nanos(r.recovery.quantile(0.99));
        table.row([
            Cell::from(outcome.label),
            Cell::Num(outcome.rate, 3),
            Cell::Num(r.throughput_rps(), 0),
            Cell::from(format!("{:.1}%", relative * 100.0)),
            Cell::from(r.abandoned),
            Cell::from(r.resends),
            Cell::from(r.restarts),
            Cell::from(if r.recovery.count() == 0 {
                "-".to_owned()
            } else {
                recovery_p99.to_string()
            }),
            Cell::from(match &conserved {
                Ok(()) => "balanced".to_owned(),
                Err(e) => format!("VIOLATED: {e}"),
            }),
        ]);
    }

    findings.push(Finding {
        experiment: "chaos",
        metric: "conservation_violations".to_owned(),
        paper: "components fail safely (§4.1, §4.4)".to_owned(),
        measured: violations as f64,
        in_band: violations == 0,
    });
    for outcome in outcomes {
        if outcome.rate == 0.0 {
            let r = &outcome.result;
            let clean = r.abandoned == 0 && r.restarts == 0 && r.fault_stats.injected_total() == 0;
            findings.push(Finding {
                experiment: "chaos",
                metric: format!("healthy_baseline_{}", metric_slug(outcome.label)),
                paper: "no faults => no degradation".to_owned(),
                measured: r.abandoned as f64 + r.restarts as f64,
                in_band: clean,
            });
        }
    }
    let top_rate = rates.iter().copied().fold(0.0f64, f64::max);
    if top_rate > 0.0 {
        for outcome in outcomes.iter().filter(|o| o.rate == top_rate) {
            let healthy = outcomes
                .iter()
                .find(|o| o.platform == outcome.platform && o.rate == 0.0)
                .map_or(0.0, |o| o.result.throughput_rps());
            let relative = if healthy > 0.0 {
                outcome.result.throughput_rps() / healthy
            } else {
                0.0
            };
            findings.push(Finding {
                experiment: "chaos",
                metric: format!("degraded_throughput_{}", metric_slug(outcome.label)),
                paper: "graceful degradation, not collapse".to_owned(),
                measured: relative,
                in_band: (0.0..1.0).contains(&relative)
                    && outcome.result.completed + outcome.result.abandoned > 0,
            });
        }
    }

    let mut text = String::new();
    table.render_into(&mut text);
    text.push('\n');
    let total_injected: u64 = outcomes
        .iter()
        .map(|o| o.result.fault_stats.injected_total())
        .sum();
    let total_recoveries: u64 = outcomes.iter().map(|o| o.result.recovery.count()).sum();
    let _ = writeln!(
        text,
        "Injected {total_injected} faults across {} cells; {total_recoveries} watchdog \
         recoveries; {violations} conservation violations.",
        outcomes.len()
    );
    let _ = writeln!(
        text,
        "Every request is completed, abandoned after bounded retries, or still in \
         flight — never lost; demoted ABOM sites fall back to the syscall trap (§4.4)."
    );

    HarnessOutput {
        text,
        findings,
        cache_stats: None,
        metrics: Vec::new(),
    }
}

/// Full sweep with default axes.
pub fn run(runner: &Runner) -> HarnessOutput {
    run_with(runner, false, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_and_jobs_invariant() {
        let serial = run_with(&Runner::new(1), true, None);
        let parallel = run_with(&Runner::new(4), true, None);
        assert_eq!(serial.text, parallel.text);
        assert_eq!(
            crate::findings_json(&serial.findings),
            crate::findings_json(&parallel.findings)
        );
        assert!(serial.text.contains("balanced"));
        assert!(!serial.text.contains("VIOLATED"));
        let conservation = serial
            .findings
            .iter()
            .find(|f| f.metric == "conservation_violations")
            .expect("conservation finding present");
        assert!(conservation.in_band);
        assert_eq!(conservation.measured, 0.0);
        for f in serial
            .findings
            .iter()
            .filter(|f| f.metric.starts_with("healthy_"))
        {
            assert!(f.in_band, "{} out of band", f.metric);
        }
    }

    #[test]
    fn pinned_rate_restricts_the_axis() {
        let out = run_with(&Runner::new(1), true, Some(0.05));
        assert!(out.text.contains("0.050"));
        assert!(!out.text.contains("0.002"));
    }
}
