//! The combined reproduction pass (see the `all_experiments` binary):
//! every table/figure reduced to its headline findings, one summary
//! table at the end. Each experiment slice is one runner cell, so the
//! nine independent measurement groups fan out across workers while the
//! merged summary stays in fixed experiment order.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use xcontainers::prelude::*;
use xcontainers::workloads::apps::{memcached, nginx_static, redis};
use xcontainers::workloads::fig6::{fig6a_nginx_1worker, fig6b_nginx_4workers, fig6c_php_mysql};
use xcontainers::workloads::loadbalance::{throughput as lb_throughput, LbMode};
use xcontainers::workloads::scalability::{throughput as sc_throughput, ScalabilityConfig};
use xcontainers::workloads::table1::run_table1;
use xcontainers::workloads::unixbench::MicroBench;

use super::{HarnessOutput, Journaled};
use crate::journal::{self, CellPayload, ResumeArgs};
use crate::runner::Runner;
use crate::Finding;

/// Table 1 sample size for the combined pass (reduced from the full
/// study to keep the pass fast).
const TABLE1_SYSCALLS: u64 = 8_000;
const TABLE1_SEED: u64 = 2019;

fn table1_cell() -> Vec<Finding> {
    run_table1(TABLE1_SYSCALLS, TABLE1_SEED)
        .into_iter()
        .map(|(p, m)| Finding {
            experiment: "table1",
            metric: format!("{}_reduction", p.name),
            paper: format!("{:.1}%", p.paper_reduction),
            measured: m.online_reduction,
            in_band: (m.online_reduction - p.paper_reduction).abs() < 2.0,
        })
        .collect()
}

fn fig4_cell(costs: &CostModel) -> Vec<Finding> {
    let docker = Platform::docker(CloudEnv::AmazonEc2, true);
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    let f4 = SystemCallBench::score(&xc, costs) / SystemCallBench::score(&docker, costs);
    vec![Finding {
        experiment: "fig4",
        metric: "x_vs_docker_syscall".to_owned(),
        paper: "up to 27x".to_owned(),
        measured: f4,
        in_band: (15.0..45.0).contains(&f4),
    }]
}

/// One Figure 3 closed-loop profile on EC2 (`which` ∈ 0..3).
fn fig3_cell(which: usize, costs: &CostModel) -> Vec<Finding> {
    let (profile, paper, band) = match which {
        0 => (nginx_static(), "1.21-1.50x", (1.0, 1.9)),
        1 => (memcached(), "1.34-2.08x", (1.2, 2.6)),
        _ => (redis(), "~1x", (0.8, 1.5)),
    };
    let docker = Platform::docker(CloudEnv::AmazonEc2, true);
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    let workers = if profile.name == "memcached" { 4 } else { 1 };
    let d = ServerModel {
        platform: docker,
        profile: profile.clone(),
        workers,
        cores: 4,
    };
    let x = ServerModel {
        platform: xc,
        profile: profile.clone(),
        workers,
        cores: 4,
    };
    let dt = run_closed_loop(&d, costs, 50, Nanos::from_millis(200), 7).throughput_rps;
    let xt = run_closed_loop(&x, costs, 50, Nanos::from_millis(200), 7).throughput_rps;
    vec![Finding {
        experiment: "fig3",
        metric: format!("x_{}_throughput_gain", profile.name),
        paper: paper.to_owned(),
        measured: xt / dt,
        in_band: (band.0..band.1).contains(&(xt / dt)),
    }]
}

fn fig5_cell(costs: &CostModel) -> Vec<Finding> {
    let docker = Platform::docker(CloudEnv::AmazonEc2, true);
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    [
        (MicroBench::Execl, true),
        (MicroBench::FileCopy, true),
        (MicroBench::PipeThroughput, true),
        (MicroBench::ContextSwitching, false),
        (MicroBench::ProcessCreation, false),
    ]
    .into_iter()
    .map(|(bench, wins)| {
        let rel = bench.score(&xc, costs) / bench.score(&docker, costs);
        Finding {
            experiment: "fig5",
            metric: bench.label().to_lowercase().replace(' ', "_"),
            paper: if wins { ">1 (X wins)" } else { "<1 (X loses)" }.to_owned(),
            measured: rel,
            in_band: (rel > 1.0) == wins,
        }
    })
    .collect()
}

fn fig6_cell(costs: &CostModel) -> Vec<Finding> {
    let u = fig6a_nginx_1worker(LibOsPlatform::Unikernel, costs);
    let g = fig6a_nginx_1worker(LibOsPlatform::Graphene, costs);
    let x6 = fig6a_nginx_1worker(LibOsPlatform::XContainer, costs);
    let g4 = fig6b_nginx_4workers(LibOsPlatform::Graphene, costs).expect("graphene");
    let x4 = fig6b_nginx_4workers(LibOsPlatform::XContainer, costs).expect("x");
    let u_ded = fig6c_php_mysql(LibOsPlatform::Unikernel, DbTopology::Dedicated, costs).expect("u");
    let x_merged = fig6c_php_mysql(
        LibOsPlatform::XContainer,
        DbTopology::DedicatedMerged,
        costs,
    )
    .expect("x merged");
    vec![
        Finding {
            experiment: "fig6",
            metric: "nginx1_x_vs_u".to_owned(),
            paper: "≈1x".to_owned(),
            measured: x6 / u,
            in_band: (0.85..1.35).contains(&(x6 / u)),
        },
        Finding {
            experiment: "fig6",
            metric: "nginx1_x_vs_g".to_owned(),
            paper: ">2x".to_owned(),
            measured: x6 / g,
            in_band: x6 / g > 1.6,
        },
        Finding {
            experiment: "fig6",
            metric: "nginx4_x_vs_g".to_owned(),
            paper: ">1.5x".to_owned(),
            measured: x4 / g4,
            in_band: x4 / g4 > 1.5,
        },
        Finding {
            experiment: "fig6",
            metric: "php_merged_vs_u_dedicated".to_owned(),
            paper: "~3x".to_owned(),
            measured: x_merged / u_ded,
            in_band: (2.0..4.0).contains(&(x_merged / u_ded)),
        },
    ]
}

fn fig8_cell(costs: &CostModel) -> Vec<Finding> {
    let d400 = sc_throughput(ScalabilityConfig::Docker, 400, costs).expect("d");
    let x400 = sc_throughput(ScalabilityConfig::XContainer, 400, costs).expect("x");
    vec![Finding {
        experiment: "fig8",
        metric: "x_gain_at_400_pct".to_owned(),
        paper: "18%".to_owned(),
        measured: (x400 / d400 - 1.0) * 100.0,
        in_band: (8.0..35.0).contains(&((x400 / d400 - 1.0) * 100.0)),
    }]
}

fn fig9_cell(costs: &CostModel) -> Vec<Finding> {
    let lb_docker = lb_throughput(LbMode::HaproxyDocker, costs);
    let lb_x = lb_throughput(LbMode::HaproxyXContainer, costs);
    vec![Finding {
        experiment: "fig9",
        metric: "haproxy_x_vs_docker".to_owned(),
        paper: "2x".to_owned(),
        measured: lb_x / lb_docker,
        in_band: (1.5..2.8).contains(&(lb_x / lb_docker)),
    }]
}

/// Experiment ids this pass can emit — the intern table the journal
/// decoder uses to restore [`Finding::experiment`]'s `&'static str`.
const EXPERIMENTS: [&str; 7] = ["table1", "fig4", "fig3", "fig5", "fig6", "fig8", "fig9"];

fn intern_experiment(name: &str) -> Option<&'static str> {
    EXPERIMENTS.iter().find(|e| **e == name).copied()
}

/// Exact checkpoint codec for one measurement group's findings. The
/// serialized form is [`Finding::to_json`] (what `results/*.json`
/// holds); decode interns the experiment id against [`EXPERIMENTS`] and
/// rejects records naming unknown experiments.
impl CellPayload for Vec<Finding> {
    fn to_payload(&self) -> Json {
        Json::Arr(self.iter().map(Finding::to_json).collect())
    }

    fn from_payload(payload: &Json) -> Option<Self> {
        payload
            .as_arr()?
            .iter()
            .map(|e| {
                Some(Finding {
                    experiment: intern_experiment(e.get("experiment")?.as_str()?)?,
                    metric: e.get("metric")?.as_str()?.to_owned(),
                    paper: e.get("paper")?.as_str()?.to_owned(),
                    measured: e.get("measured")?.as_num()?,
                    in_band: e.get("in_band")?.as_bool()?,
                })
            })
            .collect()
    }
}

/// Grid size: the nine independent measurement groups.
pub const CELLS: usize = 9;

/// Executes measurement group `i`.
fn cell(i: usize, costs: &CostModel) -> Vec<Finding> {
    match i {
        0 => table1_cell(),
        1 => fig4_cell(costs),
        2..=4 => fig3_cell(i - 2, costs),
        5 => fig5_cell(costs),
        6 => fig6_cell(costs),
        7 => fig8_cell(costs),
        _ => fig9_cell(costs),
    }
}

/// Journal fingerprint: the sample sizes and seed that select what the
/// cells measure (the platform matrices are compile-time constants).
pub fn grid_fingerprint() -> u64 {
    journal::fingerprint(
        "all_experiments",
        &[TABLE1_SYSCALLS, TABLE1_SEED, CELLS as u64],
    )
}

/// Runs every experiment slice and renders the combined summary.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    render_cells(runner.run(CELLS, |i| cell(i, &costs)))
}

/// The crash-safe variant of [`run`]: checkpoints each measurement
/// group under `root`, resumes from any compatible journal, and stops
/// gracefully on SIGINT or the `resume` limits.
///
/// # Errors
///
/// Filesystem errors opening or repairing the journal.
pub fn run_journaled(
    runner: &Runner,
    root: &Path,
    name: &str,
    resume: &ResumeArgs,
) -> io::Result<Journaled> {
    let costs = CostModel::skylake_cloud();
    super::run_journaled(
        runner,
        root,
        name,
        grid_fingerprint(),
        CELLS,
        resume,
        |i| cell(i, &costs),
        render_cells,
    )
}

/// Renders the combined summary from the index-ordered cell findings.
fn render_cells(cells: Vec<Vec<Finding>>) -> HarnessOutput {
    let findings: Vec<Finding> = cells.into_iter().flatten().collect();

    let mut summary = Table::new(
        "X-Containers reproduction — paper vs measured, all experiments",
        &["experiment", "metric", "paper", "measured", "in band"],
    );
    for f in &findings {
        summary.row([
            Cell::from(f.experiment),
            Cell::from(f.metric.clone()),
            Cell::from(f.paper.clone()),
            Cell::Num(f.measured, 2),
            Cell::from(if f.in_band { "yes" } else { "NO" }),
        ]);
    }
    let out_of_band = findings.iter().filter(|f| !f.in_band).count();
    let mut text = String::new();
    summary.render_into(&mut text);
    let _ = write!(
        text,
        "\n{} findings, {} outside the acceptance band.\n",
        findings.len(),
        out_of_band
    );
    HarnessOutput {
        text,
        findings,
        cache_stats: None,
        metrics: Vec::new(),
    }
}
