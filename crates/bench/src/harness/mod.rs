//! Experiment harness logic, one module per figure.
//!
//! The binaries in `src/bin/` are thin wrappers: they parse `--jobs`,
//! call the matching `run` function here with a [`Runner`], print the
//! returned text, and record the findings. Keeping the logic in the
//! library makes it callable from the determinism integration tests and
//! from the combined `all_experiments` pass without shelling out.
//!
//! Every `run` function is a pure function of its inputs plus the
//! experiment constants, and returns *identical* output at every
//! [`Runner::jobs`] value (enforced by `tests/determinism.rs`).
//!
//! [`Runner`]: crate::runner::Runner
//! [`Runner::jobs`]: crate::runner::Runner::jobs

pub mod ablations;
pub mod all_experiments;
pub mod chaos;
pub mod cluster;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod verify_lint;
pub mod verify_study;

use std::io;
use std::path::Path;
use std::time::Instant;

use crate::journal::{
    self, install_sigint_handler, run_resumable, CellPayload, Interrupt, Journal, ResumeArgs,
    ResumeMode,
};
use crate::runner::{BenchEntry, RunPolicy, Runner};
use crate::Finding;

/// Runs one harness under `runner` and produces its fully-populated
/// benchmark ledger row: wall time, any cache counters the harness
/// reports, and — when `runner` is parallel — a serial (`--jobs 1`)
/// reference run with `serial_wall_ms` and the byte-identity bit set.
///
/// Serial invocations get a timing-plus-cache row only; the optional
/// reference fields stay unset (and therefore unserialized).
pub fn measure<F>(harness: &'static str, runner: &Runner, run: F) -> (HarnessOutput, BenchEntry)
where
    F: Fn(&Runner) -> HarnessOutput,
{
    let start = Instant::now();
    let out = run(runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut entry = BenchEntry::timing(harness, runner.jobs(), wall_ms);
    if let Some((hits, misses)) = out.cache_stats {
        entry.cache_hits = Some(hits);
        entry.cache_misses = Some(misses);
    }
    entry.metrics.extend(out.metrics.iter().copied());
    if runner.jobs() > 1 {
        let serial_start = Instant::now();
        let serial = run(&Runner::new(1));
        entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
        entry.parallel_matches_serial = Some(
            serial.text == out.text
                && crate::findings_json(&serial.findings) == crate::findings_json(&out.findings),
        );
    }
    (out, entry)
}

/// Outcome of a journaled (crash-safe) harness run.
#[derive(Debug)]
pub enum Journaled {
    /// Every cell completed; the journal was removed.
    Complete {
        /// The rendered harness output — byte-identical to a straight
        /// run's, however many cells came from the journal.
        out: HarnessOutput,
        /// Cells satisfied from the journal.
        replayed: usize,
        /// Cells executed (and checkpointed) by this process.
        executed: usize,
    },
    /// The run stopped gracefully (SIGINT, `--max-wall-ms`,
    /// `--halt-after`); completed cells are checkpointed and a
    /// `--resume` invocation picks up from here.
    Interrupted {
        /// Cells checkpointed so far (this process plus the journal).
        completed: usize,
        /// Grid size.
        total: usize,
    },
}

/// The crash-safe path every resumable harness shares: opens the
/// journal for `name` under `root` (honoring `--fresh`), replays
/// checkpointed cells, executes the missing ones with graceful
/// interruption wired up, and — only when the grid completed — renders
/// the merged output and removes the journal. Journal health notes go
/// to stderr; stdout stays byte-identical to a straight run.
///
/// # Errors
///
/// Filesystem errors opening or repairing the journal.
///
/// # Panics
///
/// Mirrors [`Runner::run`]: if any cell exhausts its retry budget the
/// grid finishes and then panics with the structured failure summary.
#[allow(clippy::too_many_arguments)]
pub fn run_journaled<T, F, R>(
    runner: &Runner,
    root: &Path,
    name: &str,
    fingerprint: u64,
    cells: usize,
    resume: &ResumeArgs,
    cell: F,
    render: R,
) -> io::Result<Journaled>
where
    T: CellPayload + Send + Sync,
    F: Fn(usize) -> T + Sync,
    R: FnOnce(Vec<T>) -> HarnessOutput,
{
    if resume.mode == ResumeMode::Fresh {
        journal::discard(root, name)?;
    }
    let mut journal = Journal::<T>::open_at(root, name, fingerprint, cells)?;
    let scan = journal.scan();
    if scan.replayed + scan.damaged + scan.stale > 0 {
        eprintln!(
            "note: journal {name}: {} cells replayed, {} damaged records dropped, \
             {} stale records ignored",
            scan.replayed, scan.damaged, scan.stale
        );
    }
    install_sigint_handler();
    let mut interrupt = Interrupt::new();
    if let Some(n) = resume.halt_after {
        interrupt = interrupt.with_halt_after(n);
    }
    if let Some(limit) = resume.max_wall {
        interrupt = interrupt.with_max_wall(limit);
    }
    let out = run_resumable(runner, RunPolicy::default(), &mut journal, &interrupt, cell);
    assert!(
        out.failures.is_empty(),
        "{} of {cells} cells failed:{}",
        out.failures.len(),
        out.failures
            .iter()
            .map(|f| format!(
                "\n  cell {} ({} attempt{}): {}",
                f.index,
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.message
            ))
            .collect::<String>()
    );
    if out.interrupted {
        let completed = out.results.iter().flatten().count();
        return Ok(Journaled::Interrupted {
            completed,
            total: cells,
        });
    }
    let values: Vec<T> = out.results.into_iter().flatten().collect();
    let rendered = render(values);
    journal.remove();
    Ok(Journaled::Complete {
        out: rendered,
        replayed: out.replayed,
        executed: out.executed,
    })
}

/// Rendered text plus machine-readable findings from one harness run.
#[derive(Debug, Clone)]
pub struct HarnessOutput {
    /// Exactly what the binary prints to stdout (deterministic).
    pub text: String,
    /// The paper-vs-measured rows for `results/<experiment>.json`.
    pub findings: Vec<Finding>,
    /// `(hits, misses)` of any memoization the harness ran behind —
    /// e.g. deduplicated closed-loop simulations — for the benchmark
    /// ledger. `None` when the harness has no cache.
    pub cache_stats: Option<(u64, u64)>,
    /// Extra named numeric metrics for the benchmark ledger (folded into
    /// [`BenchEntry::metrics`] by [`measure`]) — e.g. the cluster
    /// study's world-arena allocation counters. Excluded from the
    /// harness's deterministic text/findings output.
    pub metrics: Vec<(&'static str, f64)>,
}

impl HarnessOutput {
    /// Merges per-cell `(text, findings)` results in cell order.
    fn merge(cells: Vec<(String, Vec<Finding>)>) -> Self {
        let mut text = String::new();
        let mut findings = Vec::new();
        for (t, f) in cells {
            text.push_str(&t);
            findings.extend(f);
        }
        HarnessOutput {
            text,
            findings,
            cache_stats: None,
            metrics: Vec::new(),
        }
    }
}
