//! Experiment harness logic, one module per figure.
//!
//! The binaries in `src/bin/` are thin wrappers: they parse `--jobs`,
//! call the matching `run` function here with a [`Runner`], print the
//! returned text, and record the findings. Keeping the logic in the
//! library makes it callable from the determinism integration tests and
//! from the combined `all_experiments` pass without shelling out.
//!
//! Every `run` function is a pure function of its inputs plus the
//! experiment constants, and returns *identical* output at every
//! [`Runner::jobs`] value (enforced by `tests/determinism.rs`).
//!
//! [`Runner`]: crate::runner::Runner
//! [`Runner::jobs`]: crate::runner::Runner::jobs

pub mod ablations;
pub mod all_experiments;
pub mod chaos;
pub mod cluster;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod verify_lint;
pub mod verify_study;

use std::time::Instant;

use crate::runner::{BenchEntry, Runner};
use crate::Finding;

/// Runs one harness under `runner` and produces its fully-populated
/// benchmark ledger row: wall time, any cache counters the harness
/// reports, and — when `runner` is parallel — a serial (`--jobs 1`)
/// reference run with `serial_wall_ms` and the byte-identity bit set.
///
/// Serial invocations get a timing-plus-cache row only; the optional
/// reference fields stay unset (and therefore unserialized).
pub fn measure<F>(harness: &'static str, runner: &Runner, run: F) -> (HarnessOutput, BenchEntry)
where
    F: Fn(&Runner) -> HarnessOutput,
{
    let start = Instant::now();
    let out = run(runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut entry = BenchEntry::timing(harness, runner.jobs(), wall_ms);
    if let Some((hits, misses)) = out.cache_stats {
        entry.cache_hits = Some(hits);
        entry.cache_misses = Some(misses);
    }
    entry.metrics.extend(out.metrics.iter().copied());
    if runner.jobs() > 1 {
        let serial_start = Instant::now();
        let serial = run(&Runner::new(1));
        entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
        entry.parallel_matches_serial = Some(
            serial.text == out.text
                && crate::findings_json(&serial.findings) == crate::findings_json(&out.findings),
        );
    }
    (out, entry)
}

/// Rendered text plus machine-readable findings from one harness run.
#[derive(Debug, Clone)]
pub struct HarnessOutput {
    /// Exactly what the binary prints to stdout (deterministic).
    pub text: String,
    /// The paper-vs-measured rows for `results/<experiment>.json`.
    pub findings: Vec<Finding>,
    /// `(hits, misses)` of any memoization the harness ran behind —
    /// e.g. deduplicated closed-loop simulations — for the benchmark
    /// ledger. `None` when the harness has no cache.
    pub cache_stats: Option<(u64, u64)>,
    /// Extra named numeric metrics for the benchmark ledger (folded into
    /// [`BenchEntry::metrics`] by [`measure`]) — e.g. the cluster
    /// study's world-arena allocation counters. Excluded from the
    /// harness's deterministic text/findings output.
    pub metrics: Vec<(&'static str, f64)>,
}

impl HarnessOutput {
    /// Merges per-cell `(text, findings)` results in cell order.
    fn merge(cells: Vec<(String, Vec<Finding>)>) -> Self {
        let mut text = String::new();
        let mut findings = Vec::new();
        for (t, f) in cells {
            text.push_str(&t);
            findings.extend(f);
        }
        HarnessOutput {
            text,
            findings,
            cache_stats: None,
            metrics: Vec::new(),
        }
    }
}
