//! Experiment harness logic, one module per figure.
//!
//! The binaries in `src/bin/` are thin wrappers: they parse `--jobs`,
//! call the matching `run` function here with a [`Runner`], print the
//! returned text, and record the findings. Keeping the logic in the
//! library makes it callable from the determinism integration tests and
//! from the combined `all_experiments` pass without shelling out.
//!
//! Every `run` function is a pure function of its inputs plus the
//! experiment constants, and returns *identical* output at every
//! [`Runner::jobs`] value (enforced by `tests/determinism.rs`).
//!
//! [`Runner`]: crate::runner::Runner
//! [`Runner::jobs`]: crate::runner::Runner::jobs

pub mod ablations;
pub mod all_experiments;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod verify_study;

use crate::Finding;

/// Rendered text plus machine-readable findings from one harness run.
#[derive(Debug, Clone)]
pub struct HarnessOutput {
    /// Exactly what the binary prints to stdout (deterministic).
    pub text: String,
    /// The paper-vs-measured rows for `results/<experiment>.json`.
    pub findings: Vec<Finding>,
}

impl HarnessOutput {
    /// Merges per-cell `(text, findings)` results in cell order.
    fn merge(cells: Vec<(String, Vec<Finding>)>) -> Self {
        let mut text = String::new();
        let mut findings = Vec::new();
        for (t, f) in cells {
            text.push_str(&t);
            findings.extend(f);
        }
        HarnessOutput { text, findings }
    }
}
