//! Figure 3 — macrobenchmark throughput and latency, normalized to
//! patched Docker, on both clouds (see the `fig3_macro` binary).

use xcontainers::prelude::*;
use xcontainers::workloads::apps::figure3_profiles;
use xcontainers::workloads::http::arena_counters;

use super::HarnessOutput;
use crate::runner::Runner;
use crate::{clouds, platform_matrix, Finding};

const CONNECTIONS: u32 = 50;
const DURATION_MS: u64 = 300;
const SEED: u64 = 7;

fn measure(
    platform: &Platform,
    profile: &RequestProfile,
    costs: &CostModel,
    cache: &ClosedLoopCache,
) -> (f64, f64) {
    // Default images: nginx:1.13 runs one worker, memcached:1.5.7 four
    // threads, redis:3.2.11 a single event loop.
    let workers = match profile.name {
        "memcached" => 4,
        _ => 1,
    };
    let server = ServerModel {
        platform: platform.clone(),
        profile: profile.clone(),
        workers,
        cores: 4,
    };
    let r = run_closed_loop_cached(
        &server,
        costs,
        CONNECTIONS,
        Nanos::from_millis(DURATION_MS),
        SEED,
        cache,
    );
    (r.throughput_rps, r.latency.mean() / 1_000.0)
}

/// One (cloud, profile) cell: a whole normalized table plus its
/// findings, against a shared [`ClosedLoopCache`].
///
/// The cache is keyed on the derived [`PlatformCosts`] table, so every
/// coincidence in derived parameters — the normalization baseline vs
/// the matrix's patched-Docker entry, the patched/unpatched pairs whose
/// guest kernel ignores the host patch state (X-Container,
/// Clear Container), and any collision across cells or repeated grid
/// runs — costs one simulation total.
fn cell(
    cloud: CloudEnv,
    profile: &RequestProfile,
    costs: &CostModel,
    cache: &ClosedLoopCache,
) -> (String, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut table = Table::new(
        &format!("Figure 3: {} — {}", profile.name, cloud.name()),
        &["configuration", "rel. throughput", "rel. latency"],
    );
    let (baseline, matrix) = platform_matrix(cloud);
    let (base_tput, base_lat) = measure(&baseline, profile, costs, cache);
    for platform in matrix {
        let (tput, lat) = measure(&platform, profile, costs, cache);
        table.row([
            Cell::from(platform.name()),
            Cell::Num(tput / base_tput, 2),
            Cell::Num(lat / base_lat, 2),
        ]);
        if platform.kind() == PlatformKind::XContainer && platform.is_patched() {
            let (paper, band): (&str, (f64, f64)) = match profile.name {
                "nginx-static" => ("1.21-1.50x Docker", (1.0, 1.9)),
                "memcached" => ("1.34-2.08x Docker", (1.2, 2.6)),
                _ => ("≈1x Docker (Redis)", (0.8, 1.5)),
            };
            findings.push(Finding {
                experiment: "fig3",
                metric: format!(
                    "x_{}_{}_throughput",
                    profile.name,
                    cloud.name().to_lowercase()
                ),
                paper: paper.to_owned(),
                measured: tput / base_tput,
                in_band: (band.0..band.1).contains(&(tput / base_tput)),
            });
        }
    }
    let mut text = String::new();
    table.render_into(&mut text);
    text.push('\n');
    (text, findings)
}

/// Runs the full cloud × profile grid, one cell per (cloud, profile),
/// every cell sharing `cache`. The `fig3_macro` binary passes one cache
/// that persists across its measured run *and* the serial reference run
/// inside [`super::measure`], so repeated grids cost almost nothing.
///
/// Cell text and findings are unaffected by cache state (results are
/// observationally identical to uncached simulation), so output stays
/// byte-identical at every `--jobs` value even though hit/miss totals
/// depend on cell scheduling. The reported `cache_stats` are this
/// call's delta, not the cache's lifetime totals.
pub fn run_with(runner: &Runner, cache: &ClosedLoopCache) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let profiles = figure3_profiles();
    let (hits0, misses0) = (cache.hits(), cache.misses());
    let (allocs0, reuses0) = arena_counters();
    let grid: Vec<(CloudEnv, RequestProfile)> = clouds()
        .into_iter()
        .flat_map(|cloud| profiles.iter().map(move |p| (cloud, p.clone())))
        .collect();
    let cells = runner.run(grid.len(), |i| {
        let (cloud, profile) = &grid[i];
        cell(*cloud, profile, &costs, cache)
    });
    let mut out = HarnessOutput::merge(cells);
    out.cache_stats = Some((cache.hits() - hits0, cache.misses() - misses0));
    // Closed-loop worker-world arena effectiveness (ledger-only; the
    // alloc/reuse split depends on thread count and cache hits).
    let (allocs1, reuses1) = arena_counters();
    out.metrics = vec![
        ("arena_allocs", (allocs1 - allocs0) as f64),
        ("arena_reuses", (reuses1 - reuses0) as f64),
    ];
    out.text.push_str(
        "Shape (§5.3): X-Containers lead Docker most on memcached (syscall-\n\
         dense ops), moderately on NGINX, and only match it on Redis (user-\n\
         space compute dominates). gVisor and Clear Containers trail; the\n\
         patch penalizes Docker and Xen-Containers only.\n",
    );
    out
}

/// [`run_with`] against a fresh cache — the entry point `all_experiments`
/// and the determinism suite use.
pub fn run(runner: &Runner) -> HarnessOutput {
    let cache = ClosedLoopCache::new();
    run_with(runner, &cache)
}
