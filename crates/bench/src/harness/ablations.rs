//! Ablations of the design choices DESIGN.md §4 calls out (see the
//! `ablations` binary). Each numbered section is a group of runner
//! cells:
//!
//! 1. **ABOM on/off** — how much of the X-Container win is the binary
//!    optimizer vs the restructured trap path,
//! 2. **Global-bit mappings** — the §4.3 TLB optimization,
//! 3. **Hierarchical scheduling** — Figure 8 at N=400 with the X-Kernel
//!    forced to flat per-request switch costs,
//! 4. **Meltdown/KPTI** — the patch tax per platform,
//! 5. **9-byte phase 2** — patching completeness with the second phase
//!    disabled.
//!
//! The scalability, KPTI and phase-2 sections are split into per-row
//! sub-cells (nine cells total instead of five), so `--jobs N` keeps
//! scaling past five workers; the sections are reassembled from the
//! index-ordered merge, so the output is byte-identical at any worker
//! count (every cell is deterministic).

use std::fmt::Write as _;

use xcontainers::abom::binaries::{glibc_large_nr_wrapper_image, invoke};
use xcontainers::prelude::*;
use xcontainers::workloads::apps::memcached;
use xcontainers::workloads::scalability::{throughput, ScalabilityConfig};
use xcontainers::xen::abi::XenAbi;

use super::HarnessOutput;
use crate::runner::Runner;
use crate::Finding;

/// One fine-grained cell's result; sections are reassembled in order.
enum CellOut {
    /// A complete section (text + findings).
    Section(String, Vec<Finding>),
    /// One Figure-8-at-400 throughput point (section 3).
    SchedPoint(f64),
    /// One platform row of the KPTI table (section 4).
    KptiRow(&'static str, Nanos, Nanos),
    /// One phase-2 state row (section 5).
    PhaseRow(bool, f64, u64),
}

fn abom_on_off(cloud: CloudEnv, costs: &CostModel) -> CellOut {
    let on = Platform::x_container(cloud, true);
    let off = Platform::x_container_no_abom(cloud, true);
    let syscall_gain =
        off.syscall_cost(costs).as_nanos() as f64 / on.syscall_cost(costs).as_nanos() as f64;
    let mem_on = memcached().service_time(&on, costs);
    let mem_off = memcached().service_time(&off, costs);
    let macro_gain = mem_off.as_nanos() as f64 / mem_on.as_nanos() as f64;
    let mut t = Table::new(
        "Ablation 1: ABOM on vs off (X-Container, EC2 patched)",
        &["metric", "ABOM off", "ABOM on", "gain"],
    );
    t.row([
        "syscall dispatch".into(),
        Cell::from(off.syscall_cost(costs).to_string()),
        Cell::from(on.syscall_cost(costs).to_string()),
        Cell::Num(syscall_gain, 1),
    ]);
    t.row([
        "memcached service time".into(),
        Cell::from(mem_off.to_string()),
        Cell::from(mem_on.to_string()),
        Cell::Num(macro_gain, 2),
    ]);
    let findings = vec![Finding {
        experiment: "ablations",
        metric: "abom_syscall_gain".to_owned(),
        paper: "function calls vs forwarded traps".to_owned(),
        measured: syscall_gain,
        in_band: syscall_gain > 5.0,
    }];
    CellOut::Section(section_text(&t), findings)
}

fn global_bit(costs: &CostModel) -> CellOut {
    let xk = XenAbi::XKernel.process_switch_cost(costs);
    let pv = XenAbi::XenPv.process_switch_cost(costs);
    let mut t = Table::new(
        "Ablation 2: global-bit kernel mappings (§4.3)",
        &["configuration", "process switch"],
    );
    t.row([
        "global bit set (X-LibOS)".into(),
        Cell::from(xk.to_string()),
    ]);
    t.row([
        "global bit clear (plain PV)".into(),
        Cell::from(pv.to_string()),
    ]);
    let findings = vec![Finding {
        experiment: "ablations",
        metric: "global_bit_switch_saving_ns".to_owned(),
        paper: "avoids kernel-TLB refill per switch".to_owned(),
        measured: (pv - xk).as_nanos() as f64,
        in_band: pv > xk,
    }];
    CellOut::Section(section_text(&t), findings)
}

/// The three KPTI-tax platforms, in table-row order.
const KPTI_PLATFORMS: [&str; 3] = ["Docker", "Xen-Container", "X-Container"];

fn kpti_row(name: &'static str, cloud: CloudEnv, costs: &CostModel) -> CellOut {
    let (p_on, p_off) = match name {
        "Docker" => (
            Platform::docker(cloud, true),
            Platform::docker(cloud, false),
        ),
        "Xen-Container" => (
            Platform::xen_container(cloud, true),
            Platform::xen_container(cloud, false),
        ),
        _ => (
            Platform::x_container(cloud, true),
            Platform::x_container(cloud, false),
        ),
    };
    CellOut::KptiRow(name, p_off.syscall_cost(costs), p_on.syscall_cost(costs))
}

fn phase2_row(phase2: bool) -> CellOut {
    let mut image = glibc_large_nr_wrapper_image(15);
    let entry = image.symbol("wrapper").expect("wrapper");
    let mut kernel = XContainerKernel::with_config(AbomConfig {
        enabled: true,
        nine_byte_phase2: phase2,
        preflight_verify: false,
    });
    for _ in 0..100 {
        invoke(&mut image, &mut kernel, entry, None).expect("invoke");
    }
    CellOut::PhaseRow(
        phase2,
        kernel.stats().reduction_percent(),
        kernel.stats().return_fixups,
    )
}

/// Renders one section table followed by the blank separator line.
fn section_text(t: &Table) -> String {
    let mut text = String::new();
    t.render_into(&mut text);
    text.push('\n');
    text
}

/// Runs the nine fine-grained cells and reassembles the five sections.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let cloud = CloudEnv::AmazonEc2;
    let cells = runner.run(9, |i| match i {
        0 => abom_on_off(cloud, &costs),
        1 => global_bit(&costs),
        2 => CellOut::SchedPoint(
            throughput(ScalabilityConfig::XContainer, 400, &costs).expect("x@400"),
        ),
        3 => {
            CellOut::SchedPoint(throughput(ScalabilityConfig::Docker, 400, &costs).expect("d@400"))
        }
        4..=6 => kpti_row(KPTI_PLATFORMS[i - 4], cloud, &costs),
        7 => phase2_row(true),
        _ => phase2_row(false),
    });

    let mut sections: Vec<(String, Vec<Finding>)> = Vec::new();
    let mut sched_points = Vec::new();
    let mut kpti_rows = Vec::new();
    let mut phase_rows = Vec::new();
    for cell in cells {
        match cell {
            CellOut::Section(text, findings) => sections.push((text, findings)),
            CellOut::SchedPoint(v) => sched_points.push(v),
            CellOut::KptiRow(name, off, on) => kpti_rows.push((name, off, on)),
            CellOut::PhaseRow(phase2, reduction, fixups) => {
                phase_rows.push((phase2, reduction, fixups));
            }
        }
    }

    let (x400, d400) = (sched_points[0], sched_points[1]);
    let mut t = Table::new(
        "Ablation 3: hierarchical vs flat scheduling at N=400",
        &["configuration", "aggregate req/s"],
    );
    t.row([
        "hierarchical (X-Kernel + X-LibOS)".into(),
        Cell::Num(x400, 0),
    ]);
    t.row(["flat (one CFS, 1600 tasks)".into(), Cell::Num(d400, 0)]);
    sections.push((section_text(&t), Vec::new()));

    let mut t = Table::new(
        "Ablation 4: Meltdown patch tax on syscall dispatch",
        &["platform", "unpatched", "patched", "tax"],
    );
    for (name, a, b) in &kpti_rows {
        t.row([
            (*name).into(),
            Cell::from(a.to_string()),
            Cell::from(b.to_string()),
            Cell::Num(b.as_nanos() as f64 / a.as_nanos() as f64, 2),
        ]);
    }
    sections.push((section_text(&t), Vec::new()));

    let mut t = Table::new(
        "Ablation 5: 9-byte replacement phase 2 (jmp back) on/off",
        &["phase 2", "reduction %", "return fixups"],
    );
    for (phase2, reduction, fixups) in &phase_rows {
        t.row([
            Cell::from(if *phase2 { "on" } else { "off" }),
            Cell::Num(*reduction, 1),
            Cell::from(*fixups),
        ]);
    }
    let mut text = String::new();
    t.render_into(&mut text);
    let _ = write!(
        text,
        "\n\
         Both states deliver the same reduction — the paper's claim that\n\
         each intermediate state of the two-phase patch is valid; phase 2\n\
         merely replaces dead bytes.\n"
    );
    sections.push((text, Vec::new()));

    HarnessOutput::merge(sections)
}
