//! Ablations of the design choices DESIGN.md §4 calls out (see the
//! `ablations` binary). Each numbered section is one runner cell:
//!
//! 1. **ABOM on/off** — how much of the X-Container win is the binary
//!    optimizer vs the restructured trap path,
//! 2. **Global-bit mappings** — the §4.3 TLB optimization,
//! 3. **Hierarchical scheduling** — Figure 8 at N=400 with the X-Kernel
//!    forced to flat per-request switch costs,
//! 4. **Meltdown/KPTI** — the patch tax per platform,
//! 5. **9-byte phase 2** — patching completeness with the second phase
//!    disabled.

use xcontainers::abom::binaries::{glibc_large_nr_wrapper_image, invoke};
use xcontainers::prelude::*;
use xcontainers::workloads::apps::memcached;
use xcontainers::workloads::scalability::{throughput, ScalabilityConfig};
use xcontainers::xen::abi::XenAbi;

use super::HarnessOutput;
use crate::runner::Runner;
use crate::Finding;

fn abom_on_off(cloud: CloudEnv, costs: &CostModel) -> (String, Vec<Finding>) {
    let on = Platform::x_container(cloud, true);
    let off = Platform::x_container_no_abom(cloud, true);
    let syscall_gain =
        off.syscall_cost(costs).as_nanos() as f64 / on.syscall_cost(costs).as_nanos() as f64;
    let mem_on = memcached().service_time(&on, costs);
    let mem_off = memcached().service_time(&off, costs);
    let macro_gain = mem_off.as_nanos() as f64 / mem_on.as_nanos() as f64;
    let mut t = Table::new(
        "Ablation 1: ABOM on vs off (X-Container, EC2 patched)",
        &["metric", "ABOM off", "ABOM on", "gain"],
    );
    t.row([
        "syscall dispatch".into(),
        Cell::from(off.syscall_cost(costs).to_string()),
        Cell::from(on.syscall_cost(costs).to_string()),
        Cell::Num(syscall_gain, 1),
    ]);
    t.row([
        "memcached service time".into(),
        Cell::from(mem_off.to_string()),
        Cell::from(mem_on.to_string()),
        Cell::Num(macro_gain, 2),
    ]);
    let findings = vec![Finding {
        experiment: "ablations",
        metric: "abom_syscall_gain".to_owned(),
        paper: "function calls vs forwarded traps".to_owned(),
        measured: syscall_gain,
        in_band: syscall_gain > 5.0,
    }];
    (format!("{t}\n"), findings)
}

fn global_bit(costs: &CostModel) -> (String, Vec<Finding>) {
    let xk = XenAbi::XKernel.process_switch_cost(costs);
    let pv = XenAbi::XenPv.process_switch_cost(costs);
    let mut t = Table::new(
        "Ablation 2: global-bit kernel mappings (§4.3)",
        &["configuration", "process switch"],
    );
    t.row([
        "global bit set (X-LibOS)".into(),
        Cell::from(xk.to_string()),
    ]);
    t.row([
        "global bit clear (plain PV)".into(),
        Cell::from(pv.to_string()),
    ]);
    let findings = vec![Finding {
        experiment: "ablations",
        metric: "global_bit_switch_saving_ns".to_owned(),
        paper: "avoids kernel-TLB refill per switch".to_owned(),
        measured: (pv - xk).as_nanos() as f64,
        in_band: pv > xk,
    }];
    (format!("{t}\n"), findings)
}

fn scheduling(costs: &CostModel) -> (String, Vec<Finding>) {
    let x400 = throughput(ScalabilityConfig::XContainer, 400, costs).expect("x@400");
    let d400 = throughput(ScalabilityConfig::Docker, 400, costs).expect("d@400");
    let mut t = Table::new(
        "Ablation 3: hierarchical vs flat scheduling at N=400",
        &["configuration", "aggregate req/s"],
    );
    t.row([
        "hierarchical (X-Kernel + X-LibOS)".into(),
        Cell::Num(x400, 0),
    ]);
    t.row(["flat (one CFS, 1600 tasks)".into(), Cell::Num(d400, 0)]);
    (format!("{t}\n"), Vec::new())
}

fn kpti_tax(cloud: CloudEnv, costs: &CostModel) -> (String, Vec<Finding>) {
    let mut t = Table::new(
        "Ablation 4: Meltdown patch tax on syscall dispatch",
        &["platform", "unpatched", "patched", "tax"],
    );
    for (name, p_on, p_off) in [
        (
            "Docker",
            Platform::docker(cloud, true),
            Platform::docker(cloud, false),
        ),
        (
            "Xen-Container",
            Platform::xen_container(cloud, true),
            Platform::xen_container(cloud, false),
        ),
        (
            "X-Container",
            Platform::x_container(cloud, true),
            Platform::x_container(cloud, false),
        ),
    ] {
        let a = p_off.syscall_cost(costs);
        let b = p_on.syscall_cost(costs);
        t.row([
            name.into(),
            Cell::from(a.to_string()),
            Cell::from(b.to_string()),
            Cell::Num(b.as_nanos() as f64 / a.as_nanos() as f64, 2),
        ]);
    }
    (format!("{t}\n"), Vec::new())
}

fn nine_byte_phase2() -> (String, Vec<Finding>) {
    let mut results = Vec::new();
    for phase2 in [true, false] {
        let mut image = glibc_large_nr_wrapper_image(15);
        let entry = image.symbol("wrapper").expect("wrapper");
        let mut kernel = XContainerKernel::with_config(AbomConfig {
            enabled: true,
            nine_byte_phase2: phase2,
            preflight_verify: false,
        });
        for _ in 0..100 {
            invoke(&mut image, &mut kernel, entry, None).expect("invoke");
        }
        results.push((
            phase2,
            kernel.stats().reduction_percent(),
            kernel.stats().return_fixups,
        ));
    }
    let mut t = Table::new(
        "Ablation 5: 9-byte replacement phase 2 (jmp back) on/off",
        &["phase 2", "reduction %", "return fixups"],
    );
    for (phase2, reduction, fixups) in &results {
        t.row([
            Cell::from(if *phase2 { "on" } else { "off" }),
            Cell::Num(*reduction, 1),
            Cell::from(*fixups),
        ]);
    }
    let text = format!(
        "{t}\n\
         Both states deliver the same reduction — the paper's claim that\n\
         each intermediate state of the two-phase patch is valid; phase 2\n\
         merely replaces dead bytes.\n"
    );
    (text, Vec::new())
}

/// Runs the five ablation sections, one cell each.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let cloud = CloudEnv::AmazonEc2;
    let cells = runner.run(5, |i| match i {
        0 => abom_on_off(cloud, &costs),
        1 => global_bit(&costs),
        2 => scheduling(&costs),
        3 => kpti_tax(cloud, &costs),
        _ => nine_byte_phase2(),
    });
    HarnessOutput::merge(cells)
}
