//! Verify lint — structured diagnostics sweep over the Table 1 corpus
//! (see the `verify_lint` binary).
//!
//! Where `verify_study` asks *how many* sites each analyzer generation
//! proves, this harness asks *what the analyzer has to say about every
//! site it could not prove silently*: each application's wrapper
//! library is analyzed with the default (interprocedural) verifier and
//! every non-trivially-`Safe` site becomes a [`LintFinding`] — a stable
//! rule id (`XV0xx` coverage gaps, `XV1xx` proven-unsafe structure,
//! `XV000` upgrade notes), a severity, the rendered reason chain, and a
//! fix hint. The sweep reports per-rule counts and the corpus coverage
//! percentage, and the binary gates both against committed floors.
//!
//! Everything here is deterministic (no wall-time columns), so the
//! binary's digest gate hashes the full rendered output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use xcontainers::prelude::*;
use xcontainers::verify::{lint_report, render_json, summarize, LintFinding, Severity, Verifier};
use xcontainers::workloads::table1::table1_profiles;

use crate::runner::Runner;
use crate::Finding;

/// Minimum corpus coverage (percent of sites proved `Safe`) the gate
/// accepts. The interprocedural analyzer proves the whole corpus; a
/// regression that loses even MySQL's one shim site lands at ~98.2%.
pub const COVERAGE_FLOOR_PCT: f64 = 99.5;

/// Maximum `Unknown` verdicts the gate accepts across the corpus.
pub const UNKNOWN_CEILING: usize = 0;

/// Whether `unknown` passes the [`UNKNOWN_CEILING`] gate. The ceiling
/// is currently the type's minimum, which makes a naive `<=` trip
/// clippy; the helper keeps the ceiling semantics if it is ever raised.
#[allow(clippy::absurd_extreme_comparisons)]
pub fn within_unknown_ceiling(unknown: usize) -> bool {
    unknown <= UNKNOWN_CEILING
}

/// Lint results for one application's wrapper library.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Application name.
    pub name: &'static str,
    /// Total syscall sites.
    pub total: usize,
    /// Sites proved `Safe` (including upgrades).
    pub safe: usize,
    /// Sites left `Unknown`.
    pub unknown: usize,
    /// Sites proven `Unsafe`.
    pub unsafe_: usize,
    /// Sites upgraded by interprocedural propagation.
    pub upgraded: usize,
    /// Structured findings, in site order.
    pub findings: Vec<LintFinding>,
}

/// Full sweep output: one row per Table 1 application.
#[derive(Debug, Clone)]
pub struct Output {
    /// Per-application rows, in Table 1 order.
    pub rows: Vec<LintRow>,
}

impl Output {
    /// Total syscall sites across the corpus.
    pub fn total_sites(&self) -> usize {
        self.rows.iter().map(|r| r.total).sum()
    }

    /// Total sites proved `Safe`.
    pub fn total_safe(&self) -> usize {
        self.rows.iter().map(|r| r.safe).sum()
    }

    /// Total `Unknown` verdicts.
    pub fn total_unknown(&self) -> usize {
        self.rows.iter().map(|r| r.unknown).sum()
    }

    /// Total interprocedural upgrades.
    pub fn total_upgraded(&self) -> usize {
        self.rows.iter().map(|r| r.upgraded).sum()
    }

    /// Corpus coverage percentage.
    pub fn coverage_pct(&self) -> f64 {
        if self.total_sites() == 0 {
            100.0
        } else {
            100.0 * self.total_safe() as f64 / self.total_sites() as f64
        }
    }

    /// Findings-per-rule counts across the corpus.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for r in &self.rows {
            for f in &r.findings {
                *counts.entry(f.rule).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The findings recorded to `results/verify_lint.json`.
    pub fn findings(&self) -> Vec<Finding> {
        vec![
            Finding {
                experiment: "verify_lint",
                metric: "corpus_coverage_pct".to_owned(),
                paper: format!("at least {COVERAGE_FLOOR_PCT}% of sites proved Safe"),
                measured: self.coverage_pct(),
                in_band: self.coverage_pct() >= COVERAGE_FLOOR_PCT,
            },
            Finding {
                experiment: "verify_lint",
                metric: "unknown_sites".to_owned(),
                paper: format!("at most {UNKNOWN_CEILING} Unknown verdicts"),
                measured: self.total_unknown() as f64,
                in_band: within_unknown_ceiling(self.total_unknown()),
            },
            Finding {
                experiment: "verify_lint",
                metric: "error_findings".to_owned(),
                paper: "0 proven-unsafe sites in the corpus".to_owned(),
                measured: self
                    .rows
                    .iter()
                    .flat_map(|r| &r.findings)
                    .filter(|f| f.severity == Severity::Error)
                    .count() as f64,
                in_band: self.rows.iter().all(|r| r.unsafe_ == 0),
            },
        ]
    }

    /// Exactly what the `verify_lint` binary prints to stdout.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Verify lint: structured diagnostics over the Table 1 corpus",
            &[
                "Application",
                "sites",
                "safe",
                "unknown",
                "unsafe",
                "upgraded",
                "findings",
            ],
        );
        for r in &self.rows {
            table.row([
                Cell::from(r.name),
                Cell::Num(r.total as f64, 0),
                Cell::Num(r.safe as f64, 0),
                Cell::Num(r.unknown as f64, 0),
                Cell::Num(r.unsafe_ as f64, 0),
                Cell::Num(r.upgraded as f64, 0),
                Cell::Num(r.findings.len() as f64, 0),
            ]);
        }
        let mut out = String::new();
        table.render_into(&mut out);
        out.push_str("\nrule counts:");
        if self.rule_counts().is_empty() {
            out.push_str(" none");
        }
        for (rule, count) in self.rule_counts() {
            let _ = write!(out, " {rule}\u{d7}{count}");
        }
        let _ = writeln!(
            out,
            "\ncoverage: {}/{} sites ({:.1}%), {} upgraded interprocedurally",
            self.total_safe(),
            self.total_sites(),
            self.coverage_pct(),
            self.total_upgraded(),
        );
        for r in &self.rows {
            if r.findings.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n--- {} ---", r.name);
            out.push_str(&xcontainers::verify::render_text(&r.findings));
        }
        out
    }

    /// Machine-readable sweep: one JSON object with per-app finding
    /// arrays (hand-rolled, stable key order).
    pub fn machine_json(&self) -> String {
        let mut out = String::from("{\"apps\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"sites\":{},\"safe\":{},\"unknown\":{},\
                 \"unsafe\":{},\"upgraded\":{},\"findings\":{}}}",
                r.name,
                r.total,
                r.safe,
                r.unknown,
                r.unsafe_,
                r.upgraded,
                render_json(&r.findings)
            );
        }
        let _ = write!(
            out,
            "],\"coverage_pct\":{:.3},\"unknown\":{}}}",
            self.coverage_pct(),
            self.total_unknown()
        );
        out
    }

    /// Every deterministic output, for digest gates and `--jobs`
    /// byte-comparison (the sweep has no wall-time columns, so this is
    /// simply everything).
    pub fn stable_digest(&self) -> String {
        format!(
            "{}\n{}\n{}",
            self.render(),
            self.machine_json(),
            crate::findings_json(&self.findings())
        )
    }
}

/// Lints one application's wrapper library.
fn cell(name: &'static str, image: &BinaryImage, sites: usize) -> LintRow {
    let analysis = Verifier::new().analyze(image);
    let summary = summarize(analysis.report());
    LintRow {
        name,
        total: sites,
        safe: summary.safe,
        unknown: summary.unknown,
        unsafe_: summary.unsafe_sites,
        upgraded: summary.upgraded,
        findings: lint_report(analysis.report()),
    }
}

/// Runs the sweep.
pub fn run(runner: &Runner) -> Output {
    let profiles = table1_profiles();
    let rows = runner.run(profiles.len(), |i| {
        let p = &profiles[i];
        cell(p.name, &p.library(), p.sites.len())
    });
    Output { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_fully_covered_and_gates_pass() {
        let out = run(&Runner::new(1));
        assert_eq!(out.rows.len(), 12);
        assert_eq!(out.total_unknown(), 0);
        assert!(out.coverage_pct() >= COVERAGE_FLOOR_PCT);
        assert_eq!(out.total_upgraded(), 1, "MySQL's libc shim");
        assert_eq!(out.rule_counts().get("XV000"), Some(&1));
        assert!(out.findings().iter().all(|f| f.in_band));
    }

    #[test]
    fn render_mentions_the_upgrade_note() {
        let out = run(&Runner::new(1));
        let text = out.render();
        assert!(text.contains("--- MySQL ---"), "{text}");
        assert!(text.contains("note[XV000]"), "{text}");
        let json = out.machine_json();
        assert!(json.starts_with("{\"apps\":["));
        assert!(json.contains("\"rule\":\"XV000\""));
    }
}
