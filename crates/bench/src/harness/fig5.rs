//! Figure 5 — UnixBench microbenchmarks + iperf in four panels
//! (cloud × single/concurrent), normalized to patched Docker (see the
//! `fig5_micro` binary).

use xcontainers::prelude::*;
use xcontainers::workloads::iperf::IperfBench;
use xcontainers::workloads::unixbench::{concurrent_score, MicroBench};

use super::HarnessOutput;
use crate::runner::Runner;
use crate::{clouds, platform_matrix, Finding};

/// One panel cell: a (cloud, concurrency) table plus its findings.
fn panel(cloud: CloudEnv, concurrent: bool, costs: &CostModel) -> (String, Vec<Finding>) {
    let mut findings = Vec::new();
    let mode = if concurrent { "Concurrent" } else { "Single" };
    let mut table = Table::new(
        &format!(
            "Figure 5: {} {} (relative to patched Docker)",
            cloud.name(),
            mode
        ),
        &[
            "configuration",
            "Execl",
            "File Copy",
            "Pipe Tput",
            "Ctx Switch",
            "Proc Create",
            "iperf",
        ],
    );

    let (baseline, matrix) = platform_matrix(cloud);
    let base: Vec<f64> = MicroBench::ALL
        .iter()
        .map(|b| {
            let s = b.score(&baseline, costs);
            if concurrent {
                concurrent_score(s, &baseline, 4)
            } else {
                s
            }
        })
        .collect();
    let base_iperf = IperfBench::throughput_bps(&baseline, costs);

    for platform in matrix {
        let mut cells = vec![Cell::from(platform.name())];
        for (i, bench) in MicroBench::ALL.iter().enumerate() {
            let mut s = bench.score(&platform, costs);
            if concurrent {
                s = concurrent_score(s, &platform, 4);
            }
            cells.push(Cell::Num(s / base[i], 2));
        }
        cells.push(Cell::Num(
            IperfBench::throughput_bps(&platform, costs) / base_iperf,
            2,
        ));
        table.row(cells);

        if platform.kind() == PlatformKind::XContainer && platform.is_patched() && !concurrent {
            let execl = MicroBench::Execl.score(&platform, costs) / base[0];
            let ctx = MicroBench::ContextSwitching.score(&platform, costs) / base[3];
            let spawn = MicroBench::ProcessCreation.score(&platform, costs) / base[4];
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_execl_{}", cloud.name().to_lowercase()),
                paper: "above 1 (X wins Execl)".to_owned(),
                measured: execl,
                in_band: execl > 1.0,
            });
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_ctxswitch_{}", cloud.name().to_lowercase()),
                paper: "below 1 (PT ops cross into X-Kernel)".to_owned(),
                measured: ctx,
                in_band: ctx < 1.0,
            });
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_proccreate_{}", cloud.name().to_lowercase()),
                paper: "below 1".to_owned(),
                measured: spawn,
                in_band: spawn < 1.0,
            });
        }
    }
    let mut text = String::new();
    table.render_into(&mut text);
    text.push('\n');
    (text, findings)
}

/// Runs the four panels, one cell each.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let grid: Vec<(CloudEnv, bool)> = clouds()
        .into_iter()
        .flat_map(|cloud| [false, true].into_iter().map(move |c| (cloud, c)))
        .collect();
    let cells = runner.run(grid.len(), |i| {
        let (cloud, concurrent) = grid[i];
        panel(cloud, concurrent, &costs)
    });
    let mut out = HarnessOutput::merge(cells);
    out.text.push_str(
        "Shape (§5.4): X-Containers win the syscall-dominated benchmarks\n\
         (Execl, File Copy, Pipe) and lose Context Switching and Process\n\
         Creation, whose page-table operations must be validated by the\n\
         X-Kernel. The Meltdown patch does not move X-Container bars.\n",
    );
    out
}
