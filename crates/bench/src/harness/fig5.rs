//! Figure 5 — UnixBench microbenchmarks + iperf in four panels
//! (cloud × single/concurrent), normalized to patched Docker (see the
//! `fig5_micro` binary).

use xcontainers::prelude::*;
use xcontainers::workloads::iperf::IperfBench;
use xcontainers::workloads::unixbench::{concurrent_score, MicroBench};

use super::HarnessOutput;
use crate::runner::Runner;
use crate::{clouds, platform_matrix, Finding};

/// One cloud cell: scores every microbenchmark once per platform, then
/// renders the Single and Concurrent panels from that matrix. The
/// concurrent panel is pure arithmetic over the single-copy scores
/// ([`concurrent_score`]), so hoisting the score computation halves the
/// model evaluations without moving a single byte of output.
fn cell(cloud: CloudEnv, costs: &CostModel) -> (String, Vec<Finding>) {
    let (baseline, matrix) = platform_matrix(cloud);
    let score_vec = |p: &Platform| -> (Vec<f64>, f64) {
        (
            MicroBench::ALL.iter().map(|b| b.score(p, costs)).collect(),
            IperfBench::throughput_bps(p, costs),
        )
    };
    let (base_single, base_iperf) = score_vec(&baseline);
    let rows: Vec<(Platform, Vec<f64>, f64)> = matrix
        .into_iter()
        .map(|p| {
            let (scores, iperf) = score_vec(&p);
            (p, scores, iperf)
        })
        .collect();

    let mut text = String::new();
    let mut findings = Vec::new();
    for concurrent in [false, true] {
        let mode = if concurrent { "Concurrent" } else { "Single" };
        let mut table = Table::new(
            &format!(
                "Figure 5: {} {} (relative to patched Docker)",
                cloud.name(),
                mode
            ),
            &[
                "configuration",
                "Execl",
                "File Copy",
                "Pipe Tput",
                "Ctx Switch",
                "Proc Create",
                "iperf",
            ],
        );

        let base: Vec<f64> = base_single
            .iter()
            .map(|&s| {
                if concurrent {
                    concurrent_score(s, &baseline, 4)
                } else {
                    s
                }
            })
            .collect();

        for (platform, single, iperf) in &rows {
            let mut cells = vec![Cell::from(platform.name())];
            for (i, &s0) in single.iter().enumerate() {
                let s = if concurrent {
                    concurrent_score(s0, platform, 4)
                } else {
                    s0
                };
                cells.push(Cell::Num(s / base[i], 2));
            }
            cells.push(Cell::Num(iperf / base_iperf, 2));
            table.row(cells);

            if platform.kind() == PlatformKind::XContainer && platform.is_patched() && !concurrent {
                let execl = single[0] / base[0];
                let ctx = single[3] / base[3];
                let spawn = single[4] / base[4];
                findings.push(Finding {
                    experiment: "fig5",
                    metric: format!("x_execl_{}", cloud.name().to_lowercase()),
                    paper: "above 1 (X wins Execl)".to_owned(),
                    measured: execl,
                    in_band: execl > 1.0,
                });
                findings.push(Finding {
                    experiment: "fig5",
                    metric: format!("x_ctxswitch_{}", cloud.name().to_lowercase()),
                    paper: "below 1 (PT ops cross into X-Kernel)".to_owned(),
                    measured: ctx,
                    in_band: ctx < 1.0,
                });
                findings.push(Finding {
                    experiment: "fig5",
                    metric: format!("x_proccreate_{}", cloud.name().to_lowercase()),
                    paper: "below 1".to_owned(),
                    measured: spawn,
                    in_band: spawn < 1.0,
                });
            }
        }
        table.render_into(&mut text);
        text.push('\n');
    }
    (text, findings)
}

/// Runs one cell per cloud; each renders its Single and Concurrent
/// panels in the figure's order.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let grid = clouds();
    let cells = runner.run(grid.len(), |i| cell(grid[i], &costs));
    let mut out = HarnessOutput::merge(cells);
    out.text.push_str(
        "Shape (§5.4): X-Containers win the syscall-dominated benchmarks\n\
         (Execl, File Copy, Pipe) and lose Context Switching and Process\n\
         Creation, whose page-table operations must be validated by the\n\
         X-Kernel. The Meltdown patch does not move X-Container bars.\n",
    );
    out
}
