//! Figure 8 — throughput scalability as the number of containers
//! increases (see the `fig8_scalability` binary). The four platform
//! sweeps are split into point-range sub-cells over a flattened
//! `(configuration, chunk)` grid — 16 cells instead of 4 — so `--jobs N`
//! keeps scaling past four workers; the index-ordered merge reassembles
//! each sweep before the table interleaves them, so the output is
//! byte-identical at any worker count (the model is closed-form and
//! RNG-free).

use std::fmt::Write as _;

use xcontainers::prelude::*;
use xcontainers::workloads::scalability::{
    figure8_points, throughput, ScalabilityConfig, ScalabilityPoint,
};

use super::HarnessOutput;
use crate::runner::Runner;
use crate::Finding;

/// Sweep points evaluated per sub-cell.
const POINTS_PER_CELL: usize = 4;

/// Runs the four platform sweeps as point-range sub-cells.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let points = figure8_points();
    let chunks = points.len().div_ceil(POINTS_PER_CELL);
    let cells = runner.run(ScalabilityConfig::ALL.len() * chunks, |i| {
        let config = ScalabilityConfig::ALL[i / chunks];
        let lo = (i % chunks) * POINTS_PER_CELL;
        let hi = (lo + POINTS_PER_CELL).min(points.len());
        points[lo..hi]
            .iter()
            .map(|&n| ScalabilityPoint {
                containers: n,
                throughput_rps: throughput(config, n, &costs),
            })
            .collect::<Vec<_>>()
    });
    // Reassemble each configuration's full sweep from its chunk run,
    // in index order.
    let sweeps: Vec<Vec<ScalabilityPoint>> = cells.chunks(chunks).map(|c| c.concat()).collect();

    let mut table = Table::new(
        "Figure 8: aggregate throughput (requests/s) vs container count",
        &["N", "Docker", "X-Container", "Xen HVM", "Xen PV"],
    );
    for (i, n) in points.iter().enumerate() {
        let cell = |cfg_idx: usize| match sweeps[cfg_idx][i].throughput_rps {
            Some(v) => Cell::Num(v, 0),
            None => Cell::from("cannot boot"),
        };
        table.row([Cell::from(*n), cell(0), cell(1), cell(2), cell(3)]);
    }

    // Pull the headline points straight out of the sweeps (the sub-cells
    // evaluate the same closed-form model as throughput(cfg, n)).
    let at = |cfg_idx: usize, n: u64| {
        let i = points.iter().position(|p| *p == n).expect("figure 8 point");
        sweeps[cfg_idx][i].throughput_rps.expect("bootable point")
    };
    let (d50, x50) = (at(0, 50), at(1, 50));
    let (d400, x400) = (at(0, 400), at(1, 400));
    let gain_400 = (x400 / d400 - 1.0) * 100.0;

    let mut text = String::new();
    table.render_into(&mut text);
    let _ = write!(
        text,
        "\n\
         At N=50:  Docker {:.0} rps vs X-Container {:.0} rps (Docker leads — \n\
          cheaper switches, processes spread over idle cores).\n\
         At N=400: Docker {:.0} rps vs X-Container {:.0} rps — X-Containers\n\
          ahead by {:.1}% (paper: 18%). Flat CFS over 4N processes degrades;\n\
          N vCPUs over 16 cores with 4-process inner schedulers do not.\n\
         Xen PV stops at 250 instances and Xen HVM at 200 — 512 MiB guests\n\
          exhaust the 96 GB host (§5.6).\n",
        d50, x50, d400, x400, gain_400
    );

    let findings = vec![
        Finding {
            experiment: "fig8",
            metric: "x_gain_over_docker_at_400".to_owned(),
            paper: "18%".to_owned(),
            measured: gain_400,
            in_band: (8.0..35.0).contains(&gain_400),
        },
        Finding {
            experiment: "fig8",
            metric: "docker_leads_at_50".to_owned(),
            paper: "Docker higher at small N".to_owned(),
            measured: d50 / x50,
            in_band: d50 > x50,
        },
    ];
    HarnessOutput {
        text,
        findings,
        cache_stats: None,
        metrics: Vec::new(),
    }
}
