//! Verify study — static patch-safety analysis over the Table 1 corpus
//! (see the `verify_study` binary).
//!
//! Four questions, answered against the same synthetic wrapper
//! libraries the Table 1 reduction study executes:
//!
//! 1. **Coverage** — how many syscall sites does `xc-verify` prove
//!    `Safe`, and what remains `Unknown`? Both analyzer generations run
//!    side by side: v1 (single-pass, intraprocedural) leaves the libc
//!    `syscall(nr)` shim wrappers `Unknown`; v2 (call graph + function
//!    summaries + abstract interpretation) propagates the caller's
//!    constant into the shim and upgrades them to `Safe`.
//! 2. **Interprocedural recovery** — the offline tool, run with
//!    `interprocedural` enabled, turns each upgraded verdict into a real
//!    detour patch (`interprocedural_recovered`).
//! 3. **Post-patch shape** — after the offline tool rewrites a library,
//!    does re-verification confirm every detour/trampoline invariant?
//! 4. **Redundancy ablation** — with `preflight_verify` enabled, does
//!    the online patcher ever get vetoed? Zero rejections means the
//!    §4.4 pattern matcher is already sound on this corpus — now proved
//!    rather than assumed.
//!
//! Each application is one runner cell carrying its own
//! [`AnalysisCache`]: the coverage pass populates it and the offline
//! patcher's pre-flight re-reads it, so every profile contributes one
//! guaranteed cache hit. The per-row analysis wall time is the only
//! nondeterministic output; [`Output::stable_digest`] excludes it so
//! tests can compare runs byte-for-byte.

use std::fmt::Write as _;
use std::time::Instant;

use xcontainers::abom::binaries::{invoke_with, WrapperStyle};
use xcontainers::abom::handler::XContainerKernel;
use xcontainers::abom::offline::{OfflineConfig, OfflinePatcher};
use xcontainers::abom::stats::AbomStats;
use xcontainers::prelude::*;
use xcontainers::verify::{
    disassemble_image, reverify, summarize, AbsInt, CallGraph, Cfg, Summaries, Verifier,
    VerifierConfig,
};
use xcontainers::workloads::table1::{table1_profiles, AppProfile};

use crate::runner::Runner;
use crate::Finding;

/// Default syscalls per application for the pre-flight ablation.
pub const SYSCALLS_PER_APP: u64 = 3_000;
/// Default root seed; each application runs on its own substream.
pub const SEED: u64 = 2019;

/// Weighted-random syscall run with an explicit ABOM config (the Table 1
/// path hard-codes the default config; the ablation needs the knob).
fn run_with_config(profile: &AppProfile, config: AbomConfig, syscalls: u64, rng: Rng) -> AbomStats {
    let weights: Vec<f64> = profile.sites.iter().map(|s| s.weight).collect();
    let mut image = profile.library();
    let mut kernel = XContainerKernel::with_config(config);
    let mut rng = rng;
    for _ in 0..syscalls {
        let idx = rng.pick_weighted(&weights);
        let site = profile.sites[idx];
        let entry = image
            .symbol(&format!("wrapper_{idx}"))
            .expect("wrapper symbol");
        let stack = site.style.takes_stack_number().then_some(site.nr);
        let rdi = site.style.takes_register_number().then_some(site.nr);
        invoke_with(&mut image, &mut kernel, entry, stack, rdi).expect("wrapper invocation");
    }
    *kernel.stats()
}

/// Everything the study learns about one application.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    pub name: &'static str,
    pub sites: usize,
    pub safe: usize,
    pub unsafe_: usize,
    pub unknown: usize,
    /// `Unknown` verdicts under the v1 (intraprocedural) analyzer.
    pub v1_unknown: usize,
    /// Sites the interprocedural pass upgraded to `Safe`.
    pub upgraded: usize,
    /// Analysis wall time — nondeterministic, excluded from digests.
    pub micros: f64,
    pub reverify_ok: bool,
    pub detours: usize,
    pub detour_patched: u64,
    /// Detours owed to interprocedural upgrades.
    pub recovered: u64,
    /// Libc `syscall(nr)` shim wrappers (the expected v1 residue).
    pub shims: usize,
    pub rejections: u64,
    pub study_cache_hits: u64,
    pub study_cache_misses: u64,
    pub kernel_cache_hits: u64,
    pub kernel_cache_misses: u64,
}

/// Full study output: one row per Table 1 application.
#[derive(Debug, Clone)]
pub struct Output {
    pub rows: Vec<ProfileRow>,
    pub syscalls_per_app: u64,
}

impl Output {
    pub fn total_rejections(&self) -> u64 {
        self.rows.iter().map(|r| r.rejections).sum()
    }

    /// Combined study + kernel pre-flight cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.study_cache_hits + r.kernel_cache_hits)
            .sum()
    }

    /// Combined study + kernel pre-flight cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.study_cache_misses + r.kernel_cache_misses)
            .sum()
    }

    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Total `Unknown` verdicts under the v1 analyzer.
    pub fn v1_unknown(&self) -> usize {
        self.rows.iter().map(|r| r.v1_unknown).sum()
    }

    /// Total `Unknown` verdicts under the v2 analyzer.
    pub fn v2_unknown(&self) -> usize {
        self.rows.iter().map(|r| r.unknown).sum()
    }

    /// The findings recorded to `results/verify_study.json`.
    pub fn findings(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for r in &self.rows {
            findings.push(Finding {
                experiment: "verify_study",
                metric: format!("{}_safe_sites", r.name),
                paper: format!(
                    "{}/{} provable (§4.4 + interprocedural propagation)",
                    r.sites, r.sites
                ),
                measured: r.safe as f64,
                in_band: r.safe == r.sites && r.unsafe_ == 0 && r.unknown == 0,
            });
            findings.push(Finding {
                experiment: "verify_study",
                metric: format!("{}_reverify_ok", r.name),
                paper: "all detour invariants hold".to_owned(),
                measured: if r.reverify_ok { 1.0 } else { 0.0 },
                in_band: r.reverify_ok && r.detours as u64 == r.detour_patched,
            });
        }
        findings.push(Finding {
            experiment: "verify_study",
            metric: "interprocedural_unknown_reduction".to_owned(),
            paper: format!(
                "v2 strictly reduces Unknown verdicts (v1 leaves {} shim sites)",
                self.rows.iter().map(|r| r.shims).sum::<usize>()
            ),
            measured: (self.v1_unknown() - self.v2_unknown()) as f64,
            in_band: self.v2_unknown() < self.v1_unknown(),
        });
        findings.push(Finding {
            experiment: "verify_study",
            metric: "interprocedural_detours_recovered".to_owned(),
            paper: "each upgraded verdict becomes an offline detour".to_owned(),
            measured: self.rows.iter().map(|r| r.recovered).sum::<u64>() as f64,
            in_band: self.rows.iter().all(|r| r.recovered as usize == r.upgraded),
        });
        findings.push(Finding {
            experiment: "verify_study",
            metric: "preflight_rejections".to_owned(),
            paper: "0 (online patterns are sound by construction)".to_owned(),
            measured: self.total_rejections() as f64,
            in_band: self.total_rejections() == 0,
        });
        findings.push(Finding {
            experiment: "verify_study",
            metric: "analysis_cache_hit_rate".to_owned(),
            paper: "above 0 (offline pre-flight re-reads the study cache)".to_owned(),
            measured: self.cache_hit_rate(),
            in_band: self.cache_hits() > 0,
        });
        findings
    }

    /// Exactly what the `verify_study` binary prints to stdout.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Verify study: static patch-safety analysis over the Table 1 corpus",
            &[
                "Application",
                "sites",
                "safe",
                "unsafe",
                "unknown",
                "v1 unk",
                "upgraded",
                "µs",
                "reverify",
                "detours",
            ],
        );
        let (mut total_sites, mut total_safe) = (0usize, 0usize);
        for r in &self.rows {
            total_sites += r.sites;
            total_safe += r.safe;
            table.row([
                Cell::from(r.name),
                Cell::Num(r.sites as f64, 0),
                Cell::Num(r.safe as f64, 0),
                Cell::Num(r.unsafe_ as f64, 0),
                Cell::Num(r.unknown as f64, 0),
                Cell::Num(r.v1_unknown as f64, 0),
                Cell::Num(r.upgraded as f64, 0),
                Cell::Num(r.micros, 1),
                Cell::from(if r.reverify_ok { "ok" } else { "FAIL" }),
                Cell::Num(r.detours as f64, 0),
            ]);
        }
        let mut out = String::new();
        table.render_into(&mut out);
        let _ = write!(
            out,
            "\n\
             {total_safe}/{total_sites} sites proved Safe. The v1 analyzer left\n\
             {v1_unk} libc `syscall(nr)` shim sites Unknown; interprocedural\n\
             propagation upgraded {upgraded} of them and the offline tool turned\n\
             {recovered} into detour patches. Every offline-rewritten library\n\
             passes post-patch re-verification.\n\
             Pre-flight ablation: {rej} online patches vetoed by the\n\
             verifier across {per_app} syscalls/app — the §4.4 pattern\n\
             matcher never patches a site the analyzer cannot prove.\n\
             Analysis cache: {hits} hits / {misses} misses ({rate:.0}% hit rate)\n\
             across the study and online pre-flight passes.\n",
            v1_unk = self.v1_unknown(),
            upgraded = self.rows.iter().map(|r| r.upgraded).sum::<usize>(),
            recovered = self.rows.iter().map(|r| r.recovered).sum::<u64>(),
            rej = self.total_rejections(),
            per_app = self.syscalls_per_app,
            hits = self.cache_hits(),
            misses = self.cache_misses(),
            rate = self.cache_hit_rate() * 100.0,
        );
        out
    }

    /// Every deterministic output — rendered text with the wall-time
    /// column blanked, plus the findings — for byte-comparison across
    /// `--jobs` values.
    pub fn stable_digest(&self) -> String {
        let mut stable = self.clone();
        for r in &mut stable.rows {
            r.micros = 0.0;
        }
        format!(
            "{}\n{}",
            stable.render(),
            crate::findings_json(&stable.findings())
        )
    }
}

/// One application cell: coverage, offline patch + re-verify, ablation.
fn cell(profile: &AppProfile, syscalls: u64, rng: Rng) -> ProfileRow {
    let image = profile.library();
    let mut cache = AnalysisCache::new();

    // 1. Pre-patch verdicts + analysis wall time (populates the cache).
    //    The v1 baseline (upgrades off) runs uncached so the study and
    //    offline pre-flight keep sharing one fingerprint.
    let start = Instant::now();
    let analysis = cache.analyze(&Verifier::new(), &image);
    let micros = start.elapsed().as_secs_f64() * 1e6;
    let (safe, unsafe_, unknown) = analysis.report().tally();
    let upgraded = summarize(analysis.report()).upgraded;
    let (_, _, v1_unknown) = Verifier::with_config(VerifierConfig {
        interprocedural_upgrades: false,
        ..VerifierConfig::default()
    })
    .analyze(&image)
    .report()
    .tally();

    let shims = profile
        .sites
        .iter()
        .filter(|s| s.style == WrapperStyle::LibcShim)
        .count();

    // 2. Offline patch through the same cache (guaranteed hit), then
    //    re-verify the rewritten image. `interprocedural` turns the
    //    upgraded shim verdicts into detours.
    let (patched, report) = OfflinePatcher::with_config(OfflineConfig {
        interprocedural: true,
        ..OfflineConfig::default()
    })
    .patch_with_cache(&image, &mut cache)
    .expect("offline patching");
    let shape = reverify(&patched, image.len());

    // 3. Pre-flight ablation: same run, verifier in the loop.
    let verified = run_with_config(
        profile,
        AbomConfig {
            enabled: true,
            nine_byte_phase2: true,
            preflight_verify: true,
        },
        syscalls,
        rng,
    );

    ProfileRow {
        name: profile.name,
        sites: profile.sites.len(),
        safe,
        unsafe_,
        unknown,
        v1_unknown,
        upgraded,
        micros,
        reverify_ok: shape.ok(),
        detours: shape.detours.len(),
        detour_patched: report.detour_patched,
        recovered: report.interprocedural_recovered,
        shims,
        rejections: verified.verify_rejected,
        study_cache_hits: cache.hits(),
        study_cache_misses: cache.misses(),
        kernel_cache_hits: verified.verify_cache_hits,
        kernel_cache_misses: verified.verify_cache_misses,
    }
}

/// Runs the study with explicit workload knobs (tests use small ones).
pub fn run_with(runner: &Runner, syscalls_per_app: u64, seed: u64) -> Output {
    let profiles = table1_profiles();
    let rows = runner.run(profiles.len(), |i| {
        cell(
            &profiles[i],
            syscalls_per_app,
            Rng::substream(seed, i as u64),
        )
    });
    Output {
        rows,
        syscalls_per_app,
    }
}

/// Runs the study at the default workload size.
pub fn run(runner: &Runner) -> Output {
    run_with(runner, SYSCALLS_PER_APP, SEED)
}

/// One application's abstract-interpretation worklist profile (the
/// `--profile` flag; see [`worklist_profiles`]).
#[derive(Debug, Clone)]
pub struct WorklistProfile {
    /// Table 1 application name.
    pub name: &'static str,
    /// Basic blocks in the library's CFG.
    pub blocks: usize,
    /// Worklist pops (fixpoint iterations).
    pub pops: u64,
    /// Edge-state merges attempted.
    pub merges: u64,
    /// Merges that moved the lattice and re-queued a block.
    pub merges_changed: u64,
    /// `AbsState`s physically copied; `cloned + shared` is what the
    /// pre-copy-on-write driver cloned.
    pub states_cloned: u64,
    /// `AbsState`s adopted by arena id instead of cloned.
    pub states_shared: u64,
    /// Fixpoint-phase wall time — nondeterministic.
    pub fixpoint_micros: f64,
    /// Materialisation-phase wall time — nondeterministic.
    pub materialize_micros: f64,
}

/// Profiles the abstract-interpretation fixpoint over the Table 1
/// corpus: one `AbsInt::analyze_profiled` run per library, reporting
/// worklist traffic and phase wall times. The counters are a pure
/// function of each image; the µs columns are host noise, so the whole
/// pass stays out of the findings, digests and the benchmark gate.
pub fn worklist_profiles(runner: &Runner) -> Vec<WorklistProfile> {
    let profiles = table1_profiles();
    runner.run(profiles.len(), |i| {
        let p = &profiles[i];
        let image = p.library();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        let cg = CallGraph::build(&d, &cfg);
        let config = VerifierConfig::default();
        let summaries = Summaries::build(&d, &cfg, &cg, config.max_summary_depth);
        let (_, prof) =
            AbsInt::analyze_profiled(&d, &cfg, &cg, &summaries, config.stack_window_slots);
        WorklistProfile {
            name: p.name,
            blocks: cfg.blocks.len(),
            pops: prof.pops,
            merges: prof.merges,
            merges_changed: prof.merges_changed,
            states_cloned: prof.states_cloned,
            states_shared: prof.states_shared,
            fixpoint_micros: prof.fixpoint_nanos as f64 / 1e3,
            materialize_micros: prof.materialize_nanos as f64 / 1e3,
        }
    })
}

/// Renders the `--profile` table appended after the study output.
pub fn render_worklist_profiles(rows: &[WorklistProfile]) -> String {
    let mut table = Table::new(
        "Worklist profile: abstract-interpretation fixpoint per library",
        &[
            "Application",
            "blocks",
            "pops",
            "merges",
            "changed",
            "cloned",
            "shared",
            "fixpoint µs",
            "materialize µs",
        ],
    );
    for r in rows {
        table.row([
            Cell::from(r.name),
            Cell::Num(r.blocks as f64, 0),
            Cell::Num(r.pops as f64, 0),
            Cell::Num(r.merges as f64, 0),
            Cell::Num(r.merges_changed as f64, 0),
            Cell::Num(r.states_cloned as f64, 0),
            Cell::Num(r.states_shared as f64, 0),
            Cell::Num(r.fixpoint_micros, 1),
            Cell::Num(r.materialize_micros, 1),
        ]);
    }
    let mut out = String::new();
    table.render_into(&mut out);
    out
}
