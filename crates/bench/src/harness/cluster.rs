//! Cluster study — hosts × X-Container domains under open-loop traffic
//! from a modelled client population (see the `cluster_study` binary).
//!
//! The paper benchmarks one server at a time; this extension asks the
//! operator's question: at cloud scale, how many container domains does
//! a host pack per platform, and what do the latency tails and drop
//! rates look like when millions of clients drive the cluster? The full
//! study simulates 120 hosts × 24 microservice domains each (2,880
//! domains) under Poisson traffic from 1.2 million clients; `--quick`
//! shrinks that to an 8-host smoke test for CI.
//!
//! Parallelism follows the repo's determinism recipe: hosts are
//! independent substream-seeded worlds, so the grid cells are
//! (platform, contiguous host chunk) pairs whose [`ClusterResult`]s
//! merge in host-index order — byte-identical output at any `--jobs`.

use std::io;
use std::path::Path;

use xcontainers::prelude::*;
use xcontainers::workloads::apps::microservice;
use xcontainers::workloads::cluster::{arena_counters, run_cluster_range};

use super::{HarnessOutput, Journaled};
use crate::journal::{
    fingerprint, hex_u64, histogram_from_json, histogram_to_json, u64_from_hex, CellPayload,
    ResumeArgs,
};
use crate::runner::Runner;
use crate::Finding;

/// Host chunks per platform — fixed (never derived from the worker
/// count) so the cell grid, and therefore the merged output, is a pure
/// function of the parameters.
const CHUNKS: u32 = 16;

/// Study shape for one mode. `--quick` must stay cheap enough for
/// `scripts/check.sh`; the full run is the headline ≥100 hosts ×
/// ≥1000 domains × ≥1M clients configuration.
pub fn params(quick: bool) -> ClusterParams {
    if quick {
        ClusterParams {
            hosts: 8,
            domains_per_host: 6,
            clients: 40_000,
            think_time: Nanos::from_secs(1),
            duration: Nanos::from_millis(120),
            queue_cap: 64,
            zipf_theta: 0.2,
            host_cores: 16,
            seed: 42,
        }
    } else {
        ClusterParams {
            hosts: 120,
            domains_per_host: 24,
            clients: 1_200_000,
            think_time: Nanos::from_secs(1),
            duration: Nanos::from_millis(500),
            queue_cap: 64,
            zipf_theta: 0.2,
            host_cores: 16,
            seed: 42,
        }
    }
}

/// The platforms under comparison, on the on-prem cluster environment
/// the paper's §5.1 bare-metal experiments use. Docker first — it is
/// the normalization baseline.
pub fn platforms() -> Vec<Platform> {
    let cloud = CloudEnv::LocalCluster;
    vec![
        Platform::docker(cloud, true),
        Platform::xen_container(cloud, true),
        Platform::x_container(cloud, true),
        Platform::gvisor(cloud, true),
    ]
}

fn derive_table(platform: &Platform, costs: &CostModel) -> PlatformCosts {
    PlatformCosts::derive(
        &ServerModel {
            platform: platform.clone(),
            profile: microservice(),
            workers: 1,
            cores: 1,
        },
        costs,
    )
}

/// Exact checkpoint codec for one cell's [`ClusterResult`]: raw `u64`
/// counters ride as hex (a `Json::Num` is an `f64` and would round
/// them), the latency histogram through the sparse checkpoint codec.
impl CellPayload for ClusterResult {
    fn to_payload(&self) -> Json {
        json_object([
            ("hosts", Json::Num(f64::from(self.hosts))),
            ("completed", hex_u64(self.completed)),
            ("dropped", hex_u64(self.dropped)),
            ("busy_ns", hex_u64(self.busy_ns)),
            ("latency", histogram_to_json(&self.latency)),
        ])
    }

    fn from_payload(payload: &Json) -> Option<Self> {
        let hosts = payload.get("hosts")?.as_num()?;
        if hosts.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&hosts) {
            return None;
        }
        Some(ClusterResult {
            hosts: hosts as u32,
            completed: u64_from_hex(payload.get("completed")?)?,
            dropped: u64_from_hex(payload.get("dropped")?)?,
            busy_ns: u64_from_hex(payload.get("busy_ns")?)?,
            latency: histogram_from_json(payload.get("latency")?)?,
        })
    }
}

/// The study's cell grid: geometry, the cell function, and the config
/// fingerprint that guards journal replay — shared by the straight
/// [`run`] and the crash-safe [`run_journaled`] so the two can never
/// disagree on what a cell computes.
pub struct Grid {
    p: ClusterParams,
    plats: Vec<Platform>,
    tables: Vec<PlatformCosts>,
    chunks: u32,
    quick: bool,
}

impl Grid {
    /// Builds the grid for one mode.
    pub fn new(quick: bool) -> Self {
        let costs = CostModel::skylake_cloud();
        let p = params(quick);
        let plats = platforms();
        let tables: Vec<PlatformCosts> = plats.iter().map(|pl| derive_table(pl, &costs)).collect();
        let chunks = CHUNKS.min(p.hosts).max(1);
        Grid {
            p,
            plats,
            tables,
            chunks,
            quick,
        }
    }

    /// Cells in the (platform × host-chunk) grid.
    pub fn cells(&self) -> usize {
        self.plats.len() * self.chunks as usize
    }

    /// Executes cell `i`: one platform's contiguous host range.
    pub fn cell(&self, i: usize) -> ClusterResult {
        let chunks = self.chunks as usize;
        let (base, rem) = (self.p.hosts / self.chunks, self.p.hosts % self.chunks);
        let pi = i / chunks;
        let ci = (i % chunks) as u32;
        let first = ci * base + ci.min(rem);
        let count = base + u32::from(ci < rem);
        run_cluster_range(&self.tables[pi], &self.p, first, count)
    }

    /// Journal fingerprint: every parameter that selects what a cell
    /// computes. Two runs replay each other's checkpoints iff these
    /// match.
    pub fn fingerprint(&self) -> u64 {
        let p = &self.p;
        fingerprint(
            "cluster_study",
            &[
                u64::from(p.hosts),
                u64::from(p.domains_per_host),
                p.clients,
                p.think_time.as_nanos(),
                p.duration.as_nanos(),
                p.queue_cap as u64,
                p.zipf_theta.to_bits(),
                u64::from(p.host_cores),
                p.seed,
                u64::from(self.chunks),
                self.plats.len() as u64,
            ],
        )
    }

    /// Merges the index-ordered cell results and renders the density
    /// table plus findings — the deterministic output both paths share.
    pub fn render(&self, cells: Vec<ClusterResult>) -> HarnessOutput {
        render_cells(&self.p, &self.plats, self.chunks, self.quick, &cells)
    }
}

/// Runs the study: a (platform × host-chunk) cell grid under `runner`,
/// merged per platform in host order, rendered as one density table.
pub fn run(runner: &Runner, quick: bool) -> HarnessOutput {
    let grid = Grid::new(quick);
    let (allocs_before, reuses_before) = arena_counters();
    let cells = runner.run(grid.cells(), |i| grid.cell(i));
    let mut out = grid.render(cells);
    // World-arena effectiveness over this grid: in steady state nearly
    // every host world is assembled from recycled storage (one
    // allocation per worker thread, not one per host). Ledger-only —
    // the counters depend on thread count, so they must stay out of the
    // deterministic text/findings.
    let (allocs_after, reuses_after) = arena_counters();
    out.metrics = vec![
        ("arena_allocs", (allocs_after - allocs_before) as f64),
        ("arena_reuses", (reuses_after - reuses_before) as f64),
    ];
    out
}

/// The crash-safe variant: checkpoints each completed cell under
/// `root`, resumes from any compatible journal, and stops gracefully on
/// SIGINT or the `resume` limits. Completed output is byte-identical to
/// [`run`]'s (the arena metrics differ, but those are ledger-only and
/// journaled runs skip the ledger anyway).
///
/// # Errors
///
/// Filesystem errors opening or repairing the journal.
pub fn run_journaled(
    runner: &Runner,
    quick: bool,
    root: &Path,
    name: &str,
    resume: &ResumeArgs,
) -> io::Result<Journaled> {
    let grid = Grid::new(quick);
    super::run_journaled(
        runner,
        root,
        name,
        grid.fingerprint(),
        grid.cells(),
        resume,
        |i| grid.cell(i),
        |cells| grid.render(cells),
    )
}

/// Renders the merged per-platform results (host order) as the density
/// table, shape note, and findings.
fn render_cells(
    p: &ClusterParams,
    plats: &[Platform],
    chunks: u32,
    quick: bool,
    cells: &[ClusterResult],
) -> HarnessOutput {
    let merged: Vec<ClusterResult> = cells
        .chunks(chunks as usize)
        .map(|parts| {
            let mut whole = ClusterResult::default();
            whole.merge_many(&parts.iter().collect::<Vec<_>>());
            whole
        })
        .collect();

    let mode = if quick { "quick" } else { "full" };
    let mut table = Table::new(
        &format!(
            "Cluster study ({mode}): {} hosts × {} domains/host ({} domains), {} clients",
            p.hosts,
            p.domains_per_host,
            p.total_domains(),
            p.clients
        ),
        &[
            "configuration",
            "tput (krps)",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "drop %",
            "util %",
            "domains/host",
        ],
    );
    for (plat, r) in plats.iter().zip(&merged) {
        table.row([
            Cell::from(plat.name()),
            Cell::Num(r.throughput_rps(p.duration) / 1e3, 1),
            Cell::Num(r.quantile_ms(0.50), 2),
            Cell::Num(r.quantile_ms(0.99), 2),
            Cell::Num(r.quantile_ms(0.999), 2),
            Cell::Num(r.drop_rate() * 100.0, 3),
            Cell::Num(r.utilization(p.host_cores, p.duration) * 100.0, 1),
            Cell::Num(r.density_domains_per_host(p), 0),
        ]);
    }
    let mut text = String::new();
    table.render_into(&mut text);
    text.push('\n');
    text.push_str(
        "Shape: density (sustainable domains per host) orders by per-request\n\
         cost — X-Containers pack the most, then Docker, then Xen-Containers;\n\
         gVisor packs the fewest and is the first to saturate, surfacing as\n\
         queue drops and a p99.9 blowup rather than graceful degradation.\n",
    );

    let docker = &merged[0];
    let xen = &merged[1];
    let xc = &merged[2];
    let gv = &merged[3];
    let density = |r: &ClusterResult| r.density_domains_per_host(p);
    let mut findings = vec![
        Finding {
            experiment: "cluster",
            metric: format!("xc_density_vs_docker_{mode}"),
            paper: "X wins macro perf => densest packing".to_owned(),
            measured: density(xc) / density(docker),
            in_band: density(xc) / density(docker) > 1.0,
        },
        Finding {
            experiment: "cluster",
            metric: format!("gvisor_density_vs_docker_{mode}"),
            paper: "gVisor trails everywhere".to_owned(),
            measured: density(gv) / density(docker),
            in_band: density(gv) / density(docker) < 1.0,
        },
        Finding {
            experiment: "cluster",
            metric: format!("xen_density_between_docker_and_gvisor_{mode}"),
            paper: "unpatched-guest Xen pays I/O tax, beats gVisor".to_owned(),
            measured: density(xen) / density(docker),
            in_band: density(xen) < density(docker) && density(xen) > density(gv),
        },
        Finding {
            experiment: "cluster",
            metric: format!("xc_p99_vs_docker_{mode}"),
            paper: "at or below Docker's tail".to_owned(),
            measured: xc.quantile_ms(0.99) / docker.quantile_ms(0.99),
            in_band: xc.quantile_ms(0.99) <= docker.quantile_ms(0.99) * 1.05,
        },
    ];
    if !quick {
        // Only the full-scale load pushes gVisor's hottest domain past
        // its service capacity; the quick smoke test is deliberately
        // unsaturated.
        findings.push(Finding {
            experiment: "cluster",
            metric: "gvisor_saturation_drops_full".to_owned(),
            paper: "first platform to shed load at scale".to_owned(),
            measured: gv.drop_rate(),
            in_band: gv.drop_rate() > docker.drop_rate(),
        });
    }

    HarnessOutput::merge(vec![(text, findings)])
}
