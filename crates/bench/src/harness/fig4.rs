//! Figure 4 — relative system call throughput, single and concurrent,
//! on both clouds (see the `fig4_syscall` binary).

use std::fmt::Write as _;

use xcontainers::prelude::*;
use xcontainers::workloads::unixbench::concurrent_score;

use super::HarnessOutput;
use crate::runner::Runner;
use crate::{clouds, platform_matrix, ratio, Finding};

/// One cloud cell: the full ten-configuration table plus its findings.
fn cell(cloud: CloudEnv, costs: &CostModel) -> (String, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut table = Table::new(
        &format!("Figure 4: relative syscall throughput — {}", cloud.name()),
        &["configuration", "single", "concurrent (4x)"],
    );
    let (baseline, matrix) = platform_matrix(cloud);
    let base_single = SystemCallBench::score(&baseline, costs);
    let base_conc = concurrent_score(base_single, &baseline, 4);

    for platform in matrix {
        let single = SystemCallBench::score(&platform, costs);
        let conc = concurrent_score(single, &platform, 4);
        table.row([
            Cell::from(platform.name()),
            Cell::Num(single / base_single, 2),
            Cell::Num(conc / base_conc, 2),
        ]);
        if platform.kind() == PlatformKind::XContainer && platform.is_patched() {
            findings.push(Finding {
                experiment: "fig4",
                metric: format!("x_vs_docker_{}", cloud.name().to_lowercase()),
                paper: "up to 27x".to_owned(),
                measured: single / base_single,
                in_band: (15.0..45.0).contains(&(single / base_single)),
            });
        }
        if platform.kind() == PlatformKind::Gvisor && platform.is_patched() {
            findings.push(Finding {
                experiment: "fig4",
                metric: format!("gvisor_vs_docker_{}", cloud.name().to_lowercase()),
                paper: "7-9% of Docker".to_owned(),
                measured: single / base_single,
                in_band: (0.04..0.15).contains(&(single / base_single)),
            });
        }
    }
    let mut text = String::new();
    table.render_into(&mut text);
    text.push('\n');
    (text, findings)
}

/// Runs both clouds, one cell each, then the headline comparison.
pub fn run(runner: &Runner) -> HarnessOutput {
    let costs = CostModel::skylake_cloud();
    let grid = clouds();
    let cells = runner.run(grid.len(), |i| cell(grid[i], &costs));
    let mut out = HarnessOutput::merge(cells);

    let docker = Platform::docker(CloudEnv::AmazonEc2, true);
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    let headline = SystemCallBench::score(&xc, &costs) / SystemCallBench::score(&docker, &costs);
    let _ = write!(
        out.text,
        "Headline: X-Container raw syscall throughput = {} Docker (paper: up to 27x).\n\
         The Meltdown patch leaves X-Containers and Clear Containers untouched:\n\
         optimized syscalls never cross the hardware privilege boundary (§5.4).\n",
        ratio(headline)
    );
    out
}
