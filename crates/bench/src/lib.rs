//! # xc-bench — harnesses that regenerate every table and figure
//!
//! One binary per experiment (run with `cargo run -p xc-bench --bin
//! <name>`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — ABOM syscall reduction per application |
//! | `fig3_macro` | Figure 3 — NGINX/memcached/Redis relative throughput & latency |
//! | `fig4_syscall` | Figure 4 — relative syscall throughput, single + concurrent |
//! | `fig5_micro` | Figure 5 — UnixBench microbenchmarks + iperf, 4 panels |
//! | `fig6_libos` | Figure 6 — Graphene/Unikernel/X-Container comparison |
//! | `fig8_scalability` | Figure 8 — throughput vs number of containers |
//! | `fig9_loadbalance` | Figure 9 — HAProxy vs IPVS load balancing |
//! | `spawn_time` | §4.5 — container instantiation latency (extension) |
//! | `ablations` | DESIGN.md §4 — ABOM, global-bit, scheduling, KPTI ablations |
//! | `security_matrix` | §3.4 — TCB and attack-surface comparison (extension) |
//! | `rdma_study` | §5.7 — soft-RDMA capability study (extension) |
//! | `verify_study` | §4.4 — static patch-safety verdicts, re-verification, pre-flight ablation (extension) |
//! | `all_experiments` | combined acceptance pass over all findings |
//!
//! Every harness prints the paper's expected shape next to the measured
//! value and appends a machine-readable record through [`record`].
//!
//! The experiment logic itself lives in [`harness`] (one module per
//! figure), executed through the deterministic parallel [`runner`]:
//! every binary accepts `--jobs N` (default: available parallelism,
//! `--jobs 1` = legacy serial path) and produces byte-identical output
//! at every worker count. Wall-clock and cache measurements accumulate
//! in `BENCH_runner.json` (see [`runner::record_bench`]).
//!
//! The Criterion benches (`cargo bench -p xc-bench`) measure the *model
//! itself* (simulator throughput, ABOM patch latency, platform cost
//! evaluation) so regressions in the reproduction infrastructure are
//! caught.

pub mod harness;
pub mod runner;

use std::fs;
use std::path::Path;

use xcontainers::prelude::{json_object, CloudEnv, Json, Platform};

/// Where harnesses drop machine-readable results.
pub const RESULTS_DIR: &str = "results";

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Experiment id, e.g. `fig4`.
    pub experiment: &'static str,
    /// Short metric name, e.g. `x_vs_docker_amazon`.
    pub metric: String,
    /// What the paper reports (free text: "27x", "~2x", "18%").
    pub paper: String,
    /// What this reproduction measures.
    pub measured: f64,
    /// Whether the measured value is inside the acceptance band the
    /// tests enforce.
    pub in_band: bool,
}

impl Finding {
    fn to_json(&self) -> Json {
        json_object([
            ("experiment", Json::from(self.experiment)),
            ("metric", Json::from(self.metric.clone())),
            ("paper", Json::from(self.paper.clone())),
            ("measured", Json::from(self.measured)),
            ("in_band", Json::from(self.in_band)),
        ])
    }
}

/// Renders findings exactly as [`record`] serializes them — shared by the
/// determinism tests and the runner's serial-vs-parallel self-checks.
/// Streams every finding into one buffer ([`Json::write_into`]) instead
/// of collecting an intermediate `Json::Arr`.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f.to_json().write_into(&mut out);
    }
    out.push(']');
    out
}

/// Serializes findings to `results/<experiment>.json` (creates the
/// directory as needed). Errors are reported but non-fatal: harnesses
/// must still print their tables on read-only filesystems.
pub fn record(experiment: &str, findings: &[Finding]) {
    let dir = Path::new(RESULTS_DIR);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("note: cannot create {RESULTS_DIR}/: {e}");
        return;
    }
    let body = findings_json(findings);
    let path = dir.join(format!("{experiment}.json"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("note: cannot write {}: {e}", path.display());
    }
}

/// The two evaluation clouds, in the figures' presentation order.
pub fn clouds() -> [CloudEnv; 2] {
    [CloudEnv::AmazonEc2, CloudEnv::GoogleGce]
}

/// The platform matrix shared by `fig3_macro`, `fig4_syscall` and
/// `fig5_micro`: the patched-Docker normalization baseline plus the §5.1
/// configurations for `cloud`, in figure order.
pub fn platform_matrix(cloud: CloudEnv) -> (Platform, Vec<Platform>) {
    (
        Platform::docker(cloud, true),
        Platform::cloud_configurations(cloud),
    )
}

/// Formats a ratio as the figures do (`1.86x`).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_serializes() {
        let f = Finding {
            experiment: "fig4",
            metric: "x_vs_docker".to_owned(),
            paper: "27x".to_owned(),
            measured: 27.4,
            in_band: true,
        };
        let json = f.to_json().to_string_compact();
        assert!(json.contains("\"experiment\":\"fig4\""));
        assert!(json.contains("27.4"));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(1.855), "1.85x");
    }

    #[test]
    fn findings_json_matches_record_format() {
        let f = Finding {
            experiment: "fig4",
            metric: "m".to_owned(),
            paper: "27x".to_owned(),
            measured: 1.0,
            in_band: true,
        };
        assert_eq!(
            findings_json(std::slice::from_ref(&f)),
            format!("[{}]", f.to_json().to_string_compact())
        );
    }

    #[test]
    fn platform_matrix_baseline_is_patched_docker() {
        for cloud in clouds() {
            let (baseline, matrix) = platform_matrix(cloud);
            assert_eq!(baseline.name(), "Docker");
            assert!(baseline.is_patched());
            assert_eq!(matrix.len(), Platform::cloud_configurations(cloud).len());
        }
    }
}
