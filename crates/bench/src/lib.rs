//! # xc-bench — harnesses that regenerate every table and figure
//!
//! One binary per experiment (run with `cargo run -p xc-bench --bin
//! <name>`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — ABOM syscall reduction per application |
//! | `fig3_macro` | Figure 3 — NGINX/memcached/Redis relative throughput & latency |
//! | `fig4_syscall` | Figure 4 — relative syscall throughput, single + concurrent |
//! | `fig5_micro` | Figure 5 — UnixBench microbenchmarks + iperf, 4 panels |
//! | `fig6_libos` | Figure 6 — Graphene/Unikernel/X-Container comparison |
//! | `fig8_scalability` | Figure 8 — throughput vs number of containers |
//! | `fig9_loadbalance` | Figure 9 — HAProxy vs IPVS load balancing |
//! | `spawn_time` | §4.5 — container instantiation latency (extension) |
//! | `ablations` | DESIGN.md §4 — ABOM, global-bit, scheduling, KPTI ablations |
//! | `security_matrix` | §3.4 — TCB and attack-surface comparison (extension) |
//! | `rdma_study` | §5.7 — soft-RDMA capability study (extension) |
//! | `verify_study` | §4.4 — static patch-safety verdicts, re-verification, pre-flight ablation (extension) |
//! | `cluster_study` | DESIGN.md §4g — per-host container density and tail latency at cluster scale (extension) |
//! | `all_experiments` | combined acceptance pass over all findings |
//!
//! Every harness prints the paper's expected shape next to the measured
//! value and appends a machine-readable record through [`record`].
//!
//! The experiment logic itself lives in [`harness`] (one module per
//! figure), executed through the deterministic parallel [`runner`]:
//! every binary accepts `--jobs N` (default: available parallelism,
//! `--jobs 1` = legacy serial path) and produces byte-identical output
//! at every worker count. Wall-clock and cache measurements accumulate
//! in `BENCH_runner.json` (see [`runner::record_bench`]).
//!
//! The Criterion benches (`cargo bench -p xc-bench`) measure the *model
//! itself* (simulator throughput, ABOM patch latency, platform cost
//! evaluation) so regressions in the reproduction infrastructure are
//! caught.

pub mod gate;
pub mod harness;
pub mod journal;
pub mod runner;

use std::fs;
use std::io;
use std::path::Path;

use xcontainers::prelude::{json_object, CloudEnv, Json, Platform};

/// Where harnesses drop machine-readable results.
pub const RESULTS_DIR: &str = "results";

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Experiment id, e.g. `fig4`.
    pub experiment: &'static str,
    /// Short metric name, e.g. `x_vs_docker_amazon`.
    pub metric: String,
    /// What the paper reports (free text: "27x", "~2x", "18%").
    pub paper: String,
    /// What this reproduction measures.
    pub measured: f64,
    /// Whether the measured value is inside the acceptance band the
    /// tests enforce.
    pub in_band: bool,
}

impl Finding {
    pub(crate) fn to_json(&self) -> Json {
        json_object([
            ("experiment", Json::from(self.experiment)),
            ("metric", Json::from(self.metric.clone())),
            ("paper", Json::from(self.paper.clone())),
            ("measured", Json::from(self.measured)),
            ("in_band", Json::from(self.in_band)),
        ])
    }
}

/// Streams findings into any [`io::Write`] sink in [`record`]'s exact
/// byte format. One finding is serialized at a time through a reused
/// scratch buffer, so memory stays flat no matter how many findings a
/// harness (or the cluster study) accumulates.
pub fn write_findings<W: io::Write>(sink: &mut W, findings: &[Finding]) -> io::Result<()> {
    sink.write_all(b"[")?;
    let mut scratch = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            sink.write_all(b",")?;
        }
        scratch.clear();
        f.to_json().write_into(&mut scratch);
        sink.write_all(scratch.as_bytes())?;
    }
    sink.write_all(b"]")
}

/// Renders findings exactly as [`record`] serializes them — shared by the
/// determinism tests and the runner's serial-vs-parallel self-checks.
/// Delegates to [`write_findings`] so the two can never drift.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = Vec::new();
    write_findings(&mut out, findings).expect("Vec sink cannot fail");
    String::from_utf8(out).expect("findings serialize to UTF-8")
}

/// Serializes findings to `results/<experiment>.json` (creates the
/// directory as needed). The document is staged into a same-directory
/// temp file and renamed into place ([`journal::atomic_write`]), so a
/// crash mid-write can never leave a truncated ledger behind — readers
/// see either the old findings or the new ones, whole. Errors are
/// reported but non-fatal: harnesses must still print their tables on
/// read-only filesystems.
pub fn record(experiment: &str, findings: &[Finding]) {
    let dir = Path::new(RESULTS_DIR);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("note: cannot create {RESULTS_DIR}/: {e}");
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    let write = || -> io::Result<()> {
        let mut body = Vec::new();
        write_findings(&mut body, findings)?;
        journal::atomic_write(&path, &body)
    };
    if let Err(e) = write() {
        eprintln!("note: cannot write {}: {e}", path.display());
    }
}

/// The two evaluation clouds, in the figures' presentation order.
pub fn clouds() -> [CloudEnv; 2] {
    [CloudEnv::AmazonEc2, CloudEnv::GoogleGce]
}

/// The platform matrix shared by `fig3_macro`, `fig4_syscall` and
/// `fig5_micro`: the patched-Docker normalization baseline plus the §5.1
/// configurations for `cloud`, in figure order.
pub fn platform_matrix(cloud: CloudEnv) -> (Platform, Vec<Platform>) {
    (
        Platform::docker(cloud, true),
        Platform::cloud_configurations(cloud),
    )
}

/// Formats a ratio as the figures do (`1.86x`).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_serializes() {
        let f = Finding {
            experiment: "fig4",
            metric: "x_vs_docker".to_owned(),
            paper: "27x".to_owned(),
            measured: 27.4,
            in_band: true,
        };
        let json = f.to_json().to_string_compact();
        assert!(json.contains("\"experiment\":\"fig4\""));
        assert!(json.contains("27.4"));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(1.855), "1.85x");
    }

    #[test]
    fn findings_json_matches_record_format() {
        let f = Finding {
            experiment: "fig4",
            metric: "m".to_owned(),
            paper: "27x".to_owned(),
            measured: 1.0,
            in_band: true,
        };
        assert_eq!(
            findings_json(std::slice::from_ref(&f)),
            format!("[{}]", f.to_json().to_string_compact())
        );
    }

    #[test]
    fn write_findings_streams_identical_bytes() {
        let findings: Vec<Finding> = (0..3)
            .map(|i| Finding {
                experiment: "fig4",
                metric: format!("m{i}"),
                paper: "27x".to_owned(),
                measured: i as f64,
                in_band: i % 2 == 0,
            })
            .collect();
        let mut sink = Vec::new();
        write_findings(&mut sink, &findings).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), findings_json(&findings));
        let mut empty = Vec::new();
        write_findings(&mut empty, &[]).unwrap();
        assert_eq!(empty, b"[]");
    }

    #[test]
    fn platform_matrix_baseline_is_patched_docker() {
        for cloud in clouds() {
            let (baseline, matrix) = platform_matrix(cloud);
            assert_eq!(baseline.name(), "Docker");
            assert!(baseline.is_patched());
            assert_eq!(matrix.len(), Platform::cloud_configurations(cloud).len());
        }
    }
}
