//! Perf-regression gate over the `BENCH_runner.json` trajectory.
//!
//! `scripts/check.sh --bench` snapshots the committed ledger, re-runs
//! the gated harnesses to refresh it, and then calls the `bench_gate`
//! binary, which compares the fresh wall times against the snapshot
//! through [`check`]: a gated harness whose fresh `wall_ms` exceeds the
//! committed one by more than [`MAX_RATIO`] — and by more than the
//! [`ABS_SLACK_MS`] jitter floor — fails the gate. Wall time
//! is only comparable within one host and worker count, so a missing
//! committed entry or a `jobs` mismatch downgrades to a skip-with-note;
//! a missing *fresh* entry is a hard failure (the harness did not
//! report). `XC_BENCH_GATE=off` disarms the gate entirely — the escape
//! hatch for hosts whose timing is too noisy to gate on.
//!
//! The ledger is the runner's own format (one compact JSON object per
//! line inside a top-level array), parsed with the same hand-rolled
//! line scanning the rest of the repo uses — no serde.

use std::fmt::Write as _;

/// Harnesses whose wall time the gate enforces: the heaviest pipelines,
/// where a reducer or arena regression would actually show, plus the
/// fast analysis gates (`chaos_study`, `verify_lint`) whose arenas and
/// copy-on-write paths this round optimizes.
pub const GATED_HARNESSES: [&str; 5] = [
    "fig3_macro",
    "all_experiments",
    "cluster_study",
    "chaos_study",
    "verify_lint",
];

/// Fresh wall time may be at most this multiple of the committed one
/// (35% headroom — far above same-host scheduler noise, low enough to
/// catch an accidental O(n²) or a lost vectorization).
pub const MAX_RATIO: f64 = 1.35;

/// Absolute slack added on top of the ratio budget: a fresh time within
/// `committed + ABS_SLACK_MS` always passes. On millisecond-scale
/// harnesses (`verify_lint` runs in under 1 ms) the ratio alone would
/// gate on scheduler jitter, which is several ms regardless of how
/// small the workload is; the slack floors the budget at the noise
/// scale without loosening it for the heavy pipelines.
pub const ABS_SLACK_MS: f64 = 5.0;

/// Environment variable that disarms the gate (`off`).
pub const GATE_ENV: &str = "XC_BENCH_GATE";

/// How the [`GATE_ENV`] switch resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateMode {
    /// Gate runs (variable unset, empty, or explicitly `on`).
    Armed,
    /// `XC_BENCH_GATE=off`: gate skips the comparison.
    Disarmed,
    /// Any other value: the gate still runs — garbage must never
    /// silently disarm a CI gate — but the caller should warn with the
    /// carried raw value so the typo (`Off`, `0`, `false`, …) is
    /// visible instead of being treated as an implicit `on`.
    ArmedInvalid(String),
}

/// Resolves a raw [`GATE_ENV`] value strictly: only the exact strings
/// `off` (disarm) and `on`/unset/empty (arm) are recognized.
pub fn gate_mode_from(raw: Option<&str>) -> GateMode {
    match raw.map(str::trim) {
        None | Some("") | Some("on") => GateMode::Armed,
        Some("off") => GateMode::Disarmed,
        Some(other) => GateMode::ArmedInvalid(other.to_owned()),
    }
}

/// Reads [`GATE_ENV`] from the environment and resolves it.
pub fn gate_mode() -> GateMode {
    gate_mode_from(std::env::var(GATE_ENV).ok().as_deref())
}

/// One ledger row's gate-relevant fields.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Harness name (the ledger key).
    pub harness: String,
    /// Worker count the row was measured at.
    pub jobs: u64,
    /// Measured wall time, milliseconds.
    pub wall_ms: f64,
}

/// Verdict for one gated harness.
#[derive(Debug, Clone, PartialEq)]
pub enum GateStatus {
    /// Within budget; carries `fresh / committed`.
    Pass(f64),
    /// Not comparable on this host — noted, never fatal.
    Skip(String),
    /// Regression or missing fresh measurement — fails the gate.
    Fail(String),
}

/// One harness's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// The gated harness.
    pub harness: &'static str,
    /// Its verdict.
    pub status: GateStatus,
}

/// Extracts the string value of `"key":"..."` from one ledger line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

/// Extracts the numeric value of `"key":<num>` from one ledger line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a ledger body into its gate-relevant rows. Lines missing any
/// required field are ignored (same tolerance as the runner's reader).
pub fn parse_entries(body: &str) -> Vec<GateEntry> {
    body.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .filter_map(|l| {
            Some(GateEntry {
                harness: str_field(l, "harness")?,
                jobs: num_field(l, "jobs")? as u64,
                wall_ms: num_field(l, "wall_ms")?,
            })
        })
        .collect()
}

fn find<'a>(entries: &'a [GateEntry], harness: &str) -> Option<&'a GateEntry> {
    entries.iter().find(|e| e.harness == harness)
}

/// Compares `fresh` against `committed` for every gated harness.
pub fn check(committed: &str, fresh: &str, max_ratio: f64) -> Vec<GateOutcome> {
    let committed = parse_entries(committed);
    let fresh = parse_entries(fresh);
    GATED_HARNESSES
        .iter()
        .map(|&harness| {
            let status = match (find(&committed, harness), find(&fresh, harness)) {
                (_, None) => GateStatus::Fail("no fresh measurement in the ledger".to_owned()),
                (None, Some(_)) => {
                    GateStatus::Skip("no committed baseline entry to compare against".to_owned())
                }
                (Some(base), Some(new)) if base.jobs != new.jobs => GateStatus::Skip(format!(
                    "jobs mismatch (committed --jobs {}, fresh --jobs {})",
                    base.jobs, new.jobs
                )),
                (Some(base), Some(_)) if base.wall_ms <= 0.0 => {
                    GateStatus::Skip("committed wall time is zero".to_owned())
                }
                (Some(base), Some(new)) => {
                    let ratio = new.wall_ms / base.wall_ms;
                    if ratio > max_ratio && new.wall_ms > base.wall_ms + ABS_SLACK_MS {
                        GateStatus::Fail(format!(
                            "{:.1}ms vs committed {:.1}ms ({:.2}x > {:.2}x budget)",
                            new.wall_ms, base.wall_ms, ratio, max_ratio
                        ))
                    } else {
                        GateStatus::Pass(ratio)
                    }
                }
            };
            GateOutcome { harness, status }
        })
        .collect()
}

/// Renders the outcomes as the gate's stdout report; the bool is
/// whether any outcome failed.
pub fn render(outcomes: &[GateOutcome], max_ratio: f64) -> (String, bool) {
    let mut text = format!("Perf regression gate (budget {max_ratio:.2}x committed wall time):\n");
    let mut failed = false;
    for o in outcomes {
        match &o.status {
            GateStatus::Pass(ratio) => {
                let _ = writeln!(text, "  ok   {:<16} {ratio:.2}x", o.harness);
            }
            GateStatus::Skip(why) => {
                let _ = writeln!(text, "  skip {:<16} {why}", o.harness);
            }
            GateStatus::Fail(why) => {
                failed = true;
                let _ = writeln!(text, "  FAIL {:<16} {why}", o.harness);
            }
        }
    }
    (text, failed)
}

/// One-line before→after wall-time summary over the gated harnesses,
/// for `check.sh --bench`'s log: committed vs fresh milliseconds plus
/// the ratio, with `?` for entries missing on either side.
pub fn deltas_line(committed: &str, fresh: &str) -> String {
    let committed = parse_entries(committed);
    let fresh = parse_entries(fresh);
    let cols: Vec<String> = GATED_HARNESSES
        .iter()
        .map(
            |&harness| match (find(&committed, harness), find(&fresh, harness)) {
                (Some(base), Some(new)) if base.wall_ms > 0.0 => format!(
                    "{harness} {:.1}→{:.1}ms ({:.2}x)",
                    base.wall_ms,
                    new.wall_ms,
                    new.wall_ms / base.wall_ms
                ),
                (Some(base), Some(new)) => {
                    format!("{harness} {:.1}→{:.1}ms", base.wall_ms, new.wall_ms)
                }
                (None, Some(new)) => format!("{harness} ?→{:.1}ms", new.wall_ms),
                (Some(base), None) => format!("{harness} {:.1}→?ms", base.wall_ms),
                (None, None) => format!("{harness} ?→?"),
            },
        )
        .collect();
    format!("wall-time deltas: {}", cols.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(harness: &str, jobs: u64, wall_ms: f64) -> String {
        format!("{{\"harness\":\"{harness}\",\"jobs\":{jobs},\"host_parallelism\":1,\"wall_ms\":{wall_ms}}}")
    }

    fn ledger(rows: &[(&str, u64, f64)]) -> String {
        let body: Vec<String> = rows.iter().map(|&(h, j, w)| line(h, j, w)).collect();
        format!("[\n{}\n]\n", body.join(",\n"))
    }

    fn full(scale: f64) -> String {
        ledger(&[
            ("fig3_macro", 2, 110.0 * scale),
            ("all_experiments", 2, 35.0 * scale),
            ("cluster_study", 1, 450.0 * scale),
            ("chaos_study", 1, 18.0 * scale),
            ("verify_lint", 1, 0.8 * scale),
        ])
    }

    #[test]
    fn parses_the_runner_ledger_format() {
        let entries = parse_entries(&full(1.0));
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].harness, "fig3_macro");
        assert_eq!(entries[0].jobs, 2);
        assert_eq!(entries[0].wall_ms, 110.0);
    }

    #[test]
    fn identical_ledgers_pass() {
        let outcomes = check(&full(1.0), &full(1.0), MAX_RATIO);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.status, GateStatus::Pass(_))));
        let (text, failed) = render(&outcomes, MAX_RATIO);
        assert!(!failed, "{text}");
    }

    #[test]
    fn a_regression_beyond_budget_fails() {
        let outcomes = check(&full(1.0), &full(1.5), MAX_RATIO);
        // Every harness blows the ratio, but verify_lint's 0.4 ms excess
        // sits inside the jitter floor — only the heavy ones fail.
        for o in &outcomes {
            if o.harness == "verify_lint" {
                assert!(matches!(o.status, GateStatus::Pass(_)), "{o:?}");
            } else {
                assert!(matches!(o.status, GateStatus::Fail(_)), "{o:?}");
            }
        }
        let (text, failed) = render(&outcomes, MAX_RATIO);
        assert!(failed);
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn jitter_floor_covers_millisecond_harnesses_only() {
        // 0.8 ms -> 3.2 ms is 4x the budget but within ABS_SLACK_MS of
        // the committed time: scheduler noise, not a regression.
        let fresh = ledger(&[
            ("fig3_macro", 2, 110.0),
            ("all_experiments", 2, 35.0),
            ("cluster_study", 1, 450.0),
            ("chaos_study", 1, 18.0),
            ("verify_lint", 1, 3.2),
        ]);
        let outcomes = check(&full(1.0), &fresh, MAX_RATIO);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.status, GateStatus::Pass(_))));
        // The slack must not rescue a heavy harness: +15 ms on
        // cluster_study is beyond it, and beyond the ratio.
        let slow = ledger(&[("cluster_study", 1, 450.0 * MAX_RATIO + 15.0)]);
        let outcomes = check(&full(1.0), &slow, MAX_RATIO);
        let cluster = outcomes
            .iter()
            .find(|o| o.harness == "cluster_study")
            .unwrap();
        assert!(matches!(cluster.status, GateStatus::Fail(_)), "{cluster:?}");
    }

    #[test]
    fn an_improvement_passes() {
        let outcomes = check(&full(1.0), &full(0.5), MAX_RATIO);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.status, GateStatus::Pass(_))));
    }

    #[test]
    fn missing_committed_entry_skips_with_note() {
        let committed = ledger(&[("fig3_macro", 2, 110.0)]);
        let outcomes = check(&committed, &full(1.0), MAX_RATIO);
        assert!(matches!(outcomes[0].status, GateStatus::Pass(_)));
        for o in &outcomes[1..] {
            assert!(matches!(o.status, GateStatus::Skip(_)), "{o:?}");
        }
        let (_, failed) = render(&outcomes, MAX_RATIO);
        assert!(!failed);
    }

    #[test]
    fn missing_fresh_entry_fails() {
        let fresh = ledger(&[("fig3_macro", 2, 110.0)]);
        let outcomes = check(&full(1.0), &fresh, MAX_RATIO);
        assert!(matches!(outcomes[0].status, GateStatus::Pass(_)));
        for o in &outcomes[1..] {
            assert!(matches!(o.status, GateStatus::Fail(_)), "{o:?}");
        }
    }

    #[test]
    fn deltas_line_reports_every_gated_harness() {
        let line = deltas_line(&full(1.0), &full(0.5));
        for harness in GATED_HARNESSES {
            assert!(line.contains(harness), "{line}");
        }
        assert!(line.contains("110.0→55.0ms (0.50x)"), "{line}");
        // Missing entries degrade to placeholders, never panic.
        let partial = deltas_line(&ledger(&[("fig3_macro", 2, 110.0)]), &full(1.0));
        assert!(partial.contains("cluster_study ?→450.0ms"), "{partial}");
    }

    #[test]
    fn gate_mode_is_strict_about_the_env_switch() {
        assert_eq!(gate_mode_from(None), GateMode::Armed);
        assert_eq!(gate_mode_from(Some("")), GateMode::Armed);
        assert_eq!(gate_mode_from(Some("  ")), GateMode::Armed);
        assert_eq!(gate_mode_from(Some("on")), GateMode::Armed);
        assert_eq!(gate_mode_from(Some("off")), GateMode::Disarmed);
        assert_eq!(gate_mode_from(Some(" off ")), GateMode::Disarmed);
        // Anything else arms the gate AND surfaces the garbage value —
        // a typo must never silently disarm (or silently arm) CI.
        for garbage in ["Off", "OFF", "0", "false", "no", "disarm"] {
            assert_eq!(
                gate_mode_from(Some(garbage)),
                GateMode::ArmedInvalid(garbage.to_owned()),
                "{garbage:?} must be flagged, not guessed at"
            );
        }
    }

    #[test]
    fn jobs_mismatch_skips_not_fails() {
        let fresh = ledger(&[
            ("fig3_macro", 4, 110.0),
            ("all_experiments", 2, 35.0),
            ("cluster_study", 1, 450.0),
            ("chaos_study", 1, 18.0),
            ("verify_lint", 1, 0.8),
        ]);
        let outcomes = check(&full(1.0), &fresh, MAX_RATIO);
        assert!(matches!(outcomes[0].status, GateStatus::Skip(_)));
        assert!(matches!(outcomes[1].status, GateStatus::Pass(_)));
    }
}
