//! Chaos study — fault rate × platform sweep with conservation checks.
//!
//! Drives the deterministic fault-injection layer (`xc-faults`) through
//! the closed-loop chaos world on three platforms and reports throughput
//! degradation, retry/abandon counts, and watchdog recovery latency.
//! The logic lives in [`xc_bench::harness::chaos`]; this wrapper parses
//! `--jobs`, `--quick` (smaller grid, shorter simulated duration), and
//! `--fault-rate <r>` (pins the fault axis to `[0, r]`), prints the
//! result and records findings plus wall time.
//!
//! Crash-safe flags (DESIGN.md §4j): `--resume` replays completed cells
//! from the journal, `--fresh` discards it first; both checkpoint each
//! cell and stop gracefully on SIGINT (exit 3, resumable).
//! `--halt-after N` / `--max-wall-ms N` bound a checkpointing run.
//! Journaled runs skip the wall-time ledger.

use std::path::Path;

use xc_bench::harness::{chaos, measure, Journaled};
use xc_bench::journal::{ResumeArgs, JOURNAL_ROOT};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let rate = parse_fault_rate(&args).unwrap_or_else(|e| {
        eprintln!("chaos_study: {e}");
        std::process::exit(2);
    });
    let resume = ResumeArgs::parse(args.iter().skip(1).cloned()).unwrap_or_else(|e| {
        eprintln!("chaos_study: {e}");
        std::process::exit(2);
    });
    let runner = Runner::from_args();
    // Quick and full sweeps are different workloads, so they get
    // distinct ledger rows (mirroring cluster_study) — otherwise the
    // check-script's quick byte gate overwrites the full entry with a
    // quick wall time at whatever --jobs it happened to use, and the
    // perf gate compares apples to oranges.
    let name = if quick {
        "chaos_study_quick"
    } else {
        "chaos_study"
    };

    if resume.journaled() {
        let root = Path::new(JOURNAL_ROOT);
        match chaos::run_journaled(&runner, quick, rate, root, name, &resume) {
            Ok(Journaled::Complete {
                out,
                replayed,
                executed,
            }) => {
                eprintln!(
                    "{name}: {replayed} cells replayed from the journal, {executed} executed"
                );
                print!("{}", out.text);
                record("chaos", &out.findings);
            }
            Ok(Journaled::Interrupted { completed, total }) => {
                eprintln!(
                    "{name}: interrupted after {completed}/{total} cells; \
                     rerun with --resume to continue"
                );
                std::process::exit(3);
            }
            Err(e) => {
                eprintln!("{name}: journal error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let (out, entry) = measure(name, &runner, |r| chaos::run_with(r, quick, rate));
    print!("{}", out.text);
    record("chaos", &out.findings);
    // A pinned --fault-rate changes the sweep axis; keep those runs out
    // of the wall-time trajectory.
    if rate.is_none() {
        record_bench(&entry);
    }
}

/// Parses `--fault-rate <r>` / `--fault-rate=<r>`; the rate must be a
/// finite number in `(0, 1]` (0 is always included as the baseline).
fn parse_fault_rate(args: &[String]) -> Result<Option<f64>, String> {
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let value = if arg == "--fault-rate" {
            iter.next()
                .ok_or("--fault-rate requires a value, e.g. --fault-rate 0.05")?
                .as_str()
        } else if let Some(v) = arg.strip_prefix("--fault-rate=") {
            v
        } else {
            continue;
        };
        let rate: f64 = value
            .parse()
            .map_err(|_| format!("invalid --fault-rate {value:?}: expected a number"))?;
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return Err(format!(
                "invalid --fault-rate {value}: expected a rate in (0, 1]"
            ));
        }
        return Ok(Some(rate));
    }
    Ok(None)
}
