//! Figure 4 — relative system call throughput (higher is better).
//!
//! UnixBench System Call on all ten configurations, single and
//! concurrent (4 copies), on both clouds, normalized to patched Docker —
//! the paper's exact presentation. The logic lives in
//! [`xc_bench::harness::fig4`]; this wrapper parses `--jobs`, prints the
//! result and records findings plus wall time.

use std::time::Instant;

use xc_bench::harness::fig4;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = fig4::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.text);
    record("fig4", &out.findings);
    record_bench(&BenchEntry::timing("fig4_syscall", runner.jobs(), wall_ms));
}
