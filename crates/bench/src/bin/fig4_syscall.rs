//! Figure 4 — relative system call throughput (higher is better).
//!
//! UnixBench System Call on all ten configurations, single and
//! concurrent (4 copies), on both clouds, normalized to patched Docker —
//! the paper's exact presentation. The logic lives in
//! [`xc_bench::harness::fig4`]; this wrapper parses `--jobs`, prints the
//! result and records findings plus wall time and (when parallel) a
//! serial reference run.

use xc_bench::harness::{fig4, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("fig4_syscall", &runner, fig4::run);
    print!("{}", out.text);
    record("fig4", &out.findings);
    record_bench(&entry);
}
