//! §4.5 — container instantiation latency (extension experiment).
//!
//! The paper quotes three numbers: 180 ms to boot an X-LibOS with a bash
//! process, ~3 s total through the stock `xl` toolstack, and LightVM's
//! 4 ms toolstack as the fix. This harness prints the spawn-time model
//! for every platform and both toolstacks.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;

fn main() {
    let cloud = CloudEnv::LocalCluster;
    let platforms = [
        Platform::docker(cloud, true),
        Platform::gvisor(cloud, true),
        Platform::x_container(cloud, true),
        Platform::xen_container(cloud, true),
        Platform::unikernel(cloud),
    ];

    let mut table = Table::new(
        "Container instantiation latency (§4.5)",
        &["platform", "spawn method", "latency"],
    );
    for p in &platforms {
        let c = Container::new("bash", p.clone());
        table.row([
            Cell::from(p.name()),
            Cell::from(c.spawn_method().to_string()),
            Cell::from(c.spawn_time().to_string()),
        ]);
    }
    // The LightVM improvement path for X-Containers.
    let improved = Container::new("bash", Platform::x_container(cloud, true))
        .with_spawn(SpawnMethod::LightVmToolstack);
    table.separator();
    table.row([
        Cell::from("X-Container (LightVM toolstack)"),
        Cell::from(improved.spawn_method().to_string()),
        Cell::from(improved.spawn_time().to_string()),
    ]);
    println!("{table}");

    let xl = Container::new("x", Platform::x_container(cloud, true)).spawn_time();
    println!(
        "Prototype X-Container spawn: {xl} — dominated by the xl toolstack\n\
         (the 180 ms bootloader is the irreducible part). LightVM-style\n\
         toolstack surgery brings it to {} (§4.5).",
        improved.spawn_time()
    );
    record(
        "spawn_time",
        &[Finding {
            experiment: "spawn_time",
            metric: "xl_toolstack_total_ms".to_owned(),
            paper: "3 s".to_owned(),
            measured: xl.as_millis_f64(),
            in_band: (2_500.0..3_500.0).contains(&xl.as_millis_f64()),
        }],
    );
}
