//! Figure 6 — throughput comparison for Unikernel (U), Graphene (G) and
//! X-Container (X) on the local cluster: NGINX with 1 and 4 workers, and
//! the 2×PHP+MySQL topologies of Figure 7.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::fig6::{fig6a_nginx_1worker, fig6b_nginx_4workers, fig6c_php_mysql};

fn main() {
    let costs = CostModel::skylake_cloud();
    let mut findings = Vec::new();

    // ---- (a) NGINX, 1 worker ------------------------------------------
    let mut a = Table::new(
        "Figure 6a: NGINX 1 worker (requests/s)",
        &["platform", "req/s"],
    );
    for p in LibOsPlatform::ALL {
        a.row([
            Cell::from(p.letter()),
            Cell::Num(fig6a_nginx_1worker(p, &costs), 0),
        ]);
    }
    println!("{a}");
    let g = fig6a_nginx_1worker(LibOsPlatform::Graphene, &costs);
    let u = fig6a_nginx_1worker(LibOsPlatform::Unikernel, &costs);
    let x = fig6a_nginx_1worker(LibOsPlatform::XContainer, &costs);
    findings.push(Finding {
        experiment: "fig6",
        metric: "nginx1_x_vs_unikernel".to_owned(),
        paper: "comparable (≈1x)".to_owned(),
        measured: x / u,
        in_band: (0.85..1.35).contains(&(x / u)),
    });
    findings.push(Finding {
        experiment: "fig6",
        metric: "nginx1_x_vs_graphene".to_owned(),
        paper: "over twice Graphene".to_owned(),
        measured: x / g,
        in_band: (1.6..2.8).contains(&(x / g)),
    });

    // ---- (b) NGINX, 4 workers ------------------------------------------
    let mut b = Table::new(
        "Figure 6b: NGINX 4 workers (requests/s)",
        &["platform", "req/s"],
    );
    for p in LibOsPlatform::ALL {
        match fig6b_nginx_4workers(p, &costs) {
            Some(v) => b.row([Cell::from(p.letter()), Cell::Num(v, 0)]),
            None => b.row([
                Cell::from(p.letter()),
                Cell::from("unsupported (single process)"),
            ]),
        };
    }
    println!("{b}");
    let g4 = fig6b_nginx_4workers(LibOsPlatform::Graphene, &costs).expect("graphene 4w");
    let x4 = fig6b_nginx_4workers(LibOsPlatform::XContainer, &costs).expect("x 4w");
    findings.push(Finding {
        experiment: "fig6",
        metric: "nginx4_x_vs_graphene".to_owned(),
        paper: "more than 50% over Graphene".to_owned(),
        measured: x4 / g4,
        in_band: x4 / g4 > 1.5,
    });

    // ---- (c) 2×PHP + MySQL ---------------------------------------------
    let mut c = Table::new(
        "Figure 6c: 2×PHP+MySQL total throughput (requests/s)",
        &["topology", "Unikernel", "X-Container"],
    );
    for topo in DbTopology::ALL {
        let fmt = |v: Option<f64>| match v {
            Some(v) => Cell::Num(v, 0),
            None => Cell::from("n/a"),
        };
        c.row([
            Cell::from(topo.label()),
            fmt(fig6c_php_mysql(LibOsPlatform::Unikernel, topo, &costs)),
            fmt(fig6c_php_mysql(LibOsPlatform::XContainer, topo, &costs)),
        ]);
    }
    println!("{c}");
    let u_ded = fig6c_php_mysql(LibOsPlatform::Unikernel, DbTopology::Dedicated, &costs).unwrap();
    let x_ded = fig6c_php_mysql(LibOsPlatform::XContainer, DbTopology::Dedicated, &costs).unwrap();
    let x_merged = fig6c_php_mysql(
        LibOsPlatform::XContainer,
        DbTopology::DedicatedMerged,
        &costs,
    )
    .unwrap();
    findings.push(Finding {
        experiment: "fig6",
        metric: "php_x_vs_unikernel_dedicated".to_owned(),
        paper: "over 40% above Unikernel".to_owned(),
        measured: x_ded / u_ded,
        in_band: x_ded / u_ded > 1.4,
    });
    findings.push(Finding {
        experiment: "fig6",
        metric: "php_merged_vs_unikernel_dedicated".to_owned(),
        paper: "about three times Unikernel Dedicated".to_owned(),
        measured: x_merged / u_ded,
        in_band: (2.0..4.0).contains(&(x_merged / u_ded)),
    });

    println!(
        "Mechanisms (§5.5): Graphene coordinates POSIX state over IPC; a\n\
         unikernel cannot host two processes, so PHP and MySQL must talk\n\
         across VMs — the Merged X-Container deletes that round trip."
    );
    record("fig6", &findings);
}
