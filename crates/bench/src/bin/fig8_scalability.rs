//! Figure 8 — throughput scalability as the number of containers
//! increases (NGINX+PHP-FPM per container, wrk with 1 thread / 5
//! connections each, one 16-core 96 GB host).

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::scalability::{figure8_points, sweep, throughput, ScalabilityConfig};

fn main() {
    let costs = CostModel::skylake_cloud();

    let mut table = Table::new(
        "Figure 8: aggregate throughput (requests/s) vs container count",
        &["N", "Docker", "X-Container", "Xen HVM", "Xen PV"],
    );
    let sweeps: Vec<_> = ScalabilityConfig::ALL
        .iter()
        .map(|cfg| sweep(*cfg, &costs))
        .collect();
    for (i, n) in figure8_points().into_iter().enumerate() {
        let cell = |cfg_idx: usize| match sweeps[cfg_idx][i].throughput_rps {
            Some(v) => Cell::Num(v, 0),
            None => Cell::from("cannot boot"),
        };
        table.row([Cell::from(n), cell(0), cell(1), cell(2), cell(3)]);
    }
    println!("{table}");

    let d400 = throughput(ScalabilityConfig::Docker, 400, &costs).expect("docker@400");
    let x400 = throughput(ScalabilityConfig::XContainer, 400, &costs).expect("x@400");
    let d50 = throughput(ScalabilityConfig::Docker, 50, &costs).expect("docker@50");
    let x50 = throughput(ScalabilityConfig::XContainer, 50, &costs).expect("x@50");
    let gain_400 = (x400 / d400 - 1.0) * 100.0;

    println!(
        "At N=50:  Docker {:.0} rps vs X-Container {:.0} rps (Docker leads — \n\
          cheaper switches, processes spread over idle cores).\n\
         At N=400: Docker {:.0} rps vs X-Container {:.0} rps — X-Containers\n\
          ahead by {:.1}% (paper: 18%). Flat CFS over 4N processes degrades;\n\
          N vCPUs over 16 cores with 4-process inner schedulers do not.\n\
         Xen PV stops at 250 instances and Xen HVM at 200 — 512 MiB guests\n\
          exhaust the 96 GB host (§5.6).",
        d50, x50, d400, x400, gain_400
    );

    record(
        "fig8",
        &[
            Finding {
                experiment: "fig8",
                metric: "x_gain_over_docker_at_400".to_owned(),
                paper: "18%".to_owned(),
                measured: gain_400,
                in_band: (8.0..35.0).contains(&gain_400),
            },
            Finding {
                experiment: "fig8",
                metric: "docker_leads_at_50".to_owned(),
                paper: "Docker higher at small N".to_owned(),
                measured: d50 / x50,
                in_band: d50 > x50,
            },
        ],
    );
}
