//! Figure 8 — throughput scalability as the number of containers
//! increases (NGINX+PHP-FPM per container, wrk with 1 thread / 5
//! connections each, one 16-core 96 GB host). The logic lives in
//! [`xc_bench::harness::fig8`]; this wrapper parses `--jobs`, prints the
//! result and records findings plus wall time.

use std::time::Instant;

use xc_bench::harness::fig8;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = fig8::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.text);
    record("fig8", &out.findings);
    record_bench(&BenchEntry::timing(
        "fig8_scalability",
        runner.jobs(),
        wall_ms,
    ));
}
