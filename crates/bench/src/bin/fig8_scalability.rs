//! Figure 8 — throughput scalability as the number of containers
//! increases (NGINX+PHP-FPM per container, wrk with 1 thread / 5
//! connections each, one 16-core 96 GB host). The logic lives in
//! [`xc_bench::harness::fig8`]; this wrapper parses `--jobs`, prints the
//! result and records findings plus wall time and (when parallel) a
//! serial reference run.

use xc_bench::harness::{fig8, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("fig8_scalability", &runner, fig8::run);
    print!("{}", out.text);
    record("fig8", &out.findings);
    record_bench(&entry);
}
