//! Queue microbenchmark — the event-queue half of the DES-core
//! optimisation story, plus the perf-smoke gate `scripts/check.sh`
//! runs on every invocation.
//!
//! Two measurements:
//!
//! 1. **Churn throughput** of [`HeapQueue`] vs [`CalendarQueue`] under
//!    the engine's access pattern: pop the earliest event, schedule a
//!    deterministic pseudo-random number of successors a short
//!    deterministic delay into the future. Both queues must pop the
//!    exact same `(key, event)` sequence (checksummed) — the calendar
//!    queue's O(1) claim is only interesting if the order contract
//!    holds.
//! 2. **Harness wall time** of the serial `fig3` and `fig4` runs, the
//!    end-to-end numbers the calendar queue is meant to move.
//!
//! Modes:
//!
//! - default: full-size churn, digest gate, and `BENCH_runner.json`
//!   rows `queue_bench_heap` / `queue_bench_calendar`;
//! - `--sparse`: additionally run the sparse-regime churn — a few dozen
//!   events in flight with millisecond-scale hops (hundreds of empty
//!   buckets between occupied ones), comparing four lanes that must pop
//!   identically: the heap, the calendar queue's reference linear
//!   bucket scan, its fixed-width occupancy-bitmap advance, and the
//!   adaptive queue, which watches its advance telemetry and widens the
//!   buckets until consecutive events sit a handful of buckets apart.
//!   This is the regime the bitmap and the resizer exist for: the
//!   linear scan probes every empty bucket, the bitmap skips them a
//!   word at a time, and the adaptive queue makes them mostly disappear;
//! - `--quick`: small churn and the digest gate only — no benchmark
//!   ledger writes, exit 1 on any mismatch (`check.sh` runs
//!   `--quick --sparse`);
//! - `--write-golden`: refresh the committed fig4 digest at
//!   [`GOLDEN_PATH`] (run from the repository root).
//!
//! The digest gate hashes the serial `fig4` harness output (rendered
//! text plus findings JSON) and compares it against the committed
//! golden digest: any queue or cost-model change that perturbs
//! simulated results is caught here before it lands.

use std::time::Instant;

use xc_bench::findings_json;
use xc_bench::harness::{fig3, fig4};
use xc_bench::runner::{record_bench, BenchEntry, Runner};
use xc_sim::calendar::{key, key_time, CalendarQueue, HeapQueue};
use xc_sim::rng::Rng;
use xc_sim::time::Nanos;

/// Committed golden digest of the serial `fig4` harness output,
/// relative to the repository root (every bench binary runs from
/// there — `BENCH_runner.json` is resolved the same way).
const GOLDEN_PATH: &str = "crates/bench/golden/fig4_syscall.digest";

/// Events popped by the full-size churn run.
const FULL_EVENTS: u64 = 2_000_000;
/// Events popped by the `--quick` churn run.
const QUICK_EVENTS: u64 = 200_000;
/// Events pre-seeded before the churn loop starts.
const SEED_EVENTS: u64 = 4096;
/// Events in flight during the sparse-regime churn: few enough that
/// consecutive events sit tens of empty ~4µs buckets apart.
const SPARSE_SEED_EVENTS: u64 = 48;
/// Sparse hop bounds in nanoseconds: 0.2–4 ms, i.e. 50–1000 default
/// bucket widths, so the wheel is almost entirely empty between events
/// but hops still land inside the 1024-bucket ring window.
const SPARSE_HOP: (u64, u64) = (200_000, 4_000_000);
/// Ultra-sparse hop bounds: 4–40 ms, i.e. up to ~10,000 default bucket
/// widths. At the default width most pushes overshoot the ring window
/// entirely and fall into the overflow heap — the regime where a fixed
/// wheel degenerates into a worse binary heap and adaptive widening
/// restores ring residency.
const ULTRA_HOP: (u64, u64) = (4_000_000, 40_000_000);

/// The subset of the queue API the churn workload exercises, so one
/// generic driver measures both implementations.
trait ChurnQueue {
    fn push(&mut self, key: u128, event: u64);
    fn pop(&mut self) -> Option<(u128, u64)>;
}

impl ChurnQueue for HeapQueue<u64> {
    fn push(&mut self, key: u128, event: u64) {
        HeapQueue::push(self, key, event);
    }
    fn pop(&mut self) -> Option<(u128, u64)> {
        HeapQueue::pop(self)
    }
}

impl ChurnQueue for CalendarQueue<u64> {
    fn push(&mut self, key: u128, event: u64) {
        CalendarQueue::push(self, key, event);
    }
    fn pop(&mut self) -> Option<(u128, u64)> {
        CalendarQueue::pop(self)
    }
}

/// One churn run: identical event sequence for any queue honouring the
/// `(time, seq)` pop order. Returns `(checksum, wall_seconds)`.
///
/// The shape is the engine's closed loop at steady state: `SEED_EVENTS`
/// events in flight, and every pop schedules exactly one successor a
/// deterministic microsecond-scale hop into the future (the workload
/// models' service-time/RTT scale), so the queue holds a constant
/// population spanning a few wheel epochs.
fn churn<Q: ChurnQueue>(queue: &mut Q, events: u64) -> (u64, f64) {
    let mut rng = Rng::new(0x5eed_cafe);
    let mut seq = 0u64;
    for _ in 0..SEED_EVENTS {
        let at = Nanos::from_nanos(rng.range_inclusive(0, 50_000));
        queue.push(key(at, seq), seq);
        seq += 1;
    }
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..events {
        let Some((k, ev)) = queue.pop() else { break };
        checksum = checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add((k as u64) ^ (k >> 64) as u64)
            .wrapping_add(ev);
        let at = key_time(k) + Nanos::from_nanos(rng.range_inclusive(1, 50_000));
        queue.push(key(at, seq), seq);
        seq += 1;
    }
    (checksum, start.elapsed().as_secs_f64())
}

/// A sparse-regime churn: [`SPARSE_SEED_EVENTS`] events in flight,
/// every pop rescheduling one successor a `hop`-bounded hop out. Same
/// order contract and checksum as [`churn`], different occupancy: the
/// wheel holds a handful of occupied buckets separated by hundreds
/// ([`SPARSE_HOP`]) or thousands ([`ULTRA_HOP`]) of empty ones, so
/// advance and tiering cost — not push/pop — dominates.
fn sparse_churn<Q: ChurnQueue>(queue: &mut Q, events: u64, hop: (u64, u64)) -> (u64, f64) {
    let mut rng = Rng::new(0x0dd_ba11);
    let mut seq = 0u64;
    for _ in 0..SPARSE_SEED_EVENTS {
        let at = Nanos::from_nanos(rng.range_inclusive(0, hop.1));
        queue.push(key(at, seq), seq);
        seq += 1;
    }
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..events {
        let Some((k, ev)) = queue.pop() else { break };
        checksum = checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add((k as u64) ^ (k >> 64) as u64)
            .wrapping_add(ev);
        let at = key_time(k) + Nanos::from_nanos(rng.range_inclusive(hop.0, hop.1));
        queue.push(key(at, seq), seq);
        seq += 1;
    }
    (checksum, start.elapsed().as_secs_f64())
}

/// FNV-1a over the serial fig4 harness output: rendered text plus the
/// findings JSON, the same bytes `check.sh` compares across `--jobs`.
fn fig4_digest() -> (String, f64) {
    let start = Instant::now();
    let out = fig4::run(&Runner::new(1));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut h = 0xcbf29ce484222325u64;
    for b in out.text.bytes().chain(findings_json(&out.findings).bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    (format!("{h:016x}"), wall_ms)
}

fn main() {
    let mut quick = false;
    let mut sparse = false;
    let mut write_golden = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sparse" => sparse = true,
            "--write-golden" => write_golden = true,
            other => {
                eprintln!("queue_bench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let (digest, fig4_ms) = fig4_digest();
    if write_golden {
        std::fs::write(GOLDEN_PATH, format!("{digest}\n")).expect("write golden digest");
        println!("queue_bench: wrote fig4 golden digest {digest} to {GOLDEN_PATH}");
        return;
    }

    let events = if quick { QUICK_EVENTS } else { FULL_EVENTS };
    let (heap_sum, heap_s) = churn(&mut HeapQueue::with_capacity(SEED_EVENTS as usize), events);
    let (cal_sum, cal_s) = churn(
        &mut CalendarQueue::with_capacity(SEED_EVENTS as usize),
        events,
    );
    let mops = |s: f64| events as f64 / s / 1e6;
    println!(
        "churn ({events} events): heap {:.1} Mops, calendar {:.1} Mops ({:.2}x), checksums {}",
        mops(heap_s),
        mops(cal_s),
        heap_s / cal_s,
        if heap_sum == cal_sum {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    let mut sparse_diverged = false;
    let mut sparse_timings: Option<(f64, f64, f64, f64)> = None;
    let mut ultra_timings: Option<(f64, f64, f64)> = None;
    if sparse {
        let (sh_sum, sh_s) = sparse_churn(&mut HeapQueue::with_capacity(64), events, SPARSE_HOP);
        let (sl_sum, sl_s) =
            sparse_churn(&mut CalendarQueue::new_linear_scan(), events, SPARSE_HOP);
        let (sb_sum, sb_s) =
            sparse_churn(&mut CalendarQueue::new_fixed_width(), events, SPARSE_HOP);
        let mut adaptive = CalendarQueue::with_capacity(64);
        let (sa_sum, sa_s) = sparse_churn(&mut adaptive, events, SPARSE_HOP);
        sparse_diverged = sh_sum != sl_sum || sh_sum != sb_sum || sh_sum != sa_sum;
        sparse_timings = Some((sh_s, sl_s, sb_s, sa_s));
        println!(
            "sparse churn ({events} events, {SPARSE_SEED_EVENTS} in flight): \
             heap {:.1} Mops, linear-scan {:.1} Mops, fixed bitmap {:.1} Mops, \
             adaptive {:.1} Mops (bitmap vs linear {:.2}x, settled at 2^{} ns \
             buckets), checksums {}",
            mops(sh_s),
            mops(sl_s),
            mops(sb_s),
            mops(sa_s),
            sl_s / sb_s,
            adaptive.bucket_bits(),
            if sparse_diverged {
                "DIVERGED"
            } else {
                "identical"
            }
        );

        let (uh_sum, uh_s) = sparse_churn(&mut HeapQueue::with_capacity(64), events, ULTRA_HOP);
        let (uf_sum, uf_s) = sparse_churn(&mut CalendarQueue::new_fixed_width(), events, ULTRA_HOP);
        let mut ultra = CalendarQueue::with_capacity(64);
        let (ua_sum, ua_s) = sparse_churn(&mut ultra, events, ULTRA_HOP);
        sparse_diverged |= uh_sum != uf_sum || uh_sum != ua_sum;
        ultra_timings = Some((uh_s, uf_s, ua_s));
        println!(
            "ultra-sparse churn ({events} events, {SPARSE_SEED_EVENTS} in flight, \
             4-40 ms hops): heap {:.1} Mops, fixed bitmap {:.1} Mops, adaptive \
             {:.1} Mops (adaptive vs fixed {:.2}x, settled at 2^{} ns buckets), \
             checksums {}",
            mops(uh_s),
            mops(uf_s),
            mops(ua_s),
            uf_s / ua_s,
            ultra.bucket_bits(),
            if uh_sum != uf_sum || uh_sum != ua_sum {
                "DIVERGED"
            } else {
                "identical"
            }
        );
    }

    let fig3_start = Instant::now();
    let _ = fig3::run(&Runner::new(1));
    let fig3_ms = fig3_start.elapsed().as_secs_f64() * 1e3;
    println!("harness (serial): fig3 {fig3_ms:.1} ms, fig4 {fig4_ms:.2} ms");

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("read {GOLDEN_PATH} (run --write-golden first): {e}"));
    let golden = golden.trim();
    let digest_ok = digest == golden;
    println!(
        "fig4 digest {digest} vs golden {golden}: {}",
        if digest_ok { "ok" } else { "MISMATCH" }
    );

    if !quick {
        record_bench(&BenchEntry::timing("queue_bench_heap", 1, heap_s * 1e3));
        record_bench(&BenchEntry::timing("queue_bench_calendar", 1, cal_s * 1e3));
        if let Some((sh_s, sl_s, sb_s, sa_s)) = sparse_timings {
            record_bench(&BenchEntry::timing(
                "queue_bench_sparse_heap",
                1,
                sh_s * 1e3,
            ));
            record_bench(&BenchEntry::timing(
                "queue_bench_sparse_linear",
                1,
                sl_s * 1e3,
            ));
            record_bench(&BenchEntry::timing(
                "queue_bench_sparse_bitmap",
                1,
                sb_s * 1e3,
            ));
            record_bench(&BenchEntry::timing(
                "queue_bench_sparse_adaptive",
                1,
                sa_s * 1e3,
            ));
        }
        if let Some((uh_s, uf_s, ua_s)) = ultra_timings {
            record_bench(&BenchEntry::timing("queue_bench_ultra_heap", 1, uh_s * 1e3));
            record_bench(&BenchEntry::timing(
                "queue_bench_ultra_fixed",
                1,
                uf_s * 1e3,
            ));
            record_bench(&BenchEntry::timing(
                "queue_bench_ultra_adaptive",
                1,
                ua_s * 1e3,
            ));
        }
    }
    if heap_sum != cal_sum {
        eprintln!("error: calendar queue pop order diverged from the binary heap");
        std::process::exit(1);
    }
    if sparse_diverged {
        eprintln!("error: sparse churn pop order diverged across queue implementations");
        std::process::exit(1);
    }
    if !digest_ok {
        eprintln!("error: fig4 harness output differs from the committed golden digest");
        std::process::exit(1);
    }
}
