//! §3.4's isolation argument as a table: trusted computing base, attack
//! surface, and bug-containment class per platform (extension
//! experiment — the paper argues this qualitatively).

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::runtimes::security::{security_profile, IsolationBoundary};

fn main() {
    let cloud = CloudEnv::GoogleGce;
    let platforms = [
        Platform::docker(cloud, true),
        Platform::gvisor(cloud, true),
        Platform::clear_container(cloud, true).expect("GCE"),
        Platform::xen_container(cloud, true),
        Platform::x_container(cloud, true),
        Platform::graphene(cloud),
        Platform::unikernel(cloud),
    ];

    let mut table = Table::new(
        "Isolation posture (§3.4)",
        &[
            "platform",
            "boundary",
            "isolation TCB (kLoC)",
            "attack interfaces",
            "kernel bugs contained",
        ],
    );
    for p in &platforms {
        let s = security_profile(p);
        let boundary = match s.boundary {
            IsolationBoundary::SharedKernel => "shared kernel",
            IsolationBoundary::UserSpaceKernel => "user-space kernel",
            IsolationBoundary::Hypervisor => "hypervisor + guest kernel",
            IsolationBoundary::Exokernel => "exokernel",
            IsolationBoundary::InProcessLibOs => "in-process libOS",
        };
        table.row([
            Cell::from(p.name()),
            Cell::from(boundary),
            Cell::from(u64::from(s.isolation_tcb_kloc)),
            Cell::from(u64::from(s.attack_interfaces)),
            Cell::from(if s.kernel_bugs_contained { "yes" } else { "no" }),
        ]);
    }
    println!("{table}");
    println!(
        "The X-Kernel keeps the smallest isolation TCB while the guest kernel\n\
         — the largest, most vulnerable component — moves inside the tenant's\n\
         own trust domain: its bugs (including Meltdown-class, §2.2) no longer\n\
         break *inter-container* isolation."
    );

    let x = security_profile(&Platform::x_container(cloud, true));
    let docker = security_profile(&Platform::docker(cloud, true));
    record(
        "security_matrix",
        &[Finding {
            experiment: "security_matrix",
            metric: "tcb_ratio_docker_over_x".to_owned(),
            paper: "small TCB + small interface (§3.4)".to_owned(),
            measured: f64::from(docker.isolation_tcb_kloc) / f64::from(x.isolation_tcb_kloc),
            in_band: docker.isolation_tcb_kloc > 10 * x.isolation_tcb_kloc,
        }],
    );
}
