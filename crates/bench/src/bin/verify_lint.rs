//! Verify lint — the diagnostics sweep over the Table 1 corpus, plus
//! the coverage-regression gate `scripts/check.sh` runs on every
//! invocation. The logic lives in [`xc_bench::harness::verify_lint`].
//!
//! Modes:
//!
//! - default: full sweep — print the table and findings, write
//!   `results/verify_lint.json`, upsert a `BENCH_runner.json` row whose
//!   extra metrics (`coverage_pct`, `unknown_sites`, `upgraded_sites`)
//!   record the coverage trajectory, and apply the gates;
//! - `--quick`: gates only (digest, coverage floor, Unknown ceiling) —
//!   no ledger writes, exit 1 on any failure (`check.sh` runs this);
//! - `--json`: print the machine-readable sweep instead of the table;
//! - `--write-golden`: refresh the committed digest at [`GOLDEN_PATH`]
//!   (run from the repository root).
//!
//! The digest gate hashes the serial sweep's full output (rendered
//! text, machine JSON, findings JSON): any verifier change that moves a
//! verdict, a rule id, or a reason chain is caught here before it
//! lands.

use std::time::Instant;

use xc_bench::harness::verify_lint::{
    self, within_unknown_ceiling, COVERAGE_FLOOR_PCT, UNKNOWN_CEILING,
};
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

/// Committed golden digest of the serial sweep output, relative to the
/// repository root.
const GOLDEN_PATH: &str = "crates/bench/golden/verify_lint.digest";

fn fnv1a(bytes: impl Iterator<Item = u8>) -> String {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

fn main() {
    let mut quick = false;
    let mut json = false;
    let mut write_golden = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--write-golden" => write_golden = true,
            // Both --jobs forms are handled by Runner::from_args; the
            // space-separated one needs its value consumed here too.
            "--jobs" => {
                args.next();
            }
            other if other.starts_with("--jobs=") => {}
            other => {
                eprintln!("verify_lint: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    // The digest always hashes the serial sweep, independent of --jobs.
    let digest = fnv1a(verify_lint::run(&Runner::new(1)).stable_digest().bytes());
    if write_golden {
        std::fs::write(GOLDEN_PATH, format!("{digest}\n")).expect("write golden digest");
        println!("verify_lint: wrote golden digest {digest} to {GOLDEN_PATH}");
        return;
    }

    let runner = Runner::from_args();
    let start = Instant::now();
    let out = verify_lint::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if !quick {
        if json {
            println!("{}", out.machine_json());
        } else {
            print!("{}", out.render());
        }
        record("verify_lint", &out.findings());
        let mut entry = BenchEntry::timing("verify_lint", runner.jobs(), wall_ms);
        entry.metrics = vec![
            ("coverage_pct", out.coverage_pct()),
            ("unknown_sites", out.total_unknown() as f64),
            ("upgraded_sites", out.total_upgraded() as f64),
        ];
        if runner.jobs() > 1 {
            let serial_start = Instant::now();
            let serial = verify_lint::run(&Runner::new(1));
            entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
            entry.parallel_matches_serial = Some(serial.stable_digest() == out.stable_digest());
        }
        record_bench(&entry);
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("read {GOLDEN_PATH} (run --write-golden first): {e}"));
    let golden = golden.trim();
    let digest_ok = digest == golden;
    println!(
        "verify_lint digest {digest} vs golden {golden}: {}",
        if digest_ok { "ok" } else { "MISMATCH" }
    );
    println!(
        "coverage {:.1}% (floor {COVERAGE_FLOOR_PCT}%), {} Unknown (ceiling {UNKNOWN_CEILING})",
        out.coverage_pct(),
        out.total_unknown()
    );

    let mut failed = false;
    if !digest_ok {
        eprintln!("error: lint sweep output differs from the committed golden digest");
        failed = true;
    }
    if out.coverage_pct() < COVERAGE_FLOOR_PCT {
        eprintln!(
            "error: corpus coverage {:.2}% fell below the {COVERAGE_FLOOR_PCT}% floor",
            out.coverage_pct()
        );
        failed = true;
    }
    if !within_unknown_ceiling(out.total_unknown()) {
        eprintln!(
            "error: {} Unknown verdicts exceed the ceiling of {UNKNOWN_CEILING}",
            out.total_unknown()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
