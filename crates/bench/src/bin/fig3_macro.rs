//! Figure 3 — relative performance of macrobenchmarks: NGINX (`ab`),
//! memcached and Redis (`memtier_benchmark`, 1:10 SET:GET), throughput
//! and latency normalized to patched Docker, on both clouds.
//!
//! Each cell comes from a deterministic closed-loop simulation of the
//! benchmark client against the platform's server model. The logic
//! lives in [`xc_bench::harness::fig3`]; this wrapper parses `--jobs`,
//! prints the result and records findings plus wall time and
//! closed-loop cache counters.
//!
//! One [`ClosedLoopCache`] persists across everything this process
//! runs — the measured grid *and* the serial reference pass at
//! `--jobs > 1` — and it is keyed on derived
//! [`xcontainers::prelude::PlatformCosts`] tables, so platforms that
//! derive to identical costs (the baseline inside the matrix, the
//! patch-blind X-Container/Clear pairs) and whole repeated grids all
//! hit. The ledger therefore records the cumulative hit/miss counts,
//! not just the first grid's.

use xc_bench::harness::{fig3, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};
use xcontainers::prelude::ClosedLoopCache;

fn main() {
    let runner = Runner::from_args();
    let cache = ClosedLoopCache::new();
    let (out, mut entry) = measure("fig3_macro", &runner, |r| fig3::run_with(r, &cache));
    print!("{}", out.text);
    record("fig3", &out.findings);
    entry.cache_hits = Some(cache.hits());
    entry.cache_misses = Some(cache.misses());
    record_bench(&entry);
}
