//! Figure 3 — relative performance of macrobenchmarks: NGINX (`ab`),
//! memcached and Redis (`memtier_benchmark`, 1:10 SET:GET), throughput
//! and latency normalized to patched Docker, on both clouds.
//!
//! Each cell comes from a deterministic closed-loop simulation of the
//! benchmark client against the platform's server model. The logic
//! lives in [`xc_bench::harness::fig3`]; this wrapper parses `--jobs`,
//! prints the result and records findings plus wall time.

use std::time::Instant;

use xc_bench::harness::fig3;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = fig3::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.text);
    record("fig3", &out.findings);
    record_bench(&BenchEntry::timing("fig3_macro", runner.jobs(), wall_ms));
}
