//! Figure 3 — relative performance of macrobenchmarks: NGINX (`ab`),
//! memcached and Redis (`memtier_benchmark`, 1:10 SET:GET), throughput
//! and latency normalized to patched Docker, on both clouds.
//!
//! Each cell comes from a deterministic closed-loop simulation of the
//! benchmark client against the platform's server model. The logic
//! lives in [`xc_bench::harness::fig3`]; this wrapper parses `--jobs`,
//! prints the result and records findings plus wall time, closed-loop
//! cache counters, and (when parallel) a serial reference run.

use xc_bench::harness::{fig3, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("fig3_macro", &runner, fig3::run);
    print!("{}", out.text);
    record("fig3", &out.findings);
    record_bench(&entry);
}
