//! Figure 3 — relative performance of macrobenchmarks: NGINX (`ab`),
//! memcached and Redis (`memtier_benchmark`, 1:10 SET:GET), throughput
//! and latency normalized to patched Docker, on both clouds.
//!
//! Each cell comes from a deterministic closed-loop simulation of the
//! benchmark client against the platform's server model.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::apps::figure3_profiles;

const CONNECTIONS: u32 = 50;
const DURATION_MS: u64 = 300;

fn run(platform: &Platform, profile: &RequestProfile, costs: &CostModel) -> (f64, f64) {
    // Default images: nginx:1.13 runs one worker, memcached:1.5.7 four
    // threads, redis:3.2.11 a single event loop.
    let workers = match profile.name {
        "memcached" => 4,
        _ => 1,
    };
    let server = ServerModel {
        platform: platform.clone(),
        profile: profile.clone(),
        workers,
        cores: 4,
    };
    let r = run_closed_loop(
        &server,
        costs,
        CONNECTIONS,
        Nanos::from_millis(DURATION_MS),
        7,
    );
    (r.throughput_rps, r.latency.mean() / 1_000.0)
}

fn main() {
    let costs = CostModel::skylake_cloud();
    let mut findings = Vec::new();

    for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
        for profile in figure3_profiles() {
            let mut table = Table::new(
                &format!("Figure 3: {} — {}", profile.name, cloud.name()),
                &["configuration", "rel. throughput", "rel. latency"],
            );
            let baseline = Platform::docker(cloud, true);
            let (base_tput, base_lat) = run(&baseline, &profile, &costs);
            for platform in Platform::cloud_configurations(cloud) {
                let (tput, lat) = run(&platform, &profile, &costs);
                table.row([
                    Cell::from(platform.name()),
                    Cell::Num(tput / base_tput, 2),
                    Cell::Num(lat / base_lat, 2),
                ]);
                if platform.kind() == PlatformKind::XContainer && platform.is_patched() {
                    let (paper, band): (&str, (f64, f64)) = match profile.name {
                        "nginx-static" => ("1.21-1.50x Docker", (1.0, 1.9)),
                        "memcached" => ("1.34-2.08x Docker", (1.2, 2.6)),
                        _ => ("≈1x Docker (Redis)", (0.8, 1.5)),
                    };
                    findings.push(Finding {
                        experiment: "fig3",
                        metric: format!(
                            "x_{}_{}_throughput",
                            profile.name,
                            cloud.name().to_lowercase()
                        ),
                        paper: paper.to_owned(),
                        measured: tput / base_tput,
                        in_band: (band.0..band.1).contains(&(tput / base_tput)),
                    });
                }
            }
            println!("{table}");
        }
    }
    println!(
        "Shape (§5.3): X-Containers lead Docker most on memcached (syscall-\n\
         dense ops), moderately on NGINX, and only match it on Redis (user-\n\
         space compute dominates). gVisor and Clear Containers trail; the\n\
         patch penalizes Docker and Xen-Containers only."
    );
    record("fig3", &findings);
}
