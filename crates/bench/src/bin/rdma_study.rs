//! §5.7 software-RDMA capability study (extension experiment): message
//! ping-pong latency over TCP sockets vs soft-RDMA verbs, and which
//! platforms can load the module at all.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::rdma::{ping_pong_latency, transport_available, Transport};

fn main() {
    let costs = CostModel::skylake_cloud();
    let cloud = CloudEnv::LocalCluster;
    let platforms = [
        Platform::docker(cloud, true),
        Platform::gvisor(cloud, true),
        Platform::x_container(cloud, true),
        Platform::xen_container(cloud, true),
    ];

    let sizes: [u64; 4] = [64, 4 * 1024, 64 * 1024, 1024 * 1024];
    let mut table = Table::new(
        "Soft-RDMA vs TCP ping-pong round-trip latency",
        &["platform", "transport", "64 B", "4 KiB", "64 KiB", "1 MiB"],
    );
    for p in &platforms {
        for transport in [Transport::TcpSockets, Transport::SoftRdma] {
            let mut cells = vec![
                Cell::from(p.name()),
                Cell::from(match transport {
                    Transport::TcpSockets => "TCP sockets",
                    Transport::SoftRdma => "soft-RDMA",
                }),
            ];
            if transport_available(p, transport) {
                for &bytes in &sizes {
                    let l = ping_pong_latency(p, transport, bytes, &costs).expect("available");
                    cells.push(Cell::from(l.to_string()));
                }
            } else {
                cells.push(Cell::from("needs kernel module: host root + host network"));
            }
            table.row(cells);
        }
    }
    println!("{table}");

    let xc = Platform::x_container(cloud, true);
    let tcp = ping_pong_latency(&xc, Transport::TcpSockets, 64, &costs).unwrap();
    let rdma = ping_pong_latency(&xc, Transport::SoftRdma, 64, &costs).unwrap();
    println!(
        "X-Containers load rdma_rxe/siw as an ordinary module of their own\n\
         kernel (§5.7); Docker cannot without exposing the host. 64-byte\n\
         verbs round trip: {} vs {} over sockets.",
        rdma, tcp
    );
    record(
        "rdma_study",
        &[Finding {
            experiment: "rdma_study",
            metric: "x_rdma_vs_tcp_64b".to_owned(),
            paper: "capability enabled by kernel customization (§5.7)".to_owned(),
            measured: tcp.as_nanos() as f64 / rdma.as_nanos() as f64,
            in_band: rdma < tcp,
        }],
    );
}
