//! Verify study — static patch-safety analysis over the Table 1 corpus:
//! coverage, post-patch shape, and the pre-flight redundancy ablation.
//! The logic lives in [`xc_bench::harness::verify_study`]; this wrapper
//! parses `--jobs`, prints the result and records findings plus wall
//! time, analysis-cache hit accounting, and (when parallel) a serial
//! reference run compared on the wall-time-blanked stable digest.

use std::time::Instant;

use xc_bench::harness::verify_study;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = verify_study::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.render());
    record("verify_study", &out.findings());
    let mut entry = BenchEntry::timing("verify_study", runner.jobs(), wall_ms);
    entry.cache_hits = Some(out.cache_hits());
    entry.cache_misses = Some(out.cache_misses());
    if runner.jobs() > 1 {
        // The rendered table carries per-profile wall times, so the
        // serial comparison uses the digest with those columns blanked.
        let serial_start = Instant::now();
        let serial = verify_study::run(&Runner::new(1));
        entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
        entry.parallel_matches_serial = Some(serial.stable_digest() == out.stable_digest());
    }
    record_bench(&entry);
}
