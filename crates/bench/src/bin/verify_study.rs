//! Verify study — static patch-safety analysis over the Table 1 corpus.
//!
//! Three questions, answered against the same synthetic wrapper
//! libraries the Table 1 reduction study executes:
//!
//! 1. **Coverage** — how many syscall sites does `xc-verify` prove
//!    `Safe`, and what remains `Unknown`? (Expected residue: only the
//!    register-indirect wrappers, whose number is data-dependent.)
//! 2. **Post-patch shape** — after the offline tool rewrites a library,
//!    does re-verification confirm every detour/trampoline invariant?
//! 3. **Redundancy ablation** — with `preflight_verify` enabled, does
//!    the online patcher ever get vetoed? Zero rejections means the
//!    §4.4 pattern matcher is already sound on this corpus — now proved
//!    rather than assumed.

use std::time::Instant;

use xc_bench::{record, Finding};
use xcontainers::abom::binaries::{invoke_with, WrapperStyle};
use xcontainers::abom::handler::XContainerKernel;
use xcontainers::abom::offline::OfflinePatcher;
use xcontainers::abom::stats::AbomStats;
use xcontainers::prelude::*;
use xcontainers::verify::{reverify, Verifier};
use xcontainers::workloads::table1::{table1_profiles, AppProfile};

/// Weighted-random syscall run with an explicit ABOM config (the Table 1
/// path hard-codes the default config; the ablation needs the knob).
fn run_with_config(
    profile: &AppProfile,
    config: AbomConfig,
    syscalls: u64,
    seed: u64,
) -> AbomStats {
    let weights: Vec<f64> = profile.sites.iter().map(|s| s.weight).collect();
    let mut image = profile.library();
    let mut kernel = XContainerKernel::with_config(config);
    let mut rng = Rng::new(seed);
    for _ in 0..syscalls {
        let idx = rng.pick_weighted(&weights);
        let site = profile.sites[idx];
        let entry = image
            .symbol(&format!("wrapper_{idx}"))
            .expect("wrapper symbol");
        let stack = site.style.takes_stack_number().then_some(site.nr);
        let rdi = site.style.takes_register_number().then_some(site.nr);
        invoke_with(&mut image, &mut kernel, entry, stack, rdi).expect("wrapper invocation");
    }
    *kernel.stats()
}

fn main() {
    const SYSCALLS_PER_APP: u64 = 3_000;
    const SEED: u64 = 2019;

    let mut table = Table::new(
        "Verify study: static patch-safety analysis over the Table 1 corpus",
        &[
            "Application",
            "sites",
            "safe",
            "unsafe",
            "unknown",
            "µs",
            "reverify",
            "detours",
        ],
    );
    let mut findings = Vec::new();
    let mut total_sites = 0usize;
    let mut total_safe = 0usize;
    let mut total_rejections = 0u64;

    for profile in table1_profiles() {
        let image = profile.library();

        // 1. Pre-patch verdicts + analysis wall time.
        let start = Instant::now();
        let analysis = Verifier::new().analyze(&image);
        let micros = start.elapsed().as_secs_f64() * 1e6;
        let (safe, unsafe_, unknown) = analysis.report().tally();

        // Expected residue: register-indirect wrappers are Unknown by
        // construction (the number is data-dependent); everything else
        // in the corpus should prove Safe.
        let indirect = profile
            .sites
            .iter()
            .filter(|s| s.style == WrapperStyle::IndirectNumber)
            .count();
        let sites = profile.sites.len();
        total_sites += sites;
        total_safe += safe;

        // 2. Offline patch, then re-verify the rewritten image.
        let (patched, report) = OfflinePatcher::new()
            .patch(&image)
            .expect("offline patching");
        let shape = reverify(&patched, image.len());

        // 3. Pre-flight ablation: same run, verifier in the loop.
        let verified = run_with_config(
            &profile,
            AbomConfig {
                enabled: true,
                nine_byte_phase2: true,
                preflight_verify: true,
            },
            SYSCALLS_PER_APP,
            SEED,
        );
        total_rejections += verified.verify_rejected;

        table.row([
            Cell::from(profile.name),
            Cell::Num(sites as f64, 0),
            Cell::Num(safe as f64, 0),
            Cell::Num(unsafe_ as f64, 0),
            Cell::Num(unknown as f64, 0),
            Cell::Num(micros, 1),
            Cell::from(if shape.ok() { "ok" } else { "FAIL" }),
            Cell::Num(shape.detours.len() as f64, 0),
        ]);
        findings.push(Finding {
            experiment: "verify_study",
            metric: format!("{}_safe_sites", profile.name),
            paper: format!("{}/{} provable (§4.4 soundness)", sites - indirect, sites),
            measured: safe as f64,
            in_band: safe == sites - indirect && unsafe_ == 0,
        });
        findings.push(Finding {
            experiment: "verify_study",
            metric: format!("{}_reverify_ok", profile.name),
            paper: "all detour invariants hold".to_owned(),
            measured: if shape.ok() { 1.0 } else { 0.0 },
            in_band: shape.ok() && shape.detours.len() as u64 == report.detour_patched,
        });
    }

    println!("{table}");
    println!(
        "{total_safe}/{total_sites} sites proved Safe; the Unknown residue is\n\
         exactly the register-indirect wrappers the paper's ABOM also cannot\n\
         patch. Every offline-rewritten library passes post-patch\n\
         re-verification."
    );
    println!(
        "Pre-flight ablation: {total_rejections} online patches vetoed by the\n\
         verifier across {SYSCALLS_PER_APP} syscalls/app — the §4.4 pattern\n\
         matcher never patches a site the analyzer cannot prove."
    );
    findings.push(Finding {
        experiment: "verify_study",
        metric: "preflight_rejections".to_owned(),
        paper: "0 (online patterns are sound by construction)".to_owned(),
        measured: total_rejections as f64,
        in_band: total_rejections == 0,
    });
    record("verify_study", &findings);
}
