//! Verify study — static patch-safety analysis over the Table 1 corpus:
//! coverage, post-patch shape, and the pre-flight redundancy ablation.
//! The logic lives in [`xc_bench::harness::verify_study`]; this wrapper
//! parses `--jobs`, prints the result and records findings plus wall
//! time, analysis-cache hit accounting, and (when parallel) a serial
//! reference run compared on the wall-time-blanked stable digest.
//!
//! `--profile` appends a per-library worklist profile of the
//! abstract-interpretation fixpoint (pops, merges, phase wall times)
//! and folds the counter totals into the benchmark ledger row.

use std::time::Instant;

use xc_bench::harness::verify_study;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = verify_study::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.render());
    record("verify_study", &out.findings());
    let mut entry = BenchEntry::timing("verify_study", runner.jobs(), wall_ms);
    entry.cache_hits = Some(out.cache_hits());
    entry.cache_misses = Some(out.cache_misses());
    if runner.jobs() > 1 {
        // The rendered table carries per-profile wall times, so the
        // serial comparison uses the digest with those columns blanked.
        let serial_start = Instant::now();
        let serial = verify_study::run(&Runner::new(1));
        entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
        entry.parallel_matches_serial = Some(serial.stable_digest() == out.stable_digest());
    }
    if profile {
        let rows = verify_study::worklist_profiles(&runner);
        print!("\n{}", verify_study::render_worklist_profiles(&rows));
        let total = |f: fn(&verify_study::WorklistProfile) -> f64| rows.iter().map(f).sum::<f64>();
        entry
            .metrics
            .push(("absint_pops", total(|r| r.pops as f64)));
        entry
            .metrics
            .push(("absint_merges", total(|r| r.merges as f64)));
        entry
            .metrics
            .push(("absint_fixpoint_us", total(|r| r.fixpoint_micros)));
        entry
            .metrics
            .push(("absint_states_cloned", total(|r| r.states_cloned as f64)));
        entry
            .metrics
            .push(("absint_states_shared", total(|r| r.states_shared as f64)));
        entry
            .metrics
            .push(("absint_materialize_us", total(|r| r.materialize_micros)));
    }
    record_bench(&entry);
}
