//! Cluster study — per-host container density, tail latency and drop
//! rate for 100+ simulated hosts × 1000+ X-Container/Docker/gVisor
//! domains under open-loop traffic from over a million modelled clients
//! (extension; DESIGN.md §4g).
//!
//! Flags: `--quick` runs the 8-host CI smoke configuration instead of
//! the full 120-host study; `--jobs N` controls the worker pool (the
//! output is byte-identical at every value).

use xc_bench::harness::{cluster, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runner = Runner::from_args();
    let name = if quick {
        "cluster_study_quick"
    } else {
        "cluster_study"
    };
    let (out, mut entry) = measure(name, &runner, |r| cluster::run(r, quick));
    print!("{}", out.text);
    record("cluster", &out.findings);
    let p = cluster::params(quick);
    entry.metrics.push(("hosts", f64::from(p.hosts)));
    entry.metrics.push(("domains", p.total_domains() as f64));
    entry.metrics.push(("clients", p.clients as f64));
    record_bench(&entry);
}
