//! Cluster study — per-host container density, tail latency and drop
//! rate for 100+ simulated hosts × 1000+ X-Container/Docker/gVisor
//! domains under open-loop traffic from over a million modelled clients
//! (extension; DESIGN.md §4g).
//!
//! Flags: `--quick` runs the 8-host CI smoke configuration instead of
//! the full 120-host study; `--jobs N` controls the worker pool (the
//! output is byte-identical at every value).
//!
//! Crash-safe flags (DESIGN.md §4j): `--resume` replays completed cells
//! from the journal and executes only the missing ones; `--fresh`
//! discards any journal first. Both checkpoint each cell as it
//! completes and stop gracefully on SIGINT (exit 3, resumable).
//! `--halt-after N` and `--max-wall-ms N` bound a checkpointing run for
//! testing and operations. Journaled runs skip the `BENCH_runner.json`
//! ledger — a partial wall time would poison the perf trajectory.

use std::path::Path;

use xc_bench::harness::{cluster, measure, Journaled};
use xc_bench::journal::{ResumeArgs, JOURNAL_ROOT};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let resume = ResumeArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("cluster_study: {e}");
        std::process::exit(2);
    });
    let runner = Runner::from_args();
    let name = if quick {
        "cluster_study_quick"
    } else {
        "cluster_study"
    };

    if resume.journaled() {
        let root = Path::new(JOURNAL_ROOT);
        match cluster::run_journaled(&runner, quick, root, name, &resume) {
            Ok(Journaled::Complete {
                out,
                replayed,
                executed,
            }) => {
                eprintln!(
                    "{name}: {replayed} cells replayed from the journal, {executed} executed"
                );
                print!("{}", out.text);
                record("cluster", &out.findings);
            }
            Ok(Journaled::Interrupted { completed, total }) => {
                eprintln!(
                    "{name}: interrupted after {completed}/{total} cells; \
                     rerun with --resume to continue"
                );
                std::process::exit(3);
            }
            Err(e) => {
                eprintln!("{name}: journal error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let (out, mut entry) = measure(name, &runner, |r| cluster::run(r, quick));
    print!("{}", out.text);
    record("cluster", &out.findings);
    let p = cluster::params(quick);
    entry.metrics.push(("hosts", f64::from(p.hosts)));
    entry.metrics.push(("domains", p.total_domains() as f64));
    entry.metrics.push(("clients", p.clients as f64));
    record_bench(&entry);
}
