//! Ablations of the design choices DESIGN.md §4 calls out: ABOM on/off,
//! global-bit mappings, hierarchical scheduling, the Meltdown patch tax,
//! and the 9-byte phase 2. The logic lives in
//! [`xc_bench::harness::ablations`]; this wrapper parses `--jobs`,
//! prints the result and records findings plus wall time and (when
//! parallel) a serial reference run.

use xc_bench::harness::{ablations, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("ablations", &runner, ablations::run);
    print!("{}", out.text);
    record("ablations", &out.findings);
    record_bench(&entry);
}
