//! Ablations of the design choices DESIGN.md §4 calls out: ABOM on/off,
//! global-bit mappings, hierarchical scheduling, the Meltdown patch tax,
//! and the 9-byte phase 2. The logic lives in
//! [`xc_bench::harness::ablations`]; this wrapper parses `--jobs`,
//! prints the result and records findings plus wall time.

use std::time::Instant;

use xc_bench::harness::ablations;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = ablations::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.text);
    record("ablations", &out.findings);
    record_bench(&BenchEntry::timing("ablations", runner.jobs(), wall_ms));
}
