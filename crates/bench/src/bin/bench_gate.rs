//! Perf-regression gate binary (see [`xc_bench::gate`]): compares the
//! fresh `BENCH_runner.json` against a committed snapshot and exits
//! non-zero when a gated harness regressed past the wall-time budget.
//!
//! Usage: `bench_gate --baseline <snapshot> [--fresh <ledger>]`
//! (`--fresh` defaults to `BENCH_runner.json`). `XC_BENCH_GATE=off`
//! disarms the gate — it prints a note and exits 0 without comparing,
//! the escape hatch for timing-noisy hosts. Any other value arms the
//! gate and warns: a typo'd switch must never silently change what CI
//! enforces.

use xc_bench::gate::{check, deltas_line, gate_mode, render, GateMode, GATE_ENV, MAX_RATIO};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    match gate_mode() {
        GateMode::Disarmed => {
            println!("bench gate disarmed ({GATE_ENV}=off); skipping wall-time comparison");
            return;
        }
        GateMode::ArmedInvalid(raw) => {
            eprintln!(
                "warning: unrecognized {GATE_ENV}={raw:?} (expected \"off\" or \"on\"/unset); \
                 gate stays armed"
            );
        }
        GateMode::Armed => {}
    }
    let Some(baseline) = arg_value("--baseline") else {
        eprintln!("error: --baseline <snapshot> is required");
        std::process::exit(2);
    };
    let fresh = arg_value("--fresh").unwrap_or_else(|| "BENCH_runner.json".to_owned());
    let committed = match std::fs::read_to_string(&baseline) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline}: {e}");
            std::process::exit(2);
        }
    };
    let current = match std::fs::read_to_string(&fresh) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("error: cannot read fresh ledger {fresh}: {e}");
            std::process::exit(2);
        }
    };
    let outcomes = check(&committed, &current, MAX_RATIO);
    let (text, failed) = render(&outcomes, MAX_RATIO);
    print!("{text}");
    println!("{}", deltas_line(&committed, &current));
    if failed {
        std::process::exit(1);
    }
}
