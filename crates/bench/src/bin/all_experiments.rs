//! The combined acceptance pass: every table/figure reduced to its
//! headline paper-vs-measured findings in one summary table, with a
//! nonzero exit status when any finding leaves its acceptance band.
//!
//! The experiment logic lives in [`xc_bench::harness::all_experiments`]
//! and runs through the deterministic parallel [`Runner`] (`--jobs N`,
//! default: available parallelism). When running with more than one
//! worker this wrapper also re-runs the pass serially and fails unless
//! the parallel output is byte-identical — the determinism contract,
//! enforced on every invocation. Timings go to stderr and
//! `BENCH_runner.json`, never stdout, so stdout stays byte-comparable
//! across `--jobs` values.

use std::time::Instant;

use xc_bench::harness::all_experiments;
use xc_bench::runner::{record_bench, BenchEntry, Runner};
use xc_bench::{findings_json, record};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = all_experiments::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut entry = BenchEntry::timing("all_experiments", runner.jobs(), wall_ms);
    let mut diverged = false;
    if runner.jobs() > 1 {
        let serial_start = Instant::now();
        let serial = all_experiments::run(&Runner::new(1));
        entry.serial_wall_ms = Some(serial_start.elapsed().as_secs_f64() * 1e3);
        let matches = serial.text == out.text
            && findings_json(&serial.findings) == findings_json(&out.findings);
        entry.parallel_matches_serial = Some(matches);
        diverged = !matches;
        eprintln!(
            "all_experiments: {:.1} ms at --jobs {}, {:.1} ms serial reference, outputs {}",
            wall_ms,
            runner.jobs(),
            entry.serial_wall_ms.unwrap(),
            if matches { "identical" } else { "DIVERGED" }
        );
    } else {
        eprintln!("all_experiments: {wall_ms:.1} ms at --jobs 1");
    }

    print!("{}", out.text);
    record("all_experiments", &out.findings);
    record_bench(&entry);

    if diverged {
        eprintln!("error: parallel output differs from the serial reference");
        std::process::exit(1);
    }
    let out_of_band = out.findings.iter().filter(|f| !f.in_band).count();
    if out_of_band > 0 {
        std::process::exit(1);
    }
}
