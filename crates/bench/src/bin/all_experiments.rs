//! The combined acceptance pass: every table/figure reduced to its
//! headline paper-vs-measured findings in one summary table, with a
//! nonzero exit status when any finding leaves its acceptance band.
//!
//! The experiment logic lives in [`xc_bench::harness::all_experiments`]
//! and runs through the deterministic parallel [`Runner`] (`--jobs N`,
//! default: available parallelism). When running with more than one
//! worker, [`measure`] also re-runs the pass serially and this wrapper
//! fails unless the parallel output is byte-identical — the determinism
//! contract, enforced on every invocation. Timings go to stderr and
//! `BENCH_runner.json`, never stdout, so stdout stays byte-comparable
//! across `--jobs` values.
//!
//! [`measure`]: xc_bench::harness::measure

use xc_bench::harness::{all_experiments, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("all_experiments", &runner, all_experiments::run);
    match (entry.serial_wall_ms, entry.parallel_matches_serial) {
        (Some(serial_ms), Some(matches)) => eprintln!(
            "all_experiments: {:.1} ms at --jobs {}, {:.1} ms serial reference, outputs {}",
            entry.wall_ms,
            runner.jobs(),
            serial_ms,
            if matches { "identical" } else { "DIVERGED" }
        ),
        _ => eprintln!("all_experiments: {:.1} ms at --jobs 1", entry.wall_ms),
    }

    print!("{}", out.text);
    record("all_experiments", &out.findings);
    record_bench(&entry);

    if entry.parallel_matches_serial == Some(false) {
        eprintln!("error: parallel output differs from the serial reference");
        std::process::exit(1);
    }
    let out_of_band = out.findings.iter().filter(|f| !f.in_band).count();
    if out_of_band > 0 {
        std::process::exit(1);
    }
}
