//! The combined acceptance pass: every table/figure reduced to its
//! headline paper-vs-measured findings in one summary table, with a
//! nonzero exit status when any finding leaves its acceptance band.
//!
//! The experiment logic lives in [`xc_bench::harness::all_experiments`]
//! and runs through the deterministic parallel [`Runner`] (`--jobs N`,
//! default: available parallelism). When running with more than one
//! worker, [`measure`] also re-runs the pass serially and this wrapper
//! fails unless the parallel output is byte-identical — the determinism
//! contract, enforced on every invocation. Timings go to stderr and
//! `BENCH_runner.json`, never stdout, so stdout stays byte-comparable
//! across `--jobs` values.
//!
//! Crash-safe flags (DESIGN.md §4j): `--resume` replays completed
//! measurement groups from the journal, `--fresh` discards it first;
//! both checkpoint each group and stop gracefully on SIGINT (exit 3,
//! resumable). Journaled runs skip the serial reference re-run and the
//! wall-time ledger (a partial wall would poison the trajectory) but
//! keep the acceptance-band exit status.
//!
//! [`measure`]: xc_bench::harness::measure

use std::path::Path;

use xc_bench::harness::{all_experiments, measure, Journaled};
use xc_bench::journal::{ResumeArgs, JOURNAL_ROOT};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let resume = ResumeArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("all_experiments: {e}");
        std::process::exit(2);
    });
    let runner = Runner::from_args();

    if resume.journaled() {
        let root = Path::new(JOURNAL_ROOT);
        match all_experiments::run_journaled(&runner, root, "all_experiments", &resume) {
            Ok(Journaled::Complete {
                out,
                replayed,
                executed,
            }) => {
                eprintln!(
                    "all_experiments: {replayed} groups replayed from the journal, \
                     {executed} executed"
                );
                print!("{}", out.text);
                record("all_experiments", &out.findings);
                let out_of_band = out.findings.iter().filter(|f| !f.in_band).count();
                if out_of_band > 0 {
                    std::process::exit(1);
                }
            }
            Ok(Journaled::Interrupted { completed, total }) => {
                eprintln!(
                    "all_experiments: interrupted after {completed}/{total} groups; \
                     rerun with --resume to continue"
                );
                std::process::exit(3);
            }
            Err(e) => {
                eprintln!("all_experiments: journal error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let (out, entry) = measure("all_experiments", &runner, all_experiments::run);
    match (entry.serial_wall_ms, entry.parallel_matches_serial) {
        (Some(serial_ms), Some(matches)) => eprintln!(
            "all_experiments: {:.1} ms at --jobs {}, {:.1} ms serial reference, outputs {}",
            entry.wall_ms,
            runner.jobs(),
            serial_ms,
            if matches { "identical" } else { "DIVERGED" }
        ),
        _ => eprintln!("all_experiments: {:.1} ms at --jobs 1", entry.wall_ms),
    }

    print!("{}", out.text);
    record("all_experiments", &out.findings);
    record_bench(&entry);

    if entry.parallel_matches_serial == Some(false) {
        eprintln!("error: parallel output differs from the serial reference");
        std::process::exit(1);
    }
    let out_of_band = out.findings.iter().filter(|f| !f.in_band).count();
    if out_of_band > 0 {
        std::process::exit(1);
    }
}
