//! Figure 5 — relative performance of microbenchmarks (higher is
//! better): Execl, File Copy, Pipe Throughput, Context Switching,
//! Process Creation, and iperf, in the paper's four panels
//! (Amazon/Google × single/concurrent), normalized to patched Docker.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::iperf::IperfBench;
use xcontainers::workloads::unixbench::{concurrent_score, MicroBench};

fn panel(cloud: CloudEnv, concurrent: bool, costs: &CostModel, findings: &mut Vec<Finding>) {
    let mode = if concurrent { "Concurrent" } else { "Single" };
    let mut table = Table::new(
        &format!(
            "Figure 5: {} {} (relative to patched Docker)",
            cloud.name(),
            mode
        ),
        &[
            "configuration",
            "Execl",
            "File Copy",
            "Pipe Tput",
            "Ctx Switch",
            "Proc Create",
            "iperf",
        ],
    );

    let baseline = Platform::docker(cloud, true);
    let base: Vec<f64> = MicroBench::ALL
        .iter()
        .map(|b| {
            let s = b.score(&baseline, costs);
            if concurrent {
                concurrent_score(s, &baseline, 4)
            } else {
                s
            }
        })
        .collect();
    let base_iperf = IperfBench::throughput_bps(&baseline, costs);

    for platform in Platform::cloud_configurations(cloud) {
        let mut cells = vec![Cell::from(platform.name())];
        for (i, bench) in MicroBench::ALL.iter().enumerate() {
            let mut s = bench.score(&platform, costs);
            if concurrent {
                s = concurrent_score(s, &platform, 4);
            }
            cells.push(Cell::Num(s / base[i], 2));
        }
        cells.push(Cell::Num(
            IperfBench::throughput_bps(&platform, costs) / base_iperf,
            2,
        ));
        table.row(cells);

        if platform.kind() == PlatformKind::XContainer && platform.is_patched() && !concurrent {
            let execl = MicroBench::Execl.score(&platform, costs) / base[0];
            let ctx = MicroBench::ContextSwitching.score(&platform, costs) / base[3];
            let spawn = MicroBench::ProcessCreation.score(&platform, costs) / base[4];
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_execl_{}", cloud.name().to_lowercase()),
                paper: "above 1 (X wins Execl)".to_owned(),
                measured: execl,
                in_band: execl > 1.0,
            });
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_ctxswitch_{}", cloud.name().to_lowercase()),
                paper: "below 1 (PT ops cross into X-Kernel)".to_owned(),
                measured: ctx,
                in_band: ctx < 1.0,
            });
            findings.push(Finding {
                experiment: "fig5",
                metric: format!("x_proccreate_{}", cloud.name().to_lowercase()),
                paper: "below 1".to_owned(),
                measured: spawn,
                in_band: spawn < 1.0,
            });
        }
    }
    println!("{table}");
}

fn main() {
    let costs = CostModel::skylake_cloud();
    let mut findings = Vec::new();
    for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
        for concurrent in [false, true] {
            panel(cloud, concurrent, &costs, &mut findings);
        }
    }
    println!(
        "Shape (§5.4): X-Containers win the syscall-dominated benchmarks\n\
         (Execl, File Copy, Pipe) and lose Context Switching and Process\n\
         Creation, whose page-table operations must be validated by the\n\
         X-Kernel. The Meltdown patch does not move X-Container bars."
    );
    record("fig5", &findings);
}
