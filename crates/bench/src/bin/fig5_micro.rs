//! Figure 5 — relative performance of microbenchmarks (higher is
//! better): Execl, File Copy, Pipe Throughput, Context Switching,
//! Process Creation, and iperf, in the paper's four panels
//! (Amazon/Google × single/concurrent), normalized to patched Docker.
//! The logic lives in [`xc_bench::harness::fig5`]; this wrapper parses
//! `--jobs`, prints the result and records findings plus wall time and
//! (when parallel) a serial reference run.

use xc_bench::harness::{fig5, measure};
use xc_bench::record;
use xc_bench::runner::{record_bench, Runner};

fn main() {
    let runner = Runner::from_args();
    let (out, entry) = measure("fig5_micro", &runner, fig5::run);
    print!("{}", out.text);
    record("fig5", &out.findings);
    record_bench(&entry);
}
