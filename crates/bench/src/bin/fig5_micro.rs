//! Figure 5 — relative performance of microbenchmarks (higher is
//! better): Execl, File Copy, Pipe Throughput, Context Switching,
//! Process Creation, and iperf, in the paper's four panels
//! (Amazon/Google × single/concurrent), normalized to patched Docker.
//! The logic lives in [`xc_bench::harness::fig5`]; this wrapper parses
//! `--jobs`, prints the result and records findings plus wall time.

use std::time::Instant;

use xc_bench::harness::fig5;
use xc_bench::record;
use xc_bench::runner::{record_bench, BenchEntry, Runner};

fn main() {
    let runner = Runner::from_args();
    let start = Instant::now();
    let out = fig5::run(&runner);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{}", out.text);
    record("fig5", &out.findings);
    record_bench(&BenchEntry::timing("fig5_micro", runner.jobs(), wall_ms));
}
