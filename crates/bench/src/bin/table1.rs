//! Table 1 — Evaluation of the Automatic Binary Optimization Module.
//!
//! Runs each application's wrapper-site mix through the real ABOM
//! patcher and interpreter, counting trapped vs function-call syscalls
//! exactly as the paper's X-Kernel counter does (§5.2).

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::table1::run_table1;

fn main() {
    const SYSCALLS_PER_APP: u64 = 20_000;
    const SEED: u64 = 2019;

    let mut table = Table::new(
        "Table 1: ABOM syscall reduction (20k dynamic syscalls per app)",
        &[
            "Application",
            "Implementation",
            "Benchmark",
            "paper %",
            "measured %",
            "offline %",
        ],
    );
    let mut findings = Vec::new();

    for (profile, m) in run_table1(SYSCALLS_PER_APP, SEED) {
        let offline_cell = if profile.paper_manual.is_some() {
            Cell::Num(m.offline_reduction, 2)
        } else {
            Cell::Blank
        };
        table.row([
            Cell::from(profile.name),
            Cell::from(profile.language),
            Cell::from(profile.benchmark),
            Cell::Num(profile.paper_reduction, 2),
            Cell::Num(m.online_reduction, 2),
            offline_cell,
        ]);
        findings.push(Finding {
            experiment: "table1",
            metric: format!("{}_reduction", profile.name),
            paper: format!("{:.2}%", profile.paper_reduction),
            measured: m.online_reduction,
            in_band: (m.online_reduction - profile.paper_reduction).abs() < 2.0,
        });
        if let Some(manual) = profile.paper_manual {
            findings.push(Finding {
                experiment: "table1",
                metric: format!("{}_manual_reduction", profile.name),
                paper: format!("{manual:.2}%"),
                measured: m.offline_reduction,
                in_band: (m.offline_reduction - manual).abs() < 2.0,
            });
        }
    }
    println!("{table}");
    println!(
        "MySQL's cancellable libpthread wrappers defeat online ABOM (44.6%);\n\
         the offline detour tool recovers them to ~92% — both reproduced by\n\
         the byte-level patcher, not asserted."
    );
    record("table1", &findings);
}
