//! Figure 9 — kernel-level load balancing (§5.7): HAProxy on Docker,
//! HAProxy on X-Containers, IPVS NAT, and IPVS direct routing.

use xc_bench::{record, Finding};
use xcontainers::prelude::*;
use xcontainers::workloads::loadbalance::{
    balancer_cost, bottleneck, throughput, Bottleneck, LbMode,
};

fn main() {
    let costs = CostModel::skylake_cloud();

    let mut table = Table::new(
        "Figure 9: load balancing throughput (3 NGINX backends)",
        &[
            "configuration",
            "balancer cost/req",
            "total req/s",
            "bottleneck",
        ],
    );
    for mode in LbMode::ALL {
        table.row([
            Cell::from(mode.label()),
            Cell::from(balancer_cost(mode, &costs).to_string()),
            Cell::Num(throughput(mode, &costs), 0),
            Cell::from(match bottleneck(mode, &costs) {
                Bottleneck::Balancer => "balancer",
                Bottleneck::Backends => "backends",
            }),
        ]);
    }
    println!("{table}");

    let docker = throughput(LbMode::HaproxyDocker, &costs);
    let hx = throughput(LbMode::HaproxyXContainer, &costs);
    let nat = throughput(LbMode::IpvsNat, &costs);
    let dr = throughput(LbMode::IpvsDirectRouting, &costs);

    println!(
        "HAProxy on X vs Docker: {:.2}x (paper: 2x). IPVS NAT over HAProxy-X:\n\
         +{:.0}% (paper: +12%, balancer still the bottleneck). Direct routing\n\
         over NAT: {:.2}x (paper: ~2.5x, bottleneck shifts to the backends).",
        hx / docker,
        (nat / hx - 1.0) * 100.0,
        dr / nat
    );

    record(
        "fig9",
        &[
            Finding {
                experiment: "fig9",
                metric: "haproxy_x_vs_docker".to_owned(),
                paper: "2x".to_owned(),
                measured: hx / docker,
                in_band: (1.5..2.8).contains(&(hx / docker)),
            },
            Finding {
                experiment: "fig9",
                metric: "ipvs_nat_gain_pct".to_owned(),
                paper: "+12%".to_owned(),
                measured: (nat / hx - 1.0) * 100.0,
                in_band: (2.0..60.0).contains(&((nat / hx - 1.0) * 100.0)),
            },
            Finding {
                experiment: "fig9",
                metric: "direct_routing_vs_nat".to_owned(),
                paper: "~2.5x, backend-bound".to_owned(),
                measured: dr / nat,
                in_band: (1.7..3.5).contains(&(dr / nat))
                    && bottleneck(LbMode::IpvsDirectRouting, &costs) == Bottleneck::Backends,
            },
        ],
    );
}
