//! A small assembler with labels.
//!
//! `xc-abom` and `xc-workloads` build synthetic application binaries —
//! glibc-style syscall wrappers, Go-runtime-style wrappers, libpthread-style
//! cancellable wrappers — out of the [`Inst`] subset. The assembler resolves
//! label references for relative jumps/calls and produces a
//! [`BinaryImage`] with symbols.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::image::BinaryImage;
use crate::inst::{Cond, Inst};

/// Assembly errors, reported by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A rel8 reference target is further than ±128 bytes away.
    Rel8OutOfRange {
        /// The label that was out of range.
        label: String,
        /// The computed displacement.
        disp: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Rel8OutOfRange { label, disp } => {
                write!(f, "label `{l}` out of rel8 range (disp {disp})", l = label)
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixKind {
    /// One displacement byte at `patch_at`, relative to `end_of_inst`.
    Rel8,
    /// Four displacement bytes at `patch_at`, relative to `end_of_inst`.
    Rel32,
}

#[derive(Debug, Clone)]
struct Fixup {
    label: String,
    patch_at: usize,
    end_of_inst: usize,
    kind: FixKind,
}

/// An incremental assembler producing a [`BinaryImage`].
///
/// # Example
///
/// ```
/// use xc_isa::asm::Assembler;
/// use xc_isa::inst::{Inst, Reg};
///
/// let mut a = Assembler::new(0x400000);
/// a.label("__getpid").unwrap();
/// a.inst(Inst::MovImm32 { reg: Reg::Rax, imm: 39 });
/// a.inst(Inst::Syscall);
/// a.inst(Inst::Ret);
/// let image = a.finish().unwrap();
/// assert_eq!(image.symbol("__getpid"), Some(0x400000));
/// assert_eq!(image.read_bytes(0x400005, 2).unwrap(), [0x0f, 0x05]);
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u64,
    bytes: Vec<u8>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Starts assembling at virtual address `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            bytes: Vec::new(),
            labels: BTreeMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Current virtual address (where the next instruction lands).
    pub fn here(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Defines a label (and exported symbol) at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if the label already exists.
    pub fn label(&mut self, name: &str) -> Result<&mut Self, AsmError> {
        if self
            .labels
            .insert(name.to_owned(), self.bytes.len())
            .is_some()
        {
            return Err(AsmError::DuplicateLabel(name.to_owned()));
        }
        Ok(self)
    }

    /// Emits one instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        inst.encode_into(&mut self.bytes);
        self
    }

    /// Emits several instructions.
    pub fn insts<I: IntoIterator<Item = Inst>>(&mut self, insts: I) -> &mut Self {
        for i in insts {
            self.inst(i);
        }
        self
    }

    /// Emits raw bytes (used for intentionally odd byte sequences).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Emits `int3` padding up to the next multiple of `align` bytes, like
    /// linkers pad between functions.
    pub fn align(&mut self, align: usize) -> &mut Self {
        while !self.bytes.len().is_multiple_of(align) {
            self.bytes.push(0xcc);
        }
        self
    }

    /// Emits `jmp rel32` to a label (resolved at [`Assembler::finish`]).
    pub fn jmp_to(&mut self, label: &str) -> &mut Self {
        self.bytes.push(0xe9);
        self.push_fixup(label, FixKind::Rel32);
        self
    }

    /// Emits `jmp rel8` to a label (must be within ±128 bytes).
    pub fn jmp_short_to(&mut self, label: &str) -> &mut Self {
        self.bytes.push(0xeb);
        self.push_fixup(label, FixKind::Rel8);
        self
    }

    /// Emits `jcc rel8` to a label.
    pub fn jcc_to(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.bytes.push(match cond {
            Cond::E => 0x74,
            Cond::Ne => 0x75,
        });
        self.push_fixup(label, FixKind::Rel8);
        self
    }

    /// Emits `call rel32` to a label.
    pub fn call_to(&mut self, label: &str) -> &mut Self {
        self.bytes.push(0xe8);
        self.push_fixup(label, FixKind::Rel32);
        self
    }

    fn push_fixup(&mut self, label: &str, kind: FixKind) {
        let patch_at = self.bytes.len();
        let width = match kind {
            FixKind::Rel8 => 1,
            FixKind::Rel32 => 4,
        };
        self.bytes.extend(std::iter::repeat_n(0u8, width));
        self.fixups.push(Fixup {
            label: label.to_owned(),
            patch_at,
            end_of_inst: self.bytes.len(),
            kind,
        });
    }

    /// Resolves fixups and produces the final image with all labels
    /// exported as symbols.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered (undefined label or rel8
    /// range overflow).
    pub fn finish(mut self) -> Result<BinaryImage, AsmError> {
        for fix in &self.fixups {
            let target = *self
                .labels
                .get(&fix.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fix.label.clone()))?;
            let disp = target as i64 - fix.end_of_inst as i64;
            match fix.kind {
                FixKind::Rel8 => {
                    let rel = i8::try_from(disp).map_err(|_| AsmError::Rel8OutOfRange {
                        label: fix.label.clone(),
                        disp,
                    })?;
                    self.bytes[fix.patch_at] = rel as u8;
                }
                FixKind::Rel32 => {
                    let rel = disp as i32;
                    self.bytes[fix.patch_at..fix.patch_at + 4].copy_from_slice(&rel.to_le_bytes());
                }
            }
        }
        let mut image = BinaryImage::new(self.base, self.bytes);
        for (name, off) in &self.labels {
            image.add_symbol(name, self.base + *off as u64);
        }
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, disassemble};
    use crate::inst::Reg;

    #[test]
    fn forward_and_backward_jumps_resolve() {
        let mut a = Assembler::new(0x1000);
        a.label("start").unwrap();
        a.inst(Inst::Nop);
        a.jmp_short_to("end");
        a.inst(Inst::Nop); // skipped
        a.label("end").unwrap();
        a.jmp_to("start");
        let img = a.finish().unwrap();
        // jmp short at 0x1001: eb 01 (skip one nop).
        assert_eq!(img.read_bytes(0x1001, 2).unwrap(), [0xeb, 0x01]);
        // jmp rel32 back to start: e9 <-9>.
        let d = decode(img.read_bytes(0x1004, 5).unwrap()).unwrap();
        assert_eq!(d.inst, Inst::JmpRel32 { rel: -9 });
    }

    #[test]
    fn call_to_label() {
        let mut a = Assembler::new(0);
        a.call_to("fn");
        a.inst(Inst::Ret);
        a.label("fn").unwrap();
        a.inst(Inst::Ret);
        let img = a.finish().unwrap();
        let d = decode(img.read_bytes(0, 5).unwrap()).unwrap();
        assert_eq!(d.inst, Inst::CallRel32 { rel: 1 });
        assert_eq!(img.symbol("fn"), Some(6));
    }

    #[test]
    fn undefined_label_error() {
        let mut a = Assembler::new(0);
        a.jmp_to("nowhere");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".to_owned())
        );
    }

    #[test]
    fn duplicate_label_error() {
        let mut a = Assembler::new(0);
        a.label("x").unwrap();
        assert_eq!(
            a.label("x").unwrap_err(),
            AsmError::DuplicateLabel("x".to_owned())
        );
    }

    #[test]
    fn rel8_range_check() {
        let mut a = Assembler::new(0);
        a.jmp_short_to("far");
        for _ in 0..200 {
            a.inst(Inst::Nop);
        }
        a.label("far").unwrap();
        match a.finish().unwrap_err() {
            AsmError::Rel8OutOfRange { label, disp } => {
                assert_eq!(label, "far");
                assert_eq!(disp, 200);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn align_pads_with_int3() {
        let mut a = Assembler::new(0);
        a.inst(Inst::Nop);
        a.align(16);
        a.label("aligned").unwrap();
        a.inst(Inst::Ret);
        let img = a.finish().unwrap();
        assert_eq!(img.symbol("aligned"), Some(16));
        assert_eq!(img.read_bytes(1, 1).unwrap(), [0xcc]);
    }

    #[test]
    fn assembled_code_disassembles_cleanly() {
        let mut a = Assembler::new(0x400000);
        a.label("wrapper").unwrap();
        a.inst(Inst::PushRbp);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::Ne, "out");
        a.inst(Inst::Nop);
        a.label("out").unwrap();
        a.inst(Inst::PopRbp);
        a.inst(Inst::Ret);
        let img = a.finish().unwrap();
        let bytes = img.read_bytes(img.base(), img.len()).unwrap();
        let (insts, err) = disassemble(bytes);
        assert!(err.is_none(), "disassembly failed: {err:?}");
        assert_eq!(insts.len(), 8);
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Assembler::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.inst(Inst::Syscall);
        assert_eq!(a.here(), 0x102);
    }
}
