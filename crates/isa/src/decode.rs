//! Instruction decoder.
//!
//! The decoder serves two consumers with different needs:
//!
//! * **ABOM** (`xc-abom`) inspects the bytes *preceding* a trapped
//!   `syscall` and the bytes *at* return addresses; it needs exact pattern
//!   recognition over well-formed code.
//! * **The CPU interpreter** executes arbitrary (possibly mid-patch) bytes;
//!   it needs the x86-defined distinction between an instruction that is
//!   *invalid* (raises #UD, e.g. the `60` byte that is `pusha` in 32-bit
//!   mode but undefined in 64-bit mode) and bytes this subset simply does
//!   not model.

use std::error::Error;
use std::fmt;

use crate::inst::{Cond, Inst, Reg};

/// Where (and why) a linear disassembly stopped, if it did not reach the
/// end of the buffer.
pub type DisassembleStop = Option<(usize, DecodeError)>;

/// A successfully decoded instruction and its encoded length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The instruction.
    pub inst: Inst,
    /// Number of bytes consumed.
    pub len: usize,
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte sequence raises #UD on a 64-bit processor (e.g. `60`, or
    /// the explicit `ud2`). Contains the offending leading byte.
    ///
    /// `ud2` (`0f 0b`) decodes *successfully* as [`Inst::Ud2`]; this error
    /// covers encodings with no 64-bit meaning at all.
    InvalidOpcode(u8),
    /// More bytes are required to decode the instruction at this position.
    Truncated,
    /// The leading byte starts an encoding outside the modelled subset.
    Unsupported(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(b) => {
                write!(f, "invalid opcode byte {b:#04x} in 64-bit mode")
            }
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::Unsupported(b) => {
                write!(f, "unsupported opcode byte {b:#04x} for this subset")
            }
        }
    }
}

impl Error for DecodeError {}

/// Bytes that were single-byte instructions in 32-bit mode but raise #UD in
/// 64-bit long mode. `0x60` (`pusha`) is the one the paper's trap-fixing
/// story depends on: it is the second-to-last byte of every vsyscall-page
/// `call [disp32]` encoding.
const LONG_MODE_INVALID: [u8; 8] = [0x06, 0x07, 0x0e, 0x16, 0x17, 0x1e, 0x1f, 0x60];

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Decodes the instruction at the start of `bytes`.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if `bytes` ends mid-instruction,
/// [`DecodeError::InvalidOpcode`] for encodings that #UD in 64-bit mode, and
/// [`DecodeError::Unsupported`] for valid x86-64 encodings outside this
/// subset.
///
/// # Example
///
/// ```
/// use xc_isa::decode::{decode, DecodeError};
///
/// assert_eq!(decode(&[0x0f, 0x05]).unwrap().inst, xc_isa::Inst::Syscall);
/// // Jumping into the middle of `callq *0xffffffffff600008` lands on `60`:
/// assert_eq!(decode(&[0x60, 0xff]), Err(DecodeError::InvalidOpcode(0x60)));
/// ```
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    need(bytes, 1)?;
    let b0 = bytes[0];
    if LONG_MODE_INVALID.contains(&b0) {
        return Err(DecodeError::InvalidOpcode(b0));
    }
    match b0 {
        0x90 => Ok(Decoded {
            inst: Inst::Nop,
            len: 1,
        }),
        0xc3 => Ok(Decoded {
            inst: Inst::Ret,
            len: 1,
        }),
        0xc9 => Ok(Decoded {
            inst: Inst::Leave,
            len: 1,
        }),
        0xcc => Ok(Decoded {
            inst: Inst::Int3,
            len: 1,
        }),
        0x55 => Ok(Decoded {
            inst: Inst::PushRbp,
            len: 1,
        }),
        0x5d => Ok(Decoded {
            inst: Inst::PopRbp,
            len: 1,
        }),
        0x0f => {
            need(bytes, 2)?;
            match bytes[1] {
                0x05 => Ok(Decoded {
                    inst: Inst::Syscall,
                    len: 2,
                }),
                0x0b => Ok(Decoded {
                    inst: Inst::Ud2,
                    len: 2,
                }),
                other => Err(DecodeError::Unsupported(other)),
            }
        }
        0xb8..=0xbf => {
            need(bytes, 5)?;
            Ok(Decoded {
                inst: Inst::MovImm32 {
                    reg: Reg::from_code(b0 - 0xb8),
                    imm: read_u32(&bytes[1..]),
                },
                len: 5,
            })
        }
        0x8b => {
            // mov r32, [rsp+disp8]: 8b modrm(01 reg 100) sib(24) disp8
            need(bytes, 4)?;
            let modrm = bytes[1];
            if modrm & 0xc7 == 0x44 && bytes[2] == 0x24 {
                Ok(Decoded {
                    inst: Inst::LoadRspDisp8R32 {
                        reg: Reg::from_code((modrm >> 3) & 7),
                        disp: bytes[3],
                    },
                    len: 4,
                })
            } else {
                Err(DecodeError::Unsupported(b0))
            }
        }
        0x48 => decode_rex_w(bytes),
        0xff => {
            // call [disp32]: ff /2 with mod=00 rm=100, sib=25 (disp32, no base)
            need(bytes, 3)?;
            if bytes[1] == 0x14 && bytes[2] == 0x25 {
                need(bytes, 7)?;
                let target = read_u32(&bytes[3..]) as i32 as i64 as u64;
                Ok(Decoded {
                    inst: Inst::CallAbsIndirect { target },
                    len: 7,
                })
            } else {
                Err(DecodeError::Unsupported(b0))
            }
        }
        0xe8 => {
            need(bytes, 5)?;
            Ok(Decoded {
                inst: Inst::CallRel32 {
                    rel: read_u32(&bytes[1..]) as i32,
                },
                len: 5,
            })
        }
        0xe9 => {
            need(bytes, 5)?;
            Ok(Decoded {
                inst: Inst::JmpRel32 {
                    rel: read_u32(&bytes[1..]) as i32,
                },
                len: 5,
            })
        }
        0xeb => {
            need(bytes, 2)?;
            Ok(Decoded {
                inst: Inst::JmpRel8 {
                    rel: bytes[1] as i8,
                },
                len: 2,
            })
        }
        0x74 => {
            need(bytes, 2)?;
            Ok(Decoded {
                inst: Inst::JccRel8 {
                    cond: Cond::E,
                    rel: bytes[1] as i8,
                },
                len: 2,
            })
        }
        0x75 => {
            need(bytes, 2)?;
            Ok(Decoded {
                inst: Inst::JccRel8 {
                    cond: Cond::Ne,
                    rel: bytes[1] as i8,
                },
                len: 2,
            })
        }
        0x85 => {
            need(bytes, 2)?;
            if bytes[1] == 0xc0 {
                Ok(Decoded {
                    inst: Inst::TestEaxEax,
                    len: 2,
                })
            } else {
                Err(DecodeError::Unsupported(b0))
            }
        }
        0x31 => {
            need(bytes, 2)?;
            if bytes[1] == 0xc0 {
                Ok(Decoded {
                    inst: Inst::XorEaxEax,
                    len: 2,
                })
            } else {
                Err(DecodeError::Unsupported(b0))
            }
        }
        other => Err(DecodeError::Unsupported(other)),
    }
}

/// Decodes instructions with a `REX.W` (0x48) prefix.
fn decode_rex_w(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    need(bytes, 2)?;
    match bytes[1] {
        0xc7 => {
            // mov r64, imm32 (sign-extended): 48 c7 /0 imm32
            need(bytes, 3)?;
            let modrm = bytes[2];
            if modrm & 0xf8 == 0xc0 {
                need(bytes, 7)?;
                Ok(Decoded {
                    inst: Inst::MovImm32SxR64 {
                        reg: Reg::from_code(modrm & 7),
                        imm: read_u32(&bytes[3..]) as i32,
                    },
                    len: 7,
                })
            } else {
                Err(DecodeError::Unsupported(0xc7))
            }
        }
        0x8b => {
            // mov r64, [rsp+disp8]: 48 8b modrm sib disp8
            need(bytes, 5)?;
            let modrm = bytes[2];
            if modrm & 0xc7 == 0x44 && bytes[3] == 0x24 {
                Ok(Decoded {
                    inst: Inst::LoadRspDisp8R64 {
                        reg: Reg::from_code((modrm >> 3) & 7),
                        disp: bytes[4],
                    },
                    len: 5,
                })
            } else {
                Err(DecodeError::Unsupported(0x8b))
            }
        }
        0x89 => {
            // mov r64, r64: 48 89 /r with mod=11, or the store form
            // mov [rsp+disp8], r64: 48 89 modrm(01 reg 100) sib(24) disp8.
            need(bytes, 3)?;
            let modrm = bytes[2];
            if modrm & 0xc0 == 0xc0 {
                Ok(Decoded {
                    inst: Inst::MovRegReg64 {
                        dst: Reg::from_code(modrm & 7),
                        src: Reg::from_code((modrm >> 3) & 7),
                    },
                    len: 3,
                })
            } else if modrm & 0xc7 == 0x44 {
                need(bytes, 5)?;
                if bytes[3] == 0x24 {
                    Ok(Decoded {
                        inst: Inst::StoreRspDisp8R64 {
                            reg: Reg::from_code((modrm >> 3) & 7),
                            disp: bytes[4],
                        },
                        len: 5,
                    })
                } else {
                    Err(DecodeError::Unsupported(0x89))
                }
            } else {
                Err(DecodeError::Unsupported(0x89))
            }
        }
        0x83 => {
            // add/sub rsp, imm8: 48 83 c4/ec ib
            need(bytes, 4)?;
            match bytes[2] {
                0xc4 => Ok(Decoded {
                    inst: Inst::AddRspImm8 { imm: bytes[3] },
                    len: 4,
                }),
                0xec => Ok(Decoded {
                    inst: Inst::SubRspImm8 { imm: bytes[3] },
                    len: 4,
                }),
                _ => Err(DecodeError::Unsupported(0x83)),
            }
        }
        other => Err(DecodeError::Unsupported(other)),
    }
}

/// Disassembles a byte range, stopping at the first undecodable position.
///
/// Returns the decoded instructions with their offsets, plus the offset and
/// error of the first failure (if any). Useful in tests and for the offline
/// ABOM scanner.
pub fn disassemble(bytes: &[u8]) -> (Vec<(usize, Inst)>, DisassembleStop) {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode(&bytes[pos..]) {
            Ok(d) => {
                out.push((pos, d.inst));
                pos += d.len;
            }
            Err(e) => return (out, Some((pos, e))),
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let bytes = inst.encode();
        let d = decode(&bytes).unwrap_or_else(|e| panic!("decode {inst} failed: {e}"));
        assert_eq!(d.inst, inst, "roundtrip mismatch");
        assert_eq!(d.len, bytes.len(), "length mismatch for {inst}");
    }

    #[test]
    fn roundtrip_all_variants() {
        for reg in Reg::ALL {
            roundtrip(Inst::MovImm32 {
                reg,
                imm: 0xdead_beef,
            });
            roundtrip(Inst::MovImm32SxR64 { reg, imm: -7 });
            roundtrip(Inst::LoadRspDisp8R32 { reg, disp: 0x18 });
            roundtrip(Inst::LoadRspDisp8R64 { reg, disp: 0x08 });
            roundtrip(Inst::StoreRspDisp8R64 { reg, disp: 0x10 });
            for src in Reg::ALL {
                roundtrip(Inst::MovRegReg64 { dst: reg, src });
            }
        }
        roundtrip(Inst::Nop);
        roundtrip(Inst::Ret);
        roundtrip(Inst::Leave);
        roundtrip(Inst::Int3);
        roundtrip(Inst::Ud2);
        roundtrip(Inst::Syscall);
        roundtrip(Inst::PushRbp);
        roundtrip(Inst::PopRbp);
        roundtrip(Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0c08,
        });
        roundtrip(Inst::CallRel32 { rel: -100_000 });
        roundtrip(Inst::JmpRel8 { rel: -9 });
        roundtrip(Inst::JmpRel32 { rel: 123_456 });
        roundtrip(Inst::JccRel8 {
            cond: Cond::E,
            rel: 5,
        });
        roundtrip(Inst::JccRel8 {
            cond: Cond::Ne,
            rel: -5,
        });
        roundtrip(Inst::TestEaxEax);
        roundtrip(Inst::XorEaxEax);
        roundtrip(Inst::AddRspImm8 { imm: 8 });
        roundtrip(Inst::SubRspImm8 { imm: 8 });
    }

    #[test]
    fn pusha_byte_is_invalid_in_long_mode() {
        // Jumping 5 bytes into a vsyscall call instruction lands on 0x60.
        let call = Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0008,
        }
        .encode();
        assert_eq!(decode(&call[5..]), Err(DecodeError::InvalidOpcode(0x60)));
    }

    #[test]
    fn truncation_reported() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xb8, 0x01]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x0f]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xff, 0x14]), Err(DecodeError::Truncated));
        assert_eq!(
            decode(&[0x48, 0xc7, 0xc0, 0x01]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn unsupported_reported() {
        assert!(matches!(
            decode(&[0xf4]),
            Err(DecodeError::Unsupported(0xf4))
        ));
        assert!(matches!(
            decode(&[0x0f, 0xae, 0x00]),
            Err(DecodeError::Unsupported(0xae))
        ));
    }

    #[test]
    fn call_target_sign_extends() {
        let bytes = [0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff];
        let d = decode(&bytes).unwrap();
        assert_eq!(
            d.inst,
            Inst::CallAbsIndirect {
                target: 0xffff_ffff_ff60_0008
            }
        );
    }

    #[test]
    fn disassemble_figure2_case1() {
        let mut code = Vec::new();
        Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        }
        .encode_into(&mut code);
        Inst::Syscall.encode_into(&mut code);
        Inst::Ret.encode_into(&mut code);
        let (insts, err) = disassemble(&code);
        assert!(err.is_none());
        assert_eq!(
            insts,
            vec![
                (
                    0,
                    Inst::MovImm32 {
                        reg: Reg::Rax,
                        imm: 0
                    }
                ),
                (5, Inst::Syscall),
                (7, Inst::Ret),
            ]
        );
    }

    #[test]
    fn disassemble_stops_at_bad_byte() {
        let code = [0x90, 0x60, 0x90];
        let (insts, err) = disassemble(&code);
        assert_eq!(insts, vec![(0, Inst::Nop)]);
        assert_eq!(err, Some((1, DecodeError::InvalidOpcode(0x60))));
    }

    #[test]
    fn disassemble_truncated_final_instruction() {
        // A well-formed prefix followed by a mov whose immediate is cut
        // off by the end of the buffer.
        let mut code = Vec::new();
        Inst::Nop.encode_into(&mut code);
        Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0xdead_beef,
        }
        .encode_into(&mut code);
        code.truncate(code.len() - 2); // drop 2 of the 4 immediate bytes
        let (insts, err) = disassemble(&code);
        assert_eq!(insts, vec![(0, Inst::Nop)]);
        assert_eq!(err, Some((1, DecodeError::Truncated)));

        // The degenerate case: a lone multi-byte opcode prefix.
        let (insts, err) = disassemble(&[0x0f]);
        assert!(insts.is_empty());
        assert_eq!(err, Some((0, DecodeError::Truncated)));
    }

    #[test]
    fn disassemble_int3_padding_runs() {
        // Linkers pad between functions with int3; the disassembler must
        // walk straight through a run and pick up the next function.
        let mut code = Vec::new();
        Inst::Ret.encode_into(&mut code);
        for _ in 0..5 {
            Inst::Int3.encode_into(&mut code);
        }
        let next_fn = code.len();
        Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        }
        .encode_into(&mut code);
        Inst::Syscall.encode_into(&mut code);

        let (insts, err) = disassemble(&code);
        assert!(err.is_none());
        assert_eq!(insts.len(), 1 + 5 + 2);
        assert_eq!(insts[0], (0, Inst::Ret));
        for (i, item) in insts[1..6].iter().enumerate() {
            assert_eq!(*item, (1 + i, Inst::Int3));
        }
        assert_eq!(
            insts[6],
            (
                next_fn,
                Inst::MovImm32 {
                    reg: Reg::Rax,
                    imm: 1
                }
            )
        );
    }

    #[test]
    fn branch_landing_mid_instruction_decodes_overlapping_stream() {
        // The overlapping-decode hazard: a branch targeting the *interior*
        // of a mov immediate re-decodes the immediate bytes as different
        // instructions. `mov $0x9090050f,%eax` hides `syscall; nop; nop`
        // starting one byte in. xc-verify must treat such targets as
        // Unknown rather than trusting either decode stream.
        let mov = Inst::MovImm32 {
            reg: Reg::Rax,
            imm: u32::from_le_bytes([0x0f, 0x05, 0x90, 0x90]),
        };
        let mut code = mov.encode();
        Inst::Ret.encode_into(&mut code);

        // Straight-line decode sees the mov.
        let (insts, err) = disassemble(&code);
        assert!(err.is_none());
        assert_eq!(insts[0], (0, mov));

        // Decoding from the branch target (offset 1) yields a *different*,
        // equally valid stream whose boundaries disagree with the linear
        // sweep — the definition of an overlapping decode.
        let (overlapped, err) = disassemble(&code[1..]);
        assert!(err.is_none());
        assert_eq!(
            overlapped,
            vec![
                (0, Inst::Syscall),
                (2, Inst::Nop),
                (3, Inst::Nop),
                (4, Inst::Ret)
            ]
        );
        let sweep_boundaries: Vec<usize> = insts.iter().map(|(o, _)| *o).collect();
        assert!(
            !sweep_boundaries.contains(&1),
            "offset 1 is mid-instruction"
        );
    }

    #[test]
    fn decode_never_consumes_zero_bytes() {
        // Every successful decode consumes at least one byte, so scanning
        // always terminates.
        for b in 0..=255u8 {
            let buf = [b, 0, 0, 0, 0, 0, 0, 0];
            if let Ok(d) = decode(&buf) {
                assert!(d.len >= 1);
            }
        }
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::InvalidOpcode(0x60)
            .to_string()
            .contains("0x60"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Unsupported(0xf4).to_string().contains("0xf4"));
    }
}
