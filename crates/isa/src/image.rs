//! Loaded binary images.
//!
//! A [`BinaryImage`] is a contiguous range of virtual memory holding code,
//! split into 4 KiB pages with per-page protection and dirty bits. ABOM
//! patches text pages that are mapped **read-only**: it temporarily clears
//! the CR0 write-protect bit and writes through with `cmpxchg` (§4.4). The
//! image models exactly that:
//!
//! * plain writes honour page protection,
//! * [`BinaryImage::cmpxchg`] is the ≤ 8-byte atomic compare-exchange used
//!   by the patcher, with a `wp_override` flag standing in for the CR0.WP
//!   manipulation,
//! * successful patches set the page dirty bit, which the X-LibOS may later
//!   flush or ignore (§4.4, last paragraph).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Page size used for protection and dirty tracking.
pub const PAGE_SIZE: u64 = 4096;

/// Errors raised by image memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// Address (or range end) is outside the image.
    OutOfBounds {
        /// Offending virtual address.
        addr: u64,
    },
    /// Write to a read-only page without write-protect override.
    WriteProtected {
        /// Offending virtual address.
        addr: u64,
    },
    /// `cmpxchg` longer than 8 bytes — the hardware primitive cannot do it.
    ExchangeTooWide {
        /// Requested width.
        len: usize,
    },
    /// `cmpxchg` expected-value mismatch: the memory changed concurrently.
    ExchangeMismatch {
        /// Address of the attempted exchange.
        addr: u64,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::OutOfBounds { addr } => write!(f, "address {addr:#x} outside image"),
            ImageError::WriteProtected { addr } => {
                write!(f, "write to protected page at {addr:#x}")
            }
            ImageError::ExchangeTooWide { len } => {
                write!(f, "cmpxchg of {len} bytes exceeds 8-byte hardware limit")
            }
            ImageError::ExchangeMismatch { addr } => {
                write!(f, "cmpxchg expectation failed at {addr:#x}")
            }
        }
    }
}

impl Error for ImageError {}

/// A loaded code image: bytes at a base virtual address, with page
/// protection, dirty tracking, and symbols.
///
/// # Example
///
/// ```
/// use xc_isa::image::BinaryImage;
///
/// let mut img = BinaryImage::new(0x400000, vec![0x90; 4096]);
/// img.protect_all(false); // text pages are read-only
/// assert!(img.write(0x400000, &[0xcc]).is_err());
/// // ABOM-style patch: WP override + compare-exchange.
/// img.cmpxchg(0x400000, &[0x90], &[0xcc], true).unwrap();
/// assert_eq!(img.read_bytes(0x400000, 1).unwrap(), [0xcc]);
/// assert!(img.is_dirty(0x400000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryImage {
    base: u64,
    bytes: Vec<u8>,
    writable: Vec<bool>,
    dirty: Vec<bool>,
    symbols: BTreeMap<String, u64>,
}

impl BinaryImage {
    /// Creates an image of `bytes` mapped at virtual address `base`, with
    /// all pages initially writable and clean.
    pub fn new(base: u64, bytes: Vec<u8>) -> Self {
        let pages = (bytes.len() as u64).div_ceil(PAGE_SIZE) as usize;
        BinaryImage {
            base,
            bytes,
            writable: vec![true; pages],
            dirty: vec![false; pages],
            symbols: BTreeMap::new(),
        }
    }

    /// Base virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Whether `addr` lies inside the image.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    fn offset(&self, addr: u64, len: usize) -> Result<usize, ImageError> {
        if !self.contains(addr) || addr + len as u64 > self.end() {
            return Err(ImageError::OutOfBounds { addr });
        }
        Ok((addr - self.base) as usize)
    }

    fn page_index(&self, addr: u64) -> usize {
        ((addr - self.base) / PAGE_SIZE) as usize
    }

    /// Defines a symbol at a virtual address.
    pub fn add_symbol(&mut self, name: &str, addr: u64) {
        self.symbols.insert(name.to_owned(), addr);
    }

    /// Looks up a symbol address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, addr)` pairs in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfBounds`] if the range leaves the image.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], ImageError> {
        let off = self.offset(addr, len)?;
        Ok(&self.bytes[off..off + len])
    }

    /// Reads as many bytes as available (up to `len`) starting at `addr` —
    /// convenient for decoding near the image end.
    pub fn read_upto(&self, addr: u64, len: usize) -> Result<&[u8], ImageError> {
        if !self.contains(addr) {
            return Err(ImageError::OutOfBounds { addr });
        }
        let off = (addr - self.base) as usize;
        let avail = (self.bytes.len() - off).min(len);
        Ok(&self.bytes[off..off + avail])
    }

    /// Plain write honouring page protection.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::WriteProtected`] if any touched page is
    /// read-only, and [`ImageError::OutOfBounds`] for bad ranges.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), ImageError> {
        let off = self.offset(addr, data.len())?;
        let first = self.page_index(addr);
        let last = self.page_index(addr + data.len().max(1) as u64 - 1);
        for page in first..=last {
            if !self.writable[page] {
                return Err(ImageError::WriteProtected {
                    addr: self.base + page as u64 * PAGE_SIZE,
                });
            }
        }
        self.bytes[off..off + data.len()].copy_from_slice(data);
        for page in first..=last {
            self.dirty[page] = true;
        }
        Ok(())
    }

    /// Atomic compare-exchange of up to 8 bytes, the ABOM patch primitive.
    ///
    /// `wp_override` models clearing CR0.WP so kernel-mode code can write
    /// read-only pages (§4.4). On success the touched pages are marked
    /// dirty — "the patch is mostly transparent to X-LibOS, except that the
    /// page table dirty bit will be set for read-only pages".
    ///
    /// # Errors
    ///
    /// * [`ImageError::ExchangeTooWide`] if `expected.len() > 8`,
    /// * [`ImageError::ExchangeMismatch`] if memory does not equal
    ///   `expected`,
    /// * [`ImageError::WriteProtected`] if a page is read-only and
    ///   `wp_override` is false,
    /// * [`ImageError::OutOfBounds`] for bad ranges.
    ///
    /// # Panics
    ///
    /// Panics if `expected.len() != new.len()` — a caller bug.
    pub fn cmpxchg(
        &mut self,
        addr: u64,
        expected: &[u8],
        new: &[u8],
        wp_override: bool,
    ) -> Result<(), ImageError> {
        assert_eq!(
            expected.len(),
            new.len(),
            "cmpxchg expected/new length mismatch"
        );
        if expected.len() > 8 {
            return Err(ImageError::ExchangeTooWide {
                len: expected.len(),
            });
        }
        let off = self.offset(addr, expected.len())?;
        let first = self.page_index(addr);
        let last = self.page_index(addr + expected.len().max(1) as u64 - 1);
        if !wp_override {
            for page in first..=last {
                if !self.writable[page] {
                    return Err(ImageError::WriteProtected {
                        addr: self.base + page as u64 * PAGE_SIZE,
                    });
                }
            }
        }
        if &self.bytes[off..off + expected.len()] != expected {
            return Err(ImageError::ExchangeMismatch { addr });
        }
        self.bytes[off..off + new.len()].copy_from_slice(new);
        for page in first..=last {
            self.dirty[page] = true;
        }
        Ok(())
    }

    /// Sets the writable flag for the page containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the image.
    pub fn protect_page(&mut self, addr: u64, writable: bool) {
        assert!(self.contains(addr), "protect_page outside image");
        let page = self.page_index(addr);
        self.writable[page] = writable;
    }

    /// Sets the writable flag for all pages (text segments load read-only).
    pub fn protect_all(&mut self, writable: bool) {
        for w in &mut self.writable {
            *w = writable;
        }
    }

    /// Whether the page containing `addr` is writable.
    pub fn is_writable(&self, addr: u64) -> bool {
        self.contains(addr) && self.writable[self.page_index(addr)]
    }

    /// Whether the page containing `addr` is dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        self.contains(addr) && self.dirty[self.page_index(addr)]
    }

    /// Number of dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.iter().filter(|d| **d).count()
    }

    /// Clears all dirty bits (modelling a flush to disk so "the same patch
    /// is not needed in the future", §4.4). Returns how many pages were
    /// dirty.
    pub fn flush_dirty(&mut self) -> usize {
        let n = self.dirty_pages();
        for d in &mut self.dirty {
            *d = false;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> BinaryImage {
        BinaryImage::new(0x40_0000, vec![0x90; 2 * PAGE_SIZE as usize])
    }

    #[test]
    fn bounds_and_contains() {
        let img = image();
        assert!(img.contains(0x40_0000));
        assert!(img.contains(0x40_1fff));
        assert!(!img.contains(0x40_2000));
        assert!(!img.contains(0x3f_ffff));
        assert_eq!(img.len(), 8192);
        assert_eq!(img.end(), 0x40_2000);
        assert!(img.read_bytes(0x40_1fff, 2).is_err());
        assert!(img.read_bytes(0x40_1fff, 1).is_ok());
    }

    #[test]
    fn read_upto_clips() {
        let img = image();
        assert_eq!(img.read_upto(0x40_1ffe, 16).unwrap().len(), 2);
        assert!(img.read_upto(0x40_2000, 1).is_err());
    }

    #[test]
    fn write_respects_protection() {
        let mut img = image();
        img.protect_page(0x40_0000, false);
        assert_eq!(
            img.write(0x40_0000, &[1]),
            Err(ImageError::WriteProtected { addr: 0x40_0000 })
        );
        // Second page is still writable.
        img.write(0x40_1000, &[1]).unwrap();
        assert!(img.is_dirty(0x40_1000));
        assert!(!img.is_dirty(0x40_0000));
    }

    #[test]
    fn cmpxchg_happy_path_sets_dirty() {
        let mut img = image();
        img.protect_all(false);
        img.cmpxchg(0x40_0000, &[0x90, 0x90], &[0x0f, 0x05], true)
            .unwrap();
        assert_eq!(img.read_bytes(0x40_0000, 2).unwrap(), [0x0f, 0x05]);
        assert!(img.is_dirty(0x40_0000));
        assert_eq!(img.dirty_pages(), 1);
        assert_eq!(img.flush_dirty(), 1);
        assert_eq!(img.dirty_pages(), 0);
    }

    #[test]
    fn cmpxchg_mismatch_leaves_memory_untouched() {
        let mut img = image();
        let before = img.read_bytes(0x40_0000, 4).unwrap().to_vec();
        let err = img
            .cmpxchg(0x40_0000, &[1, 2, 3, 4], &[5, 6, 7, 8], true)
            .unwrap_err();
        assert_eq!(err, ImageError::ExchangeMismatch { addr: 0x40_0000 });
        assert_eq!(img.read_bytes(0x40_0000, 4).unwrap(), before.as_slice());
        assert_eq!(img.dirty_pages(), 0);
    }

    #[test]
    fn cmpxchg_width_limit() {
        let mut img = image();
        let nine_old = [0x90; 9];
        let nine_new = [0xcc; 9];
        assert_eq!(
            img.cmpxchg(0x40_0000, &nine_old, &nine_new, true),
            Err(ImageError::ExchangeTooWide { len: 9 })
        );
        // 8 bytes is the hardware maximum and works.
        img.cmpxchg(0x40_0000, &[0x90; 8], &[0xcc; 8], true)
            .unwrap();
    }

    #[test]
    fn cmpxchg_without_override_respects_protection() {
        let mut img = image();
        img.protect_all(false);
        assert_eq!(
            img.cmpxchg(0x40_0000, &[0x90], &[0xcc], false),
            Err(ImageError::WriteProtected { addr: 0x40_0000 })
        );
    }

    #[test]
    fn symbols() {
        let mut img = image();
        img.add_symbol("__read", 0x40_0010);
        img.add_symbol("__write", 0x40_0020);
        assert_eq!(img.symbol("__read"), Some(0x40_0010));
        assert_eq!(img.symbol("missing"), None);
        let names: Vec<&str> = img.symbols().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["__read", "__write"]);
    }

    #[test]
    fn cross_page_write_marks_both_pages() {
        let mut img = image();
        img.write(0x40_0ffe, &[1, 2, 3, 4]).unwrap();
        assert!(img.is_dirty(0x40_0000));
        assert!(img.is_dirty(0x40_1000));
    }
}
