//! A mini x86-64 interpreter.
//!
//! The interpreter exists to *prove* properties of ABOM that the paper
//! argues informally in §4.4: that a patched binary is execution-equivalent
//! to the original, that **every intermediate state** of the two-phase
//! 9-byte replacement is valid, and that the jump-into-the-middle case is
//! recovered by the invalid-opcode trap handler. `xc-abom`'s tests run the
//! same program under trap semantics, patched semantics, and interrupted
//! mid-patch semantics, and compare the resulting syscall traces.
//!
//! The machine model is deliberately small: eight general-purpose
//! registers, a zero flag, a byte-addressed stack, and three trap hooks
//! ([`Hooks`]) through which the "kernel" (ABOM + X-LibOS in `xc-abom`)
//! observes syscalls, vsyscall-table calls, and invalid-opcode faults.

use std::error::Error;
use std::fmt;

use crate::decode::{decode, DecodeError};
use crate::image::BinaryImage;
use crate::inst::{Cond, Inst, Reg};

/// Virtual address of the top of the simulated user stack.
pub const STACK_TOP: u64 = 0x7fff_ffff_0000;
/// Size of the simulated user stack in bytes.
pub const STACK_SIZE: u64 = 64 * 1024;

/// What the kernel hook wants the CPU to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep executing.
    Continue,
    /// Stop the CPU (e.g. the process exited).
    Halt,
}

/// Kernel-side handlers for the three traps the interpreter raises.
///
/// `xc-abom` implements this for the X-Kernel + X-LibOS pair; tests
/// implement it for plain trap-and-record kernels.
pub trait Hooks {
    /// A `syscall` instruction executed; `cpu.reg(Reg::Rax)` holds the
    /// number. Called **before** `rip` advances past the instruction, so
    /// the hook sees the syscall site (ABOM patches around it). After the
    /// hook returns, the CPU sets `rip` to the instruction end.
    fn on_syscall(&mut self, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow;

    /// A `call [disp32]` targeting an address outside the image (the
    /// vsyscall page). `rip` has already been advanced to the return
    /// address; the hook may bump it (the §4.4 return-address fix-up).
    fn on_vsyscall_call(&mut self, target: u64, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow;

    /// An invalid opcode (#UD) at `cpu.rip()`. The hook may repair `rip`
    /// (ABOM's jump-into-the-middle fixer) and return
    /// [`Flow::Continue`]; returning `Continue` *without* changing `rip`
    /// is reported as [`CpuError::UnhandledFault`] to avoid livelock.
    fn on_invalid_opcode(&mut self, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow;
}

/// Execution errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// Instruction fetch/decoding failed at an address.
    Decode {
        /// Faulting address.
        addr: u64,
        /// Underlying decode failure.
        source: DecodeError,
    },
    /// `rip` left the image without a hook intercepting.
    FetchOutsideImage {
        /// The runaway address.
        addr: u64,
    },
    /// Stack overflow/underflow or unaligned stack access.
    StackFault {
        /// Faulting stack address.
        addr: u64,
    },
    /// Execution hit an `int3` padding byte.
    Breakpoint {
        /// Address of the `int3`.
        addr: u64,
    },
    /// A #UD was raised and the hook did not repair `rip`.
    UnhandledFault {
        /// Faulting address.
        addr: u64,
    },
    /// `run` exceeded its step budget.
    StepLimit,
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Decode { addr, source } => write!(f, "decode fault at {addr:#x}: {source}"),
            CpuError::FetchOutsideImage { addr } => {
                write!(f, "instruction fetch outside image at {addr:#x}")
            }
            CpuError::StackFault { addr } => write!(f, "stack fault at {addr:#x}"),
            CpuError::Breakpoint { addr } => write!(f, "breakpoint (int3) at {addr:#x}"),
            CpuError::UnhandledFault { addr } => write!(f, "unhandled #UD at {addr:#x}"),
            CpuError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The interpreter state.
///
/// # Example
///
/// ```
/// use xc_isa::asm::Assembler;
/// use xc_isa::cpu::{Cpu, Flow, Hooks};
/// use xc_isa::image::BinaryImage;
/// use xc_isa::inst::{Inst, Reg};
///
/// struct Recorder(Vec<u64>);
/// impl Hooks for Recorder {
///     fn on_syscall(&mut self, cpu: &mut Cpu, _: &mut BinaryImage) -> Flow {
///         self.0.push(cpu.reg(Reg::Rax));
///         Flow::Continue
///     }
///     fn on_vsyscall_call(&mut self, _: u64, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
///         Flow::Continue
///     }
///     fn on_invalid_opcode(&mut self, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
///         Flow::Halt
///     }
/// }
///
/// let mut a = Assembler::new(0x1000);
/// a.inst(Inst::MovImm32 { reg: Reg::Rax, imm: 39 }); // getpid
/// a.inst(Inst::Syscall);
/// a.inst(Inst::Ret);
/// let mut image = a.finish().unwrap();
///
/// let mut cpu = Cpu::new(0x1000);
/// cpu.push_halt_frame().unwrap(); // top-level `ret` halts
/// let mut kernel = Recorder(Vec::new());
/// cpu.run(&mut image, &mut kernel, 100).unwrap();
/// assert_eq!(kernel.0, vec![39]);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    rip: u64,
    regs: [u64; 8],
    zf: bool,
    stack: Vec<u8>,
    /// Lowest stack offset written since the last reset — the only region
    /// [`Cpu::reset`] needs to re-zero.
    touched_low: usize,
    halted: bool,
    steps: u64,
}

impl Cpu {
    /// Creates a CPU with `rip` at `entry`, an empty stack, and zeroed
    /// registers (except `rsp`, which points at [`STACK_TOP`]).
    pub fn new(entry: u64) -> Self {
        let mut regs = [0u64; 8];
        regs[Reg::Rsp as usize] = STACK_TOP;
        Cpu {
            rip: entry,
            regs,
            zf: false,
            stack: vec![0; STACK_SIZE as usize],
            touched_low: STACK_SIZE as usize,
            halted: false,
            steps: 0,
        }
    }

    /// Rewinds this CPU to exactly the state [`Cpu::new`]`(entry)` would
    /// produce, without reallocating the stack: only the bytes earlier
    /// runs actually wrote are re-zeroed. Drivers that invoke many short
    /// functions (the Table 1 study runs hundreds of thousands) reuse one
    /// CPU this way instead of paying a 64 KiB zeroed allocation each time.
    pub fn reset(&mut self, entry: u64) {
        self.stack[self.touched_low..].fill(0);
        self.touched_low = self.stack.len();
        self.regs = [0u64; 8];
        self.regs[Reg::Rsp as usize] = STACK_TOP;
        self.rip = entry;
        self.zf = false;
        self.halted = false;
        self.steps = 0;
    }

    /// Current instruction pointer.
    pub fn rip(&self) -> u64 {
        self.rip
    }

    /// Sets the instruction pointer (used by trap handlers).
    pub fn set_rip(&mut self, rip: u64) {
        self.rip = rip;
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg as usize] = value;
    }

    /// Whether the CPU has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn stack_offset(&self, addr: u64, len: u64) -> Result<usize, CpuError> {
        let bottom = STACK_TOP - STACK_SIZE;
        if addr < bottom || addr + len > STACK_TOP {
            return Err(CpuError::StackFault { addr });
        }
        Ok((addr - bottom) as usize)
    }

    /// Reads a little-endian u64 from the stack region.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::StackFault`] outside the stack range.
    pub fn read_stack_u64(&self, addr: u64) -> Result<u64, CpuError> {
        let off = self.stack_offset(addr, 8)?;
        Ok(u64::from_le_bytes(
            self.stack[off..off + 8].try_into().expect("8-byte slice"),
        ))
    }

    /// Writes a little-endian u64 to the stack region.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::StackFault`] outside the stack range.
    pub fn write_stack_u64(&mut self, addr: u64, value: u64) -> Result<(), CpuError> {
        let off = self.stack_offset(addr, 8)?;
        self.stack[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self.touched_low = self.touched_low.min(off);
        Ok(())
    }

    /// Pushes a value, moving `rsp` down by 8.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::StackFault`] on overflow.
    pub fn push(&mut self, value: u64) -> Result<(), CpuError> {
        let rsp = self.reg(Reg::Rsp) - 8;
        self.write_stack_u64(rsp, value)?;
        self.set_reg(Reg::Rsp, rsp);
        Ok(())
    }

    /// Pops a value, moving `rsp` up by 8.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::StackFault`] on underflow.
    pub fn pop(&mut self) -> Result<u64, CpuError> {
        let rsp = self.reg(Reg::Rsp);
        let value = self.read_stack_u64(rsp)?;
        self.set_reg(Reg::Rsp, rsp + 8);
        Ok(value)
    }

    /// Executes one instruction. Returns `false` once halted.
    ///
    /// # Errors
    ///
    /// See [`CpuError`]; decoding faults at `rip` are routed through
    /// [`Hooks::on_invalid_opcode`] first when they are #UD-class.
    pub fn step<H: Hooks>(
        &mut self,
        image: &mut BinaryImage,
        hooks: &mut H,
    ) -> Result<bool, CpuError> {
        if self.halted {
            return Ok(false);
        }
        if !image.contains(self.rip) {
            return Err(CpuError::FetchOutsideImage { addr: self.rip });
        }
        self.steps += 1;
        let at = self.rip;
        // Fetch and decode in one expression so the image borrow ends
        // before the hooks need it mutably — no copy of the window.
        let decoded = match image
            .read_upto(at, 16)
            .map_err(|_| CpuError::FetchOutsideImage { addr: at })
            .map(decode)?
        {
            Ok(d) => d,
            Err(DecodeError::InvalidOpcode(_)) => {
                return self.raise_ud(at, image, hooks);
            }
            Err(source) => return Err(CpuError::Decode { addr: at, source }),
        };
        let len = decoded.len as u64;
        match decoded.inst {
            Inst::Nop => self.rip = at + len,
            Inst::Int3 => return Err(CpuError::Breakpoint { addr: at }),
            Inst::Ud2 => {
                return self.raise_ud(at, image, hooks);
            }
            Inst::Ret => {
                let target = self.pop()?;
                if target == 0 {
                    // Convention: returning to the null sentinel ends the
                    // program (like returning from `_start`).
                    self.halted = true;
                } else {
                    self.rip = target;
                }
            }
            Inst::Leave => {
                let rbp = self.reg(Reg::Rbp);
                self.set_reg(Reg::Rsp, rbp);
                let saved = self.pop()?;
                self.set_reg(Reg::Rbp, saved);
                self.rip = at + len;
            }
            Inst::Syscall => {
                if hooks.on_syscall(self, image) == Flow::Halt {
                    self.halted = true;
                    return Ok(false);
                }
                // rip may have been altered by a patching hook only through
                // set_rip; the architectural return address is fixed.
                self.rip = at + len;
            }
            Inst::PushRbp => {
                let rbp = self.reg(Reg::Rbp);
                self.push(rbp)?;
                self.rip = at + len;
            }
            Inst::PopRbp => {
                let v = self.pop()?;
                self.set_reg(Reg::Rbp, v);
                self.rip = at + len;
            }
            Inst::MovImm32 { reg, imm } => {
                self.set_reg(reg, u64::from(imm));
                self.rip = at + len;
            }
            Inst::MovImm32SxR64 { reg, imm } => {
                self.set_reg(reg, imm as i64 as u64);
                self.rip = at + len;
            }
            Inst::LoadRspDisp8R32 { reg, disp } => {
                let v = self.read_stack_u64(self.reg(Reg::Rsp) + u64::from(disp))?;
                self.set_reg(reg, v & 0xffff_ffff);
                self.rip = at + len;
            }
            Inst::LoadRspDisp8R64 { reg, disp } => {
                let v = self.read_stack_u64(self.reg(Reg::Rsp) + u64::from(disp))?;
                self.set_reg(reg, v);
                self.rip = at + len;
            }
            Inst::StoreRspDisp8R64 { reg, disp } => {
                let v = self.reg(reg);
                self.write_stack_u64(self.reg(Reg::Rsp) + u64::from(disp), v)?;
                self.rip = at + len;
            }
            Inst::MovRegReg64 { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
                self.rip = at + len;
            }
            Inst::CallAbsIndirect { target } => {
                if image.contains(target) {
                    self.push(at + len)?;
                    self.rip = target;
                } else {
                    // Vsyscall-page call: the handler runs "inline" in the
                    // kernel hook; rip becomes the return address first so
                    // the hook can apply the §4.4 fix-up.
                    self.rip = at + len;
                    if hooks.on_vsyscall_call(target, self, image) == Flow::Halt {
                        self.halted = true;
                        return Ok(false);
                    }
                }
            }
            Inst::CallRel32 { rel } => {
                self.push(at + len)?;
                self.rip = (at + len).wrapping_add_signed(i64::from(rel));
            }
            Inst::JmpRel8 { rel } => {
                self.rip = (at + len).wrapping_add_signed(i64::from(rel));
            }
            Inst::JmpRel32 { rel } => {
                self.rip = (at + len).wrapping_add_signed(i64::from(rel));
            }
            Inst::JccRel8 { cond, rel } => {
                let taken = match cond {
                    Cond::E => self.zf,
                    Cond::Ne => !self.zf,
                };
                self.rip = if taken {
                    (at + len).wrapping_add_signed(i64::from(rel))
                } else {
                    at + len
                };
            }
            Inst::TestEaxEax => {
                self.zf = self.reg(Reg::Rax) & 0xffff_ffff == 0;
                self.rip = at + len;
            }
            Inst::XorEaxEax => {
                // Writing a 32-bit register zero-extends: rax := 0.
                self.set_reg(Reg::Rax, 0);
                self.zf = true;
                self.rip = at + len;
            }
            Inst::AddRspImm8 { imm } => {
                let rsp = self.reg(Reg::Rsp) + u64::from(imm);
                self.set_reg(Reg::Rsp, rsp);
                self.rip = at + len;
            }
            Inst::SubRspImm8 { imm } => {
                let rsp = self.reg(Reg::Rsp) - u64::from(imm);
                self.set_reg(Reg::Rsp, rsp);
                self.rip = at + len;
            }
        }
        Ok(!self.halted)
    }

    fn raise_ud<H: Hooks>(
        &mut self,
        at: u64,
        image: &mut BinaryImage,
        hooks: &mut H,
    ) -> Result<bool, CpuError> {
        match hooks.on_invalid_opcode(self, image) {
            Flow::Halt => {
                self.halted = true;
                Ok(false)
            }
            Flow::Continue => {
                if self.rip == at {
                    Err(CpuError::UnhandledFault { addr: at })
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// Runs until halt or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`]s from [`Cpu::step`], plus
    /// [`CpuError::StepLimit`] when the budget runs out.
    pub fn run<H: Hooks>(
        &mut self,
        image: &mut BinaryImage,
        hooks: &mut H,
        max_steps: u64,
    ) -> Result<(), CpuError> {
        for _ in 0..max_steps {
            if !self.step(image, hooks)? {
                return Ok(());
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(CpuError::StepLimit)
        }
    }

    /// Arranges for a top-level `ret` to halt the CPU: pushes the null
    /// return-address sentinel. Call once before running a function body.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::StackFault`] if the stack is exhausted.
    pub fn push_halt_frame(&mut self) -> Result<(), CpuError> {
        self.push(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    /// Records syscall numbers; treats vsyscall calls as syscalls resolved
    /// from the table offset (nr = (offset - 8) / 8, mirroring the table
    /// layout used by xc-abom).
    struct Recorder {
        syscalls: Vec<u64>,
        uds: u32,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                syscalls: Vec::new(),
                uds: 0,
            }
        }
    }

    impl Hooks for Recorder {
        fn on_syscall(&mut self, cpu: &mut Cpu, _: &mut BinaryImage) -> Flow {
            self.syscalls.push(cpu.reg(Reg::Rax));
            Flow::Continue
        }
        fn on_vsyscall_call(&mut self, target: u64, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
            self.syscalls.push(target);
            Flow::Continue
        }
        fn on_invalid_opcode(&mut self, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
            self.uds += 1;
            Flow::Halt
        }
    }

    fn run_image(mut image: BinaryImage, entry: u64) -> (Recorder, Cpu) {
        let mut cpu = Cpu::new(entry);
        cpu.push_halt_frame().unwrap();
        let mut hooks = Recorder::new();
        cpu.run(&mut image, &mut hooks, 10_000).unwrap();
        (hooks, cpu)
    }

    #[test]
    fn linear_syscalls_record_numbers() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (hooks, cpu) = run_image(a.finish().unwrap(), 0x1000);
        assert_eq!(hooks.syscalls, vec![0, 1]);
        assert!(cpu.is_halted());
    }

    #[test]
    fn call_and_ret_nest() {
        let mut a = Assembler::new(0x1000);
        a.call_to("fn");
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 2,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("fn").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (hooks, _) = run_image(a.finish().unwrap(), 0x1000);
        assert_eq!(hooks.syscalls, vec![1, 2]);
    }

    #[test]
    fn conditional_branch_on_zero_flag() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::E, "taken");
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 99,
        });
        a.inst(Inst::Syscall); // skipped
        a.label("taken").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 7,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (hooks, _) = run_image(a.finish().unwrap(), 0x1000);
        assert_eq!(hooks.syscalls, vec![7]);
    }

    #[test]
    fn vsyscall_call_routes_to_hook() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0008,
        });
        a.inst(Inst::Ret);
        let (hooks, _) = run_image(a.finish().unwrap(), 0x1000);
        assert_eq!(hooks.syscalls, vec![0xffff_ffff_ff60_0008]);
    }

    #[test]
    fn stack_load_reads_pushed_args() {
        // Go-style: caller pushes the syscall number, wrapper loads it.
        let mut a = Assembler::new(0x1000);
        // [rsp+8] must hold 42 at wrapper entry; our harness pre-stores it.
        a.label("wrapper").unwrap();
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 8,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        // A Go caller pushes the syscall number, then the call pushes the
        // return address (here: the halt sentinel).
        cpu.push(42).unwrap();
        cpu.push_halt_frame().unwrap();
        let mut hooks = Recorder::new();
        cpu.run(&mut image, &mut hooks, 100).unwrap();
        assert_eq!(hooks.syscalls, vec![42]);
    }

    #[test]
    fn int3_reports_breakpoint() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::Int3);
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        let mut hooks = Recorder::new();
        assert_eq!(
            cpu.run(&mut image, &mut hooks, 10),
            Err(CpuError::Breakpoint { addr: 0x1000 })
        );
    }

    #[test]
    fn ud_routes_to_hook_and_halts() {
        let mut a = Assembler::new(0x1000);
        a.raw(&[0x60, 0xff]);
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        let mut hooks = Recorder::new();
        cpu.run(&mut image, &mut hooks, 10).unwrap();
        assert_eq!(hooks.uds, 1);
        assert!(cpu.is_halted());
    }

    #[test]
    fn unrepaired_ud_is_livelock_error() {
        struct BadHook;
        impl Hooks for BadHook {
            fn on_syscall(&mut self, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
                Flow::Continue
            }
            fn on_vsyscall_call(&mut self, _: u64, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
                Flow::Continue
            }
            fn on_invalid_opcode(&mut self, _: &mut Cpu, _: &mut BinaryImage) -> Flow {
                Flow::Continue // claims handled but repairs nothing
            }
        }
        let mut a = Assembler::new(0x1000);
        a.raw(&[0x60]);
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        assert_eq!(
            cpu.run(&mut image, &mut BadHook, 10),
            Err(CpuError::UnhandledFault { addr: 0x1000 })
        );
    }

    #[test]
    fn step_limit_enforced() {
        let mut a = Assembler::new(0x1000);
        a.label("spin").unwrap();
        a.jmp_short_to("spin");
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        let mut hooks = Recorder::new();
        assert_eq!(
            cpu.run(&mut image, &mut hooks, 50),
            Err(CpuError::StepLimit)
        );
        assert_eq!(cpu.steps(), 50);
    }

    #[test]
    fn fetch_outside_image_faults() {
        let a = Assembler::new(0x1000);
        let mut image = a.finish().unwrap();
        // Empty image: rip immediately outside.
        let mut cpu = Cpu::new(0x1000);
        let mut hooks = Recorder::new();
        assert_eq!(
            cpu.run(&mut image, &mut hooks, 10),
            Err(CpuError::FetchOutsideImage { addr: 0x1000 })
        );
    }

    #[test]
    fn stack_fault_on_underflow() {
        let mut cpu = Cpu::new(0x1000);
        // rsp at STACK_TOP: reading the return address underflows the range.
        assert!(cpu.pop().is_err());
    }

    #[test]
    fn reset_matches_fresh_cpu() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 7,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut image = a.finish().unwrap();

        // Dirty a reusable CPU: run once, pushing frames and setting regs.
        let mut reused = Cpu::new(0x1000);
        reused.push(42).unwrap();
        reused.push_halt_frame().unwrap();
        let mut hooks = Recorder::new();
        reused.run(&mut image, &mut hooks, 100).unwrap();
        assert!(reused.is_halted());

        // After reset, every observable equals a freshly built CPU's.
        reused.reset(0x1000);
        let fresh = Cpu::new(0x1000);
        assert_eq!(reused.rip(), fresh.rip());
        assert_eq!(reused.steps(), 0);
        assert!(!reused.is_halted());
        for r in [
            Reg::Rax,
            Reg::Rcx,
            Reg::Rdx,
            Reg::Rbx,
            Reg::Rsp,
            Reg::Rbp,
            Reg::Rsi,
            Reg::Rdi,
        ] {
            assert_eq!(reused.reg(r), fresh.reg(r), "{r:?}");
        }
        // The previously written stack slots read back zeroed again.
        for addr in [STACK_TOP - 8, STACK_TOP - 16] {
            assert_eq!(reused.read_stack_u64(addr).unwrap(), 0);
        }
        // And the reset CPU runs identically to a fresh one.
        let mut hooks2 = Recorder::new();
        reused.push_halt_frame().unwrap();
        reused.run(&mut image, &mut hooks2, 100).unwrap();
        assert_eq!(hooks2.syscalls, vec![7]);
    }

    #[test]
    fn leave_restores_frame() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::PushRbp);
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rbp,
            src: Reg::Rsp,
        });
        a.inst(Inst::SubRspImm8 { imm: 16 });
        a.inst(Inst::Leave);
        a.inst(Inst::Ret);
        let mut image = a.finish().unwrap();
        let mut cpu = Cpu::new(0x1000);
        cpu.push_halt_frame().unwrap();
        let rsp0 = cpu.reg(Reg::Rsp);
        let mut hooks = Recorder::new();
        cpu.run(&mut image, &mut hooks, 100).unwrap();
        assert!(cpu.is_halted());
        // Balanced: rsp returned above the halt frame.
        assert_eq!(cpu.reg(Reg::Rsp), rsp0 + 8);
    }
}
