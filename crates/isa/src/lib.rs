//! # xc-isa — an x86-64 instruction subset for the X-Containers reproduction
//!
//! The heart of the X-Containers paper (§4.4) is the **Automatic Binary
//! Optimization Module** (ABOM): an online binary patcher inside the
//! X-Kernel that rewrites `mov`+`syscall` pairs into indirect calls through
//! the vsyscall entry table. That mechanism is defined at the level of raw
//! x86-64 bytes — 5- and 7-byte `mov` encodings, the 2-byte `syscall`, the
//! 7-byte `call *disp32` whose tail bytes `60 ff` decode to an invalid
//! opcode, and the 2-byte backward `jmp` of the 9-byte two-phase patch.
//!
//! This crate implements exactly enough of x86-64 to reproduce that
//! mechanism faithfully:
//!
//! * [`inst`] — the instruction subset with byte-accurate encodings,
//! * [`decode`](mod@decode) — a decoder that reports *invalid-opcode* distinctly from
//!   *unknown* bytes (the #UD trap is part of ABOM's correctness story),
//! * [`asm`] — an assembler with labels for building synthetic binaries
//!   (glibc-style wrappers, Go-style wrappers, libpthread-style cancellable
//!   wrappers),
//! * [`image`] — loaded binary images with page protection, dirty tracking
//!   and the ≤ 8-byte atomic `cmpxchg` primitive ABOM patches through,
//! * [`cpu`] — a mini interpreter used to prove execution equivalence of
//!   patched/unpatched/mid-patch binaries.
//!
//! # Example
//!
//! ```
//! use xc_isa::inst::{Inst, Reg};
//! use xc_isa::decode::decode;
//!
//! // The glibc `__read` wrapper from Figure 2 of the paper:
//! let mut bytes = Vec::new();
//! Inst::MovImm32 { reg: Reg::Rax, imm: 0 }.encode_into(&mut bytes);
//! Inst::Syscall.encode_into(&mut bytes);
//! assert_eq!(bytes, [0xb8, 0, 0, 0, 0, 0x0f, 0x05]);
//!
//! let d = decode(&bytes).unwrap();
//! assert_eq!(d.inst, Inst::MovImm32 { reg: Reg::Rax, imm: 0 });
//! assert_eq!(d.len, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod image;
pub mod inst;

pub use asm::Assembler;
pub use cpu::{Cpu, Flow, Hooks};
pub use decode::{decode, DecodeError, Decoded};
pub use image::BinaryImage;
pub use inst::{BranchKind, Inst, Reg};
