//! The instruction subset and its byte-accurate encodings.
//!
//! Encodings follow the Intel SDM exactly for every instruction we model;
//! the ABOM patterns in `xc-abom` match on these raw bytes, so encoding
//! fidelity is what makes the reproduction byte-faithful to Figure 2 of the
//! paper.

use std::fmt;

/// General-purpose registers addressable in the low 3 bits of an opcode or
/// ModRM field (the `r32`/`r64` registers without a REX.B extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
}

impl Reg {
    /// All eight registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
    ];

    /// The 3-bit encoding of this register.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 3-bit register field.
    ///
    /// # Panics
    ///
    /// Panics if `code > 7`.
    pub fn from_code(code: u8) -> Reg {
        Reg::ALL[usize::from(code)]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
        };
        f.write_str(name)
    }
}

/// Condition codes for the `Jcc rel8` short conditional jumps we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    /// `je` / `jz` (opcode `74`)
    E,
    /// `jne` / `jnz` (opcode `75`)
    Ne,
}

impl Cond {
    const fn opcode(self) -> u8 {
        match self {
            Cond::E => 0x74,
            Cond::Ne => 0x75,
        }
    }
}

/// The modelled instruction subset.
///
/// Every variant encodes to the exact bytes an assembler would produce, and
/// the sizes the paper's Figure 2 relies on hold by construction:
/// [`Inst::MovImm32`] is 5 bytes, [`Inst::MovImm32SxR64`] is 7 bytes,
/// [`Inst::Syscall`] is 2 bytes, and [`Inst::CallAbsIndirect`] is 7 bytes
/// ending in `60 ff` for vsyscall-page targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `nop` — `90`.
    Nop,
    /// `ret` — `c3`.
    Ret,
    /// `leave` — `c9`.
    Leave,
    /// `int3` — `cc` (used as padding between functions, as linkers do).
    Int3,
    /// `ud2` — `0f 0b`.
    Ud2,
    /// `syscall` — `0f 05`.
    Syscall,
    /// `push rbp` — `55`.
    PushRbp,
    /// `pop rbp` — `5d`.
    PopRbp,
    /// `mov r32, imm32` — `b8+rd imm32` (5 bytes). Writing a 32-bit
    /// register zero-extends into the full 64-bit register.
    MovImm32 {
        /// Destination register.
        reg: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// `mov r64, imm32` (sign-extended) — `REX.W c7 /0 imm32` (7 bytes).
    MovImm32SxR64 {
        /// Destination register.
        reg: Reg,
        /// Immediate, sign-extended to 64 bits at execution.
        imm: i32,
    },
    /// `mov r32, [rsp+disp8]` — `8b /r` with SIB (4 bytes).
    LoadRspDisp8R32 {
        /// Destination register.
        reg: Reg,
        /// Unsigned byte displacement from `rsp`.
        disp: u8,
    },
    /// `mov r64, [rsp+disp8]` — `REX.W 8b /r` with SIB (5 bytes). This is
    /// the Go `syscall.Syscall` pattern from Figure 2.
    LoadRspDisp8R64 {
        /// Destination register.
        reg: Reg,
        /// Unsigned byte displacement from `rsp`.
        disp: u8,
    },
    /// `mov [rsp+disp8], r64` — `REX.W 89 /r` with SIB (5 bytes): the
    /// spill half of the Go `syscall.Syscall` argument-passing pattern.
    StoreRspDisp8R64 {
        /// Source register.
        reg: Reg,
        /// Unsigned byte displacement from `rsp`.
        disp: u8,
    },
    /// `mov r64, r64` — `REX.W 89 /r` (3 bytes).
    MovRegReg64 {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `call [disp32]` — `ff 14 25 disp32` (7 bytes): indirect call through
    /// an absolute 32-bit address, **sign-extended** to 64 bits. For
    /// vsyscall-page targets (`0xffffffffff600xxx`) the last two encoded
    /// bytes are always `60 ff`, which is what makes the
    /// jump-into-the-middle case decode to an invalid opcode (§4.4).
    CallAbsIndirect {
        /// The 64-bit effective target (must be sign-extendable from 32
        /// bits).
        target: u64,
    },
    /// `call rel32` — `e8 rel32` (5 bytes).
    CallRel32 {
        /// Relative displacement from the end of this instruction.
        rel: i32,
    },
    /// `jmp rel8` — `eb rel8` (2 bytes). The phase-2 form of the 9-byte
    /// replacement is `eb f7` (−9: back to the start of the 7-byte call).
    JmpRel8 {
        /// Relative displacement from the end of this instruction.
        rel: i8,
    },
    /// `jmp rel32` — `e9 rel32` (5 bytes).
    JmpRel32 {
        /// Relative displacement from the end of this instruction.
        rel: i32,
    },
    /// `jcc rel8` — `7x rel8` (2 bytes).
    JccRel8 {
        /// Condition.
        cond: Cond,
        /// Relative displacement from the end of this instruction.
        rel: i8,
    },
    /// `test eax, eax` — `85 c0`.
    TestEaxEax,
    /// `xor eax, eax` — `31 c0`: the idiomatic zeroing of `%rax`, how
    /// optimized code sets up syscall 0 (`read`). Not a pattern ABOM
    /// recognizes — a realistic source of unpatchable sites.
    XorEaxEax,
    /// `add rsp, imm8` — `48 83 c4 ib` (4 bytes).
    AddRspImm8 {
        /// Unsigned byte added to `rsp`.
        imm: u8,
    },
    /// `sub rsp, imm8` — `48 83 ec ib` (4 bytes).
    SubRspImm8 {
        /// Unsigned byte subtracted from `rsp`.
        imm: u8,
    },
}

impl Inst {
    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Inst::Nop | Inst::Ret | Inst::Leave | Inst::Int3 | Inst::PushRbp | Inst::PopRbp => 1,
            Inst::Ud2
            | Inst::Syscall
            | Inst::TestEaxEax
            | Inst::XorEaxEax
            | Inst::JmpRel8 { .. }
            | Inst::JccRel8 { .. } => 2,
            Inst::MovRegReg64 { .. } => 3,
            Inst::LoadRspDisp8R32 { .. } | Inst::AddRspImm8 { .. } | Inst::SubRspImm8 { .. } => 4,
            Inst::MovImm32 { .. }
            | Inst::LoadRspDisp8R64 { .. }
            | Inst::StoreRspDisp8R64 { .. }
            | Inst::CallRel32 { .. }
            | Inst::JmpRel32 { .. } => 5,
            Inst::MovImm32SxR64 { .. } | Inst::CallAbsIndirect { .. } => 7,
        }
    }

    /// Appends the encoding of this instruction to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a [`Inst::CallAbsIndirect`] target is not representable as
    /// a sign-extended 32-bit address (use [`Inst::is_encodable`] to check).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Inst::Nop => out.push(0x90),
            Inst::Ret => out.push(0xc3),
            Inst::Leave => out.push(0xc9),
            Inst::Int3 => out.push(0xcc),
            Inst::Ud2 => out.extend_from_slice(&[0x0f, 0x0b]),
            Inst::Syscall => out.extend_from_slice(&[0x0f, 0x05]),
            Inst::PushRbp => out.push(0x55),
            Inst::PopRbp => out.push(0x5d),
            Inst::MovImm32 { reg, imm } => {
                out.push(0xb8 + reg.code());
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::MovImm32SxR64 { reg, imm } => {
                out.push(0x48);
                out.push(0xc7);
                out.push(0xc0 + reg.code());
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::LoadRspDisp8R32 { reg, disp } => {
                out.push(0x8b);
                out.push(0x44 + (reg.code() << 3));
                out.push(0x24);
                out.push(disp);
            }
            Inst::LoadRspDisp8R64 { reg, disp } => {
                out.push(0x48);
                out.push(0x8b);
                out.push(0x44 + (reg.code() << 3));
                out.push(0x24);
                out.push(disp);
            }
            Inst::StoreRspDisp8R64 { reg, disp } => {
                out.push(0x48);
                out.push(0x89);
                out.push(0x44 + (reg.code() << 3));
                out.push(0x24);
                out.push(disp);
            }
            Inst::MovRegReg64 { dst, src } => {
                out.push(0x48);
                out.push(0x89);
                out.push(0xc0 + (src.code() << 3) + dst.code());
            }
            Inst::CallAbsIndirect { target } => {
                assert!(
                    Self::fits_sign_extended_32(target),
                    "call target {target:#x} not sign-extendable from 32 bits"
                );
                out.push(0xff);
                out.push(0x14);
                out.push(0x25);
                out.extend_from_slice(&(target as u32).to_le_bytes());
            }
            Inst::CallRel32 { rel } => {
                out.push(0xe8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::JmpRel8 { rel } => {
                out.push(0xeb);
                out.push(rel as u8);
            }
            Inst::JmpRel32 { rel } => {
                out.push(0xe9);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::JccRel8 { cond, rel } => {
                out.push(cond.opcode());
                out.push(rel as u8);
            }
            Inst::TestEaxEax => out.extend_from_slice(&[0x85, 0xc0]),
            Inst::XorEaxEax => out.extend_from_slice(&[0x31, 0xc0]),
            Inst::AddRspImm8 { imm } => out.extend_from_slice(&[0x48, 0x83, 0xc4, imm]),
            Inst::SubRspImm8 { imm } => out.extend_from_slice(&[0x48, 0x83, 0xec, imm]),
        }
    }

    /// Returns the encoding as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Whether this instruction can be encoded (only
    /// [`Inst::CallAbsIndirect`] can be unencodable).
    pub fn is_encodable(&self) -> bool {
        match *self {
            Inst::CallAbsIndirect { target } => Self::fits_sign_extended_32(target),
            _ => true,
        }
    }

    /// Whether `addr` survives a 32-bit truncate + sign-extend round trip.
    pub fn fits_sign_extended_32(addr: u64) -> bool {
        (addr as u32 as i32 as i64 as u64) == addr
    }

    /// Whether this instruction transfers control (ends a basic block).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Ret
                | Inst::CallAbsIndirect { .. }
                | Inst::CallRel32 { .. }
                | Inst::JmpRel8 { .. }
                | Inst::JmpRel32 { .. }
                | Inst::JccRel8 { .. }
        )
    }

    /// Control-flow classification for CFG construction (see
    /// [`BranchKind`]).
    pub fn branch_kind(&self) -> BranchKind {
        match self {
            Inst::JmpRel8 { .. } | Inst::JmpRel32 { .. } => BranchKind::DirectJump,
            Inst::JccRel8 { .. } => BranchKind::ConditionalJump,
            Inst::CallRel32 { .. } => BranchKind::DirectCall,
            Inst::CallAbsIndirect { .. } => BranchKind::IndirectCall,
            Inst::Ret => BranchKind::Return,
            Inst::Int3 | Inst::Ud2 => BranchKind::Trap,
            _ => BranchKind::None,
        }
    }

    /// The absolute direct-branch target, given that this instruction is
    /// located at `at`. `None` for everything that is not a direct
    /// relative jump, conditional jump, or call — including
    /// [`Inst::CallAbsIndirect`], whose destination is loaded from memory
    /// and therefore not a *static* control edge.
    pub fn branch_target(&self, at: u64) -> Option<u64> {
        let next = at.wrapping_add(self.encoded_len() as u64);
        match *self {
            Inst::JmpRel8 { rel } | Inst::JccRel8 { rel, .. } => {
                Some(next.wrapping_add(rel as i64 as u64))
            }
            Inst::JmpRel32 { rel } | Inst::CallRel32 { rel } => {
                Some(next.wrapping_add(rel as i64 as u64))
            }
            _ => None,
        }
    }

    /// Whether execution can continue at the next sequential instruction.
    /// False for unconditional jumps, returns, and traps (`int3`, `ud2`);
    /// true for calls, which resume at the return address.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Inst::Ret | Inst::JmpRel8 { .. } | Inst::JmpRel32 { .. } | Inst::Int3 | Inst::Ud2
        )
    }
}

/// How an instruction ends (or does not end) a basic block. Because the
/// modelled subset has no indirect *jumps* (only the indirect `call
/// [disp32]`, which returns to its fall-through), the direct targets
/// reported by [`Inst::branch_target`] form a **complete** set of
/// intra-image control-transfer destinations — the property `xc-verify`'s
/// interior-jump-target analysis rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Sequential instruction: execution continues at the next address.
    None,
    /// `jmp rel8`/`jmp rel32`: one direct successor, no fall-through.
    DirectJump,
    /// `jcc rel8`: direct target plus fall-through.
    ConditionalJump,
    /// `call rel32`: direct target; returns to the fall-through.
    DirectCall,
    /// `call [disp32]`: statically unresolvable destination (the
    /// conservative indirect-escape set); returns to the fall-through.
    IndirectCall,
    /// `ret`: escapes to the caller.
    Return,
    /// `int3`/`ud2`: raises a fault; execution does not continue.
    Trap,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Ret => write!(f, "ret"),
            Inst::Leave => write!(f, "leave"),
            Inst::Int3 => write!(f, "int3"),
            Inst::Ud2 => write!(f, "ud2"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::PushRbp => write!(f, "push %rbp"),
            Inst::PopRbp => write!(f, "pop %rbp"),
            Inst::MovImm32 { reg, imm } => write!(f, "mov ${imm:#x},%e{}", &reg.to_string()[1..]),
            Inst::MovImm32SxR64 { reg, imm } => write!(f, "mov ${imm:#x},%{reg}"),
            Inst::LoadRspDisp8R32 { reg, disp } => {
                write!(f, "mov {disp:#x}(%rsp),%e{}", &reg.to_string()[1..])
            }
            Inst::LoadRspDisp8R64 { reg, disp } => write!(f, "mov {disp:#x}(%rsp),%{reg}"),
            Inst::StoreRspDisp8R64 { reg, disp } => write!(f, "mov %{reg},{disp:#x}(%rsp)"),
            Inst::MovRegReg64 { dst, src } => write!(f, "mov %{src},%{dst}"),
            Inst::CallAbsIndirect { target } => write!(f, "callq *{target:#x}"),
            Inst::CallRel32 { rel } => write!(f, "call .{rel:+}"),
            Inst::JmpRel8 { rel } => write!(f, "jmp .{rel:+}"),
            Inst::JmpRel32 { rel } => write!(f, "jmp .{rel:+}"),
            Inst::JccRel8 { cond: Cond::E, rel } => write!(f, "je .{rel:+}"),
            Inst::JccRel8 {
                cond: Cond::Ne,
                rel,
            } => write!(f, "jne .{rel:+}"),
            Inst::TestEaxEax => write!(f, "test %eax,%eax"),
            Inst::XorEaxEax => write!(f, "xor %eax,%eax"),
            Inst::AddRspImm8 { imm } => write!(f, "add ${imm:#x},%rsp"),
            Inst::SubRspImm8 { imm } => write!(f, "sub ${imm:#x},%rsp"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_case1_bytes() {
        // 00000000000eb6a0 <__read>: b8 00 00 00 00 ; 0f 05
        let mut b = Vec::new();
        Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        }
        .encode_into(&mut b);
        Inst::Syscall.encode_into(&mut b);
        assert_eq!(b, [0xb8, 0x00, 0x00, 0x00, 0x00, 0x0f, 0x05]);
    }

    #[test]
    fn figure2_case1_replacement_bytes() {
        // callq *0xffffffffff600008 => ff 14 25 08 00 60 ff
        let b = Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0008,
        }
        .encode();
        assert_eq!(b, [0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff]);
        assert_eq!(b.len(), 7);
        // The last two bytes are the invalid-opcode tail the paper relies on.
        assert_eq!(&b[5..], [0x60, 0xff]);
    }

    #[test]
    fn figure2_9byte_bytes() {
        // 10330: 48 c7 c0 0f 00 00 00  mov $0xf,%rax ; 0f 05
        let mut b = Vec::new();
        Inst::MovImm32SxR64 {
            reg: Reg::Rax,
            imm: 0xf,
        }
        .encode_into(&mut b);
        Inst::Syscall.encode_into(&mut b);
        assert_eq!(b, [0x48, 0xc7, 0xc0, 0x0f, 0x00, 0x00, 0x00, 0x0f, 0x05]);
        // Phase-1 replacement: callq *0xffffffffff600080
        let call = Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0080,
        }
        .encode();
        assert_eq!(call, [0xff, 0x14, 0x25, 0x80, 0x00, 0x60, 0xff]);
        // Phase-2 tail: jmp back to the call start: eb f7 (-9).
        let jmp = Inst::JmpRel8 { rel: -9 }.encode();
        assert_eq!(jmp, [0xeb, 0xf7]);
    }

    #[test]
    fn figure2_case2_go_pattern_bytes() {
        // 7f41d: 48 8b 44 24 08  mov 0x8(%rsp),%rax ; 0f 05
        let mut b = Vec::new();
        Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 8,
        }
        .encode_into(&mut b);
        Inst::Syscall.encode_into(&mut b);
        assert_eq!(b, [0x48, 0x8b, 0x44, 0x24, 0x08, 0x0f, 0x05]);
        // Replacement: callq *0xffffffffff600c08
        let call = Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0c08,
        }
        .encode();
        assert_eq!(call, [0xff, 0x14, 0x25, 0x08, 0x0c, 0x60, 0xff]);
    }

    #[test]
    fn lengths_match_encodings() {
        let samples = [
            Inst::Nop,
            Inst::Ret,
            Inst::Leave,
            Inst::Int3,
            Inst::Ud2,
            Inst::Syscall,
            Inst::PushRbp,
            Inst::PopRbp,
            Inst::MovImm32 {
                reg: Reg::Rdi,
                imm: 42,
            },
            Inst::MovImm32SxR64 {
                reg: Reg::Rax,
                imm: -1,
            },
            Inst::LoadRspDisp8R32 {
                reg: Reg::Rax,
                disp: 16,
            },
            Inst::LoadRspDisp8R64 {
                reg: Reg::Rdx,
                disp: 8,
            },
            Inst::StoreRspDisp8R64 {
                reg: Reg::Rdi,
                disp: 8,
            },
            Inst::MovRegReg64 {
                dst: Reg::Rdi,
                src: Reg::Rax,
            },
            Inst::CallAbsIndirect {
                target: 0xffff_ffff_ff60_0008,
            },
            Inst::CallRel32 { rel: -1234 },
            Inst::JmpRel8 { rel: -9 },
            Inst::JmpRel32 { rel: 77777 },
            Inst::JccRel8 {
                cond: Cond::E,
                rel: 4,
            },
            Inst::JccRel8 {
                cond: Cond::Ne,
                rel: -4,
            },
            Inst::TestEaxEax,
            Inst::XorEaxEax,
            Inst::AddRspImm8 { imm: 24 },
            Inst::SubRspImm8 { imm: 24 },
        ];
        for inst in samples {
            assert_eq!(
                inst.encode().len(),
                inst.encoded_len(),
                "length mismatch for {inst}"
            );
        }
    }

    #[test]
    fn mov_reg_reg_modrm() {
        // mov %rax,%rdi => 48 89 c7
        let b = Inst::MovRegReg64 {
            dst: Reg::Rdi,
            src: Reg::Rax,
        }
        .encode();
        assert_eq!(b, [0x48, 0x89, 0xc7]);
    }

    #[test]
    fn store_rsp_disp8_bytes() {
        // mov %rdi,0x8(%rsp) => 48 89 7c 24 08
        let b = Inst::StoreRspDisp8R64 {
            reg: Reg::Rdi,
            disp: 8,
        }
        .encode();
        assert_eq!(b, [0x48, 0x89, 0x7c, 0x24, 0x08]);
    }

    #[test]
    fn sign_extension_checks() {
        assert!(Inst::fits_sign_extended_32(0xffff_ffff_ff60_0008));
        assert!(Inst::fits_sign_extended_32(0x7fff_ffff));
        assert!(!Inst::fits_sign_extended_32(0x1_0000_0000));
        assert!(!Inst::CallAbsIndirect {
            target: 0x1_0000_0000
        }
        .is_encodable());
    }

    #[test]
    #[should_panic(expected = "not sign-extendable")]
    fn unencodable_call_panics() {
        Inst::CallAbsIndirect {
            target: 0x1_0000_0000,
        }
        .encode();
    }

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Ret.is_control_flow());
        assert!(Inst::JmpRel8 { rel: 0 }.is_control_flow());
        assert!(!Inst::Syscall.is_control_flow());
        assert!(!Inst::Nop.is_control_flow());
    }

    #[test]
    fn branch_targets_resolve_relative_displacements() {
        // jmp rel8 at 0x1000: next = 0x1002, rel −9 → 0xff9.
        assert_eq!(Inst::JmpRel8 { rel: -9 }.branch_target(0x1000), Some(0xff9));
        // jcc rel8 forward.
        assert_eq!(
            Inst::JccRel8 {
                cond: Cond::E,
                rel: 4
            }
            .branch_target(0x1000),
            Some(0x1006)
        );
        // call rel32 / jmp rel32 are 5 bytes.
        assert_eq!(
            Inst::CallRel32 { rel: 11 }.branch_target(0x1000),
            Some(0x1010)
        );
        assert_eq!(
            Inst::JmpRel32 { rel: -5 }.branch_target(0x1000),
            Some(0x1000)
        );
        // Indirect call and non-branches have no static target.
        assert_eq!(
            Inst::CallAbsIndirect {
                target: 0xffff_ffff_ff60_0008
            }
            .branch_target(0x1000),
            None
        );
        assert_eq!(Inst::Syscall.branch_target(0x1000), None);
        assert_eq!(Inst::Ret.branch_target(0x1000), None);
    }

    #[test]
    fn branch_kinds_and_fallthrough() {
        assert_eq!(Inst::Nop.branch_kind(), BranchKind::None);
        assert_eq!(
            Inst::JmpRel32 { rel: 0 }.branch_kind(),
            BranchKind::DirectJump
        );
        assert_eq!(
            Inst::JccRel8 {
                cond: Cond::Ne,
                rel: 0
            }
            .branch_kind(),
            BranchKind::ConditionalJump
        );
        assert_eq!(
            Inst::CallRel32 { rel: 0 }.branch_kind(),
            BranchKind::DirectCall
        );
        assert_eq!(
            Inst::CallAbsIndirect {
                target: 0xffff_ffff_ff60_0008
            }
            .branch_kind(),
            BranchKind::IndirectCall
        );
        assert_eq!(Inst::Ret.branch_kind(), BranchKind::Return);
        assert_eq!(Inst::Int3.branch_kind(), BranchKind::Trap);
        assert_eq!(Inst::Ud2.branch_kind(), BranchKind::Trap);

        // Calls and conditional jumps fall through; jumps/returns/traps don't.
        assert!(Inst::CallRel32 { rel: 0 }.falls_through());
        assert!(Inst::JccRel8 {
            cond: Cond::E,
            rel: 0
        }
        .falls_through());
        assert!(Inst::Syscall.falls_through());
        assert!(!Inst::JmpRel8 { rel: 0 }.falls_through());
        assert!(!Inst::Ret.falls_through());
        assert!(!Inst::Int3.falls_through());
        assert!(!Inst::Ud2.falls_through());
    }

    #[test]
    fn reg_codes_roundtrip() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_code(reg.code()), reg);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Inst::Syscall.to_string(), "syscall");
        assert_eq!(
            Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 1
            }
            .to_string(),
            "mov $0x1,%eax"
        );
        assert_eq!(
            Inst::CallAbsIndirect {
                target: 0xffff_ffff_ff60_0008
            }
            .to_string(),
            "callq *0xffffffffff600008"
        );
    }
}
