//! Property-based tests for the ISA layer: codec round-trips, decoder
//! totality, assembler/disassembler agreement, and image memory invariants.

use proptest::prelude::*;
use xc_isa::decode::{decode, disassemble, DecodeError};
use xc_isa::image::{BinaryImage, PAGE_SIZE};
use xc_isa::inst::{Cond, Inst, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg::from_code)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![Just(Cond::E), Just(Cond::Ne)]
}

/// Any encodable instruction from the subset.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Ret),
        Just(Inst::Leave),
        Just(Inst::Int3),
        Just(Inst::Ud2),
        Just(Inst::Syscall),
        Just(Inst::PushRbp),
        Just(Inst::PopRbp),
        Just(Inst::TestEaxEax),
        Just(Inst::XorEaxEax),
        (arb_reg(), any::<u32>()).prop_map(|(reg, imm)| Inst::MovImm32 { reg, imm }),
        (arb_reg(), any::<i32>()).prop_map(|(reg, imm)| Inst::MovImm32SxR64 { reg, imm }),
        (arb_reg(), any::<u8>()).prop_map(|(reg, disp)| Inst::LoadRspDisp8R32 { reg, disp }),
        (arb_reg(), any::<u8>()).prop_map(|(reg, disp)| Inst::LoadRspDisp8R64 { reg, disp }),
        (arb_reg(), any::<u8>()).prop_map(|(reg, disp)| Inst::StoreRspDisp8R64 { reg, disp }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovRegReg64 { dst, src }),
        any::<i32>().prop_map(|v| Inst::CallAbsIndirect {
            target: v as i64 as u64
        }),
        any::<i32>().prop_map(|rel| Inst::CallRel32 { rel }),
        any::<i8>().prop_map(|rel| Inst::JmpRel8 { rel }),
        any::<i32>().prop_map(|rel| Inst::JmpRel32 { rel }),
        (arb_cond(), any::<i8>()).prop_map(|(cond, rel)| Inst::JccRel8 { cond, rel }),
        any::<u8>().prop_map(|imm| Inst::AddRspImm8 { imm }),
        any::<u8>().prop_map(|imm| Inst::SubRspImm8 { imm }),
    ]
}

proptest! {
    /// encode → decode is the identity on instruction and length.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = inst.encode();
        prop_assert_eq!(bytes.len(), inst.encoded_len());
        let d = decode(&bytes).unwrap();
        prop_assert_eq!(d.inst, inst);
        prop_assert_eq!(d.len, bytes.len());
    }

    /// The decoder is total: it never panics on arbitrary bytes, and any
    /// successful decode consumes at least one byte.
    #[test]
    fn decode_total_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        match decode(&bytes) {
            Ok(d) => prop_assert!(d.len >= 1 && d.len <= bytes.len()),
            Err(DecodeError::Truncated)
            | Err(DecodeError::InvalidOpcode(_))
            | Err(DecodeError::Unsupported(_)) => {}
        }
    }

    /// An assembled instruction stream disassembles back to the same
    /// sequence (offsets and instructions).
    #[test]
    fn stream_roundtrip(insts in proptest::collection::vec(arb_inst(), 0..64)) {
        let mut bytes = Vec::new();
        let mut expected = Vec::new();
        for inst in &insts {
            expected.push((bytes.len(), *inst));
            inst.encode_into(&mut bytes);
        }
        let (got, err) = disassemble(&bytes);
        prop_assert!(err.is_none(), "unexpected error: {err:?}");
        prop_assert_eq!(got, expected);
    }

    /// disassemble always terminates and never reads past the buffer:
    /// offsets are strictly increasing and within bounds.
    #[test]
    fn disassemble_terminates(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (insts, err) = disassemble(&bytes);
        let mut prev: Option<usize> = None;
        for (off, _) in &insts {
            prop_assert!(*off < bytes.len());
            if let Some(p) = prev {
                prop_assert!(*off > p);
            }
            prev = Some(*off);
        }
        if let Some((off, _)) = err {
            prop_assert!(off <= bytes.len());
        }
    }

    /// cmpxchg either fully applies or leaves memory byte-identical.
    #[test]
    fn cmpxchg_atomicity(
        offset in 0u64..(2 * PAGE_SIZE - 8),
        old in proptest::collection::vec(any::<u8>(), 1..=8),
        new_fill in any::<u8>(),
        matches in any::<bool>(),
    ) {
        let base = 0x40_0000u64;
        let mut img = BinaryImage::new(base, vec![0xaa; 2 * PAGE_SIZE as usize]);
        let addr = base + offset;
        let expected: Vec<u8> = if matches {
            vec![0xaa; old.len()]
        } else {
            // Ensure at least one byte differs from the actual contents.
            let mut v = old.clone();
            v[0] = 0xbb;
            v
        };
        let new = vec![new_fill; old.len()];
        let before = img.read_bytes(base, img.len()).unwrap().to_vec();
        let result = img.cmpxchg(addr, &expected, &new, true);
        let after = img.read_bytes(base, img.len()).unwrap().to_vec();
        if result.is_ok() {
            prop_assert_eq!(&after[offset as usize..offset as usize + new.len()], &new[..]);
        } else {
            prop_assert_eq!(before, after, "failed cmpxchg must not modify memory");
        }
    }

    /// Page protection is enforced for plain writes at every offset.
    #[test]
    fn protected_pages_reject_writes(offset in 0u64..PAGE_SIZE) {
        let base = 0x1000u64;
        let mut img = BinaryImage::new(base, vec![0; PAGE_SIZE as usize]);
        img.protect_all(false);
        prop_assert!(img.write(base + offset, &[1]).is_err());
        prop_assert_eq!(img.dirty_pages(), 0);
    }
}
