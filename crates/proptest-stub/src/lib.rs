//! # xc-proptest-stub — an offline, generate-only subset of `proptest`
//!
//! The workspace's property tests were written against the real
//! [proptest](https://crates.io/crates/proptest) crate, which cannot be
//! fetched in registry-less environments. This crate implements exactly
//! the slice of proptest's API those tests use — [`Strategy`],
//! [`strategy::Just`], [`arbitrary::any`], range/tuple/vec/regex
//! strategies, [`strategy::Union`] (for `prop_oneof!`) and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros — on top of
//! a deterministic per-test PRNG.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the assertion message and panics; it does not search for a minimal
//!   counterexample.
//! - **Deterministic.** The PRNG is seeded from the test function name,
//!   so every run explores the same cases. There is no failure
//!   persistence file.
//! - **Generate-only `Strategy`.** `Strategy::Value` is the final value
//!   type (no `ValueTree` indirection).
//!
//! The workspace `Cargo.toml` renames this package to `proptest`, so
//! test code (`use proptest::prelude::*;`) is unchanged and can be
//! pointed back at the real crate when a registry is available.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, PRNG, and case-failure plumbing.

    /// Mirror of `proptest::test_runner::Config` — only `cases` matters.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than real proptest's 256: these tests exercise
            // whole simulated binaries per case, and determinism means
            // extra cases add less value than they do under proptest.
            Config { cases: 64 }
        }
    }

    /// A failed property case (maps to an early `Err` return from the
    /// generated test body).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Wrap an assertion message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 PRNG, seeded from the test name so each
    /// property explores a stable but distinct stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Alias matching `proptest::test_runner::Config`'s conventional
/// re-export name.
pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    //! The generate-only [`Strategy`] trait and combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (result of [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&str` patterns are strategies for matching strings. Only the
    /// subset `[c1-c2c3-c4...]{m,n}` (character-class with repetition)
    /// is supported — enough for the workspace's label generators.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[a-zXY]{m,n}` into (alphabet, m, n). Returns `None` for
    /// anything fancier.
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class_src, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let counts = rest.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        let mut class = Vec::new();
        let chars: Vec<char> = class_src.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        (!class.is_empty() && min <= max).then_some((class, min, max))
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary {
        /// Draw one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    macro_rules! arbitrary_tuples {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }

    arbitrary_tuples! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec` — vectors of generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: exact, `a..b`, or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)` — a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests. Supports the
/// `#![proptest_config(...)]` inner attribute and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the harness can report which case died.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a = TestRng::for_test("x").next_u64();
        let b = TestRng::for_test("x").next_u64();
        let c = TestRng::for_test("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = crate::collection::vec((any::<u8>(), 1u64..4), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (_, n) in v {
                assert!((1..4).contains(&n));
            }
        }
    }

    #[test]
    fn regex_subset_strategy_generates_matching_strings() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself: args bind, asserts pass.
        #[test]
        fn macro_smoke(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b, "b is {b}");
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "got: {msg}");
    }
}
