//! Network stack path model.
//!
//! Every networked experiment in the paper funnels through one of three
//! data paths:
//!
//! * **native bridge** — Docker's veth + bridge + iptables port
//!   forwarding on the host kernel (§5.3: "the servers were exposed to
//!   clients via port forwarding in iptables"),
//! * **split driver** — netfront in the guest, netback in the driver
//!   domain, grant copies in between (Xen-Containers and X-Containers),
//!   optionally nested through Xen-Blanket in public clouds,
//! * **kernel forward** — IPVS-style in-kernel forwarding without a
//!   user-space socket round trip (Figure 9's NAT and direct-routing
//!   modes).
//!
//! The model composes the per-message kernel cost of a send or receive
//! from segments, kernel entries, copies, and path-specific extras.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::blanket::XenBlanket;

use crate::backend::Backend;
use crate::config::KernelConfig;

/// TCP maximum segment size used for segmentation (standard Ethernet).
pub const MSS: u64 = 1448;

/// Which data path packets traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPath {
    /// Host kernel with veth/bridge hop and `iptables` NAT rules.
    NativeBridge {
        /// NAT rule sets traversed per packet.
        iptables_rules: u32,
    },
    /// Xen split driver (front-end/back-end with grant copies), plus the
    /// same iptables forwarding in the driver domain.
    SplitDriver {
        /// Blanket nesting (cloud deployments).
        blanket: XenBlanket,
        /// NAT rule sets traversed per packet.
        iptables_rules: u32,
    },
    /// In-kernel forwarding (IPVS): packets never reach user space.
    KernelForward {
        /// Whether responses also traverse this hop (NAT mode) or bypass
        /// it (direct routing).
        responses_return: bool,
    },
}

/// A configured network stack endpoint.
#[derive(Debug, Clone)]
pub struct NetStack {
    backend: Backend,
    config: KernelConfig,
    path: NetPath,
    entry_surcharge: Nanos,
}

impl NetStack {
    /// Creates a stack for the given deployment.
    pub fn new(backend: Backend, config: KernelConfig, path: NetPath) -> Self {
        NetStack {
            backend,
            config,
            path,
            entry_surcharge: Nanos::ZERO,
        }
    }

    /// Adds a per-kernel-entry surcharge on top of the backend's entry
    /// cost — nested VM exits for Clear Containers, ptrace stops for
    /// gVisor's sentry.
    pub fn with_entry_surcharge(mut self, surcharge: Nanos) -> Self {
        self.entry_surcharge = surcharge;
        self
    }

    /// The configured path.
    pub fn path(&self) -> NetPath {
        self.path
    }

    /// Number of MSS segments for a payload.
    pub fn segments(bytes: u64) -> u64 {
        bytes.div_ceil(MSS).max(1)
    }

    fn per_segment_path_extra(&self, costs: &CostModel) -> Nanos {
        match self.path {
            NetPath::NativeBridge { iptables_rules } => {
                costs.bridge_hop + costs.iptables_nat * u64::from(iptables_rules)
            }
            NetPath::SplitDriver {
                blanket,
                iptables_rules,
            } => {
                // Grant copy of the segment + ring notify amortized over a
                // batch of ~8 segments + iptables in the driver domain.
                costs.grant_copy_bytes(MSS)
                    + costs.ring_notify / 8
                    + costs.iptables_nat * u64::from(iptables_rules)
                    + blanket.io_batch_overhead(costs, 2) / 8
            }
            NetPath::KernelForward { .. } => costs.iptables_nat,
        }
    }

    /// Kernel-side cost of sending `bytes` from user space: copy out,
    /// TCP/IP processing per segment, path extras, NIC handoff. Syscall
    /// dispatch is charged separately by the caller.
    pub fn send_cost(&self, costs: &CostModel, bytes: u64) -> Nanos {
        let segments = Self::segments(bytes);
        // Kernel tuning (§3.2) trims protocol work, not grant copies or
        // NAT traversal.
        let tcp = (costs.tcp_segment * segments).scale(self.config.kernel_work_factor());
        let extras = self.per_segment_path_extra(costs) * segments;
        // One kernel entry per send call (TX doorbell/kick).
        costs.copy_bytes(bytes)
            + tcp
            + extras
            + self.entry_surcharge
            + costs.nic_per_kb * bytes.div_ceil(1024)
    }

    /// Kernel-side cost of receiving `bytes`: interrupt/event entries
    /// (one per ~4 segments with NAPI-style batching), TCP/IP processing,
    /// path extras, copy to user space.
    pub fn recv_cost(&self, costs: &CostModel, bytes: u64) -> Nanos {
        let segments = Self::segments(bytes);
        let entries = segments.div_ceil(4);
        let tcp = (costs.tcp_segment * segments).scale(self.config.kernel_work_factor());
        let extras = self.per_segment_path_extra(costs) * segments;
        (self.backend.event_entry_cost(costs, &self.config) + self.entry_surcharge) * entries
            + tcp
            + extras
            + costs.copy_bytes(bytes)
    }

    /// Cost for this node to *forward* a message of `bytes` in-kernel
    /// (IPVS). For user-space proxies use a recv + send pair instead.
    pub fn forward_cost(&self, costs: &CostModel, bytes: u64) -> Nanos {
        let segments = Self::segments(bytes);
        let entries = segments.div_ceil(4);
        // No copies to user space: rewrite headers and retransmit.
        self.backend.event_entry_cost(costs, &self.config) * entries
            + (costs.tcp_segment / 2 + costs.iptables_nat) * segments
    }

    /// One-way wire latency to a peer in the same zone.
    pub fn wire_latency(&self, costs: &CostModel) -> Nanos {
        costs.wire_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks() -> (NetStack, NetStack, CostModel) {
        let costs = CostModel::skylake_cloud();
        let docker = NetStack::new(
            Backend::Native,
            KernelConfig::docker_default(),
            NetPath::NativeBridge { iptables_rules: 1 },
        );
        let xc = NetStack::new(
            Backend::XKernel,
            KernelConfig::xlibos_default(),
            NetPath::SplitDriver {
                blanket: XenBlanket::cloud(),
                iptables_rules: 1,
            },
        );
        (docker, xc, costs)
    }

    #[test]
    fn segmentation() {
        assert_eq!(NetStack::segments(0), 1);
        assert_eq!(NetStack::segments(MSS), 1);
        assert_eq!(NetStack::segments(MSS + 1), 2);
        assert_eq!(NetStack::segments(10 * MSS), 10);
    }

    #[test]
    fn costs_scale_with_size() {
        let (docker, _, costs) = stacks();
        let small = docker.send_cost(&costs, 512);
        let large = docker.send_cost(&costs, 64 * 1024);
        assert!(large > small * 10);
    }

    #[test]
    fn split_driver_path_costs_more_than_native_path() {
        // Pure data-path comparison (identical kernel config): the split
        // driver pays grant copies that native doesn't — why iperf shows
        // no X-Container win (Figure 5).
        let costs = CostModel::skylake_cloud();
        let cfg = KernelConfig::docker_unpatched();
        let native = NetStack::new(
            Backend::Native,
            cfg.clone(),
            NetPath::NativeBridge { iptables_rules: 1 },
        );
        let xc = NetStack::new(
            Backend::XKernel,
            cfg,
            NetPath::SplitDriver {
                blanket: XenBlanket::cloud(),
                iptables_rules: 1,
            },
        );
        assert!(xc.send_cost(&costs, 16 * 1024) > native.send_cost(&costs, 16 * 1024));
    }

    #[test]
    fn kpti_taxes_native_receive_path() {
        let costs = CostModel::skylake_cloud();
        let patched = NetStack::new(
            Backend::Native,
            KernelConfig::docker_default(),
            NetPath::NativeBridge { iptables_rules: 1 },
        );
        let unpatched = NetStack::new(
            Backend::Native,
            KernelConfig::docker_unpatched(),
            NetPath::NativeBridge { iptables_rules: 1 },
        );
        assert!(patched.recv_cost(&costs, 8 * 1024) > unpatched.recv_cost(&costs, 8 * 1024));
    }

    #[test]
    fn kernel_forward_cheaper_than_proxy_round_trip() {
        // Figure 9: IPVS beats HAProxy because forwarding skips user space.
        let (_, xc, costs) = stacks();
        let fwd = NetStack::new(
            Backend::XKernel,
            KernelConfig::xlibos_default(),
            NetPath::KernelForward {
                responses_return: true,
            },
        );
        let proxy_cost = xc.recv_cost(&costs, 4096) + xc.send_cost(&costs, 4096);
        let forward_cost = fwd.forward_cost(&costs, 4096);
        assert!(forward_cost < proxy_cost / 2);
    }

    #[test]
    fn iptables_rules_add_up() {
        let costs = CostModel::skylake_cloud();
        let none = NetStack::new(
            Backend::Native,
            KernelConfig::docker_unpatched(),
            NetPath::NativeBridge { iptables_rules: 0 },
        );
        let many = NetStack::new(
            Backend::Native,
            KernelConfig::docker_unpatched(),
            NetPath::NativeBridge { iptables_rules: 8 },
        );
        assert!(many.send_cost(&costs, 4096) > none.send_cost(&costs, 4096));
    }
}
