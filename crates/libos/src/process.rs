//! Processes and threads.
//!
//! §2.1: processes inside an X-Container are "used for concurrency, while
//! X-Containers provide isolation between containers" — but they keep
//! their own address spaces "for resource management and compatibility".
//! The process table models fork/exec/exit with address-space bookkeeping
//! through the hypervisor layer and cost accounting through
//! [`Backend`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::domain::DomainId;
use xc_xen::pgtable::{AddressSpaceId, PageTables};

use crate::backend::Backend;
use crate::config::KernelConfig;

/// Process identifier within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Process management errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// Unknown pid.
    NoSuchProcess(Pid),
    /// The hypervisor refused an address-space operation.
    Hypervisor(xc_xen::XenError),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            ProcessError::Hypervisor(e) => write!(f, "hypervisor rejected operation: {e}"),
        }
    }
}

impl Error for ProcessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProcessError::Hypervisor(e) => Some(e),
            ProcessError::NoSuchProcess(_) => None,
        }
    }
}

impl From<xc_xen::XenError> for ProcessError {
    fn from(e: xc_xen::XenError) -> Self {
        ProcessError::Hypervisor(e)
    }
}

/// One process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    pid: Pid,
    parent: Option<Pid>,
    space: AddressSpaceId,
    resident_pages: u64,
    threads: u32,
    name: String,
}

impl Process {
    /// Process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Parent pid, if any.
    pub fn parent(&self) -> Option<Pid> {
        self.parent
    }

    /// The process's address space.
    pub fn space(&self) -> AddressSpaceId {
        self.space
    }

    /// Resident pages (drives fork cost).
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Thread count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Command name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The kernel's process table, parameterized by deployment [`Backend`].
///
/// # Example
///
/// ```
/// use xc_libos::backend::Backend;
/// use xc_libos::process::ProcessTable;
/// use xc_xen::domain::DomainId;
/// use xc_xen::pgtable::PageTables;
/// use xc_sim::cost::CostModel;
///
/// let costs = CostModel::skylake_cloud();
/// let mut pt = PageTables::new();
/// let mut procs = ProcessTable::new(Backend::XKernel, DomainId(1));
/// let (init, _) = procs.spawn_init("nginx", 1500, &mut pt, &costs)?;
/// let (worker, cost) = procs.fork(init, &mut pt, &costs)?;
/// assert_ne!(worker, init);
/// assert!(cost.as_nanos() > 0);
/// # Ok::<(), xc_libos::process::ProcessError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProcessTable {
    backend: Backend,
    domain: DomainId,
    next_pid: u32,
    processes: BTreeMap<Pid, Process>,
    total_forks: u64,
    total_execs: u64,
}

impl ProcessTable {
    /// Creates an empty table for a kernel of `domain` on `backend`.
    pub fn new(backend: Backend, domain: DomainId) -> Self {
        ProcessTable {
            backend,
            domain,
            next_pid: 1,
            processes: BTreeMap::new(),
            total_forks: 0,
            total_execs: 0,
        }
    }

    /// The deployment backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Creates the initial process (the container's entry point), with its
    /// address space registered in the hypervisor page tables. Returns the
    /// pid and the setup cost.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor rejections.
    pub fn spawn_init(
        &mut self,
        name: &str,
        resident_pages: u64,
        pt: &mut PageTables,
        costs: &CostModel,
    ) -> Result<(Pid, Nanos), ProcessError> {
        let space = pt.create_space(self.domain)?;
        let pid = self.alloc_pid();
        self.processes.insert(
            pid,
            Process {
                pid,
                parent: None,
                space,
                resident_pages,
                threads: 1,
                name: name.to_owned(),
            },
        );
        // Setup cost ≈ mapping the image.
        let cost = self.backend.fork_cost(costs, resident_pages);
        Ok((pid, cost))
    }

    /// Forks `parent`, returning the child pid and the fork cost.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoSuchProcess`] or hypervisor rejections.
    pub fn fork(
        &mut self,
        parent: Pid,
        pt: &mut PageTables,
        costs: &CostModel,
    ) -> Result<(Pid, Nanos), ProcessError> {
        let (pages, name) = {
            let p = self.get(parent)?;
            (p.resident_pages, p.name.clone())
        };
        let space = pt.create_space(self.domain)?;
        let pid = self.alloc_pid();
        self.processes.insert(
            pid,
            Process {
                pid,
                parent: Some(parent),
                space,
                resident_pages: pages,
                threads: 1,
                name,
            },
        );
        self.total_forks += 1;
        Ok((pid, self.backend.fork_cost(costs, pages)))
    }

    /// Replaces `pid`'s image (`execve`), returning the cost.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoSuchProcess`] for unknown pids.
    #[allow(clippy::too_many_arguments)] // mirrors execve's own arity
    pub fn exec(
        &mut self,
        pid: Pid,
        name: &str,
        image_pages: u64,
        loader_syscalls: u64,
        config: &KernelConfig,
        costs: &CostModel,
        optimized: bool,
    ) -> Result<Nanos, ProcessError> {
        let backend = self.backend;
        let p = self.get_mut(pid)?;
        p.name = name.to_owned();
        p.resident_pages = image_pages;
        p.threads = 1;
        self.total_execs += 1;
        Ok(backend.exec_cost(costs, config, image_pages, loader_syscalls, optimized))
    }

    /// Terminates a process, destroying its address space. Returns the
    /// teardown cost.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoSuchProcess`] or hypervisor rejections.
    pub fn exit(
        &mut self,
        pid: Pid,
        pt: &mut PageTables,
        costs: &CostModel,
    ) -> Result<Nanos, ProcessError> {
        let p = self
            .processes
            .remove(&pid)
            .ok_or(ProcessError::NoSuchProcess(pid))?;
        pt.destroy_space(p.space)?;
        Ok(costs.process_teardown)
    }

    /// Adds a thread to a process (worker-thread model, §2.2).
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoSuchProcess`] for unknown pids.
    pub fn add_thread(&mut self, pid: Pid) -> Result<u32, ProcessError> {
        let p = self.get_mut(pid)?;
        p.threads += 1;
        Ok(p.threads)
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoSuchProcess`] for unknown pids.
    pub fn get(&self, pid: Pid) -> Result<&Process, ProcessError> {
        self.processes
            .get(&pid)
            .ok_or(ProcessError::NoSuchProcess(pid))
    }

    fn get_mut(&mut self, pid: Pid) -> Result<&mut Process, ProcessError> {
        self.processes
            .get_mut(&pid)
            .ok_or(ProcessError::NoSuchProcess(pid))
    }

    /// Live process count.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Total runnable tasks if every thread is runnable (scheduler input).
    pub fn total_threads(&self) -> u64 {
        self.processes.values().map(|p| u64::from(p.threads)).sum()
    }

    /// Forks performed since creation.
    pub fn total_forks(&self) -> u64 {
        self.total_forks
    }

    /// Execs performed since creation.
    pub fn total_execs(&self) -> u64 {
        self.total_execs
    }

    fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProcessTable, PageTables, CostModel) {
        (
            ProcessTable::new(Backend::XKernel, DomainId(1)),
            PageTables::new(),
            CostModel::skylake_cloud(),
        )
    }

    #[test]
    fn init_fork_exit_lifecycle() {
        let (mut procs, mut pt, costs) = setup();
        let (init, _) = procs.spawn_init("redis", 2000, &mut pt, &costs).unwrap();
        let (child, fork_cost) = procs.fork(init, &mut pt, &costs).unwrap();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs.get(child).unwrap().parent(), Some(init));
        assert_eq!(procs.get(child).unwrap().resident_pages(), 2000);
        assert!(fork_cost > Nanos::ZERO);
        assert_eq!(pt.space_count(), 2);

        let teardown = procs.exit(child, &mut pt, &costs).unwrap();
        assert_eq!(teardown, costs.process_teardown);
        assert_eq!(procs.len(), 1);
        assert_eq!(pt.space_count(), 1);
        assert!(procs.get(child).is_err());
    }

    #[test]
    fn exec_replaces_image() {
        let (mut procs, mut pt, costs) = setup();
        let (init, _) = procs.spawn_init("sh", 200, &mut pt, &costs).unwrap();
        let cfg = KernelConfig::xlibos_default();
        let cost = procs
            .exec(init, "nginx", 1500, 150, &cfg, &costs, true)
            .unwrap();
        assert!(cost > Nanos::ZERO);
        let p = procs.get(init).unwrap();
        assert_eq!(p.name(), "nginx");
        assert_eq!(p.resident_pages(), 1500);
        assert_eq!(procs.total_execs(), 1);
    }

    #[test]
    fn threads_accumulate() {
        let (mut procs, mut pt, costs) = setup();
        let (init, _) = procs.spawn_init("memcached", 800, &mut pt, &costs).unwrap();
        for _ in 0..3 {
            procs.add_thread(init).unwrap();
        }
        assert_eq!(procs.get(init).unwrap().threads(), 4);
        assert_eq!(procs.total_threads(), 4);
    }

    #[test]
    fn fork_cost_reflects_backend() {
        let costs = CostModel::skylake_cloud();
        let mut pt_a = PageTables::new();
        let mut pt_b = PageTables::new();
        let mut native = ProcessTable::new(Backend::Native, DomainId(0));
        let mut xk = ProcessTable::new(Backend::XKernel, DomainId(1));
        let (ni, _) = native.spawn_init("a", 2000, &mut pt_a, &costs).unwrap();
        let (xi, _) = xk.spawn_init("a", 2000, &mut pt_b, &costs).unwrap();
        let (_, nc) = native.fork(ni, &mut pt_a, &costs).unwrap();
        let (_, xc) = xk.fork(xi, &mut pt_b, &costs).unwrap();
        assert!(xc > nc, "hypervisor-validated fork must cost more");
    }

    #[test]
    fn unknown_pid_errors() {
        let (mut procs, mut pt, costs) = setup();
        let ghost = Pid(99);
        assert!(matches!(
            procs.fork(ghost, &mut pt, &costs),
            Err(ProcessError::NoSuchProcess(_))
        ));
        assert!(matches!(
            procs.exit(ghost, &mut pt, &costs),
            Err(ProcessError::NoSuchProcess(_))
        ));
        assert!(matches!(
            procs.add_thread(ghost),
            Err(ProcessError::NoSuchProcess(_))
        ));
    }

    #[test]
    fn pids_monotonic() {
        let (mut procs, mut pt, costs) = setup();
        let (a, _) = procs.spawn_init("a", 10, &mut pt, &costs).unwrap();
        let (b, _) = procs.fork(a, &mut pt, &costs).unwrap();
        let (c, _) = procs.fork(a, &mut pt, &costs).unwrap();
        assert!(a < b && b < c);
        assert_eq!(procs.total_forks(), 2);
    }
}
