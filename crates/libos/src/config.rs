//! Kernel configuration.
//!
//! §3.2: "a customized Linux kernel can be very small and highly
//! optimized … Turning the Linux kernel into a LibOS and dedicating it to
//! a single application can unlock its full potential." The knobs modelled
//! here are the ones the evaluation actually exercises: the Meltdown/KPTI
//! patch (§5.1's patched/unpatched configurations), SMP (disabling it
//! removes locking/TLB-shootdown overhead for single-threaded apps), and
//! loadable kernel modules (IPVS in §5.7).

use std::collections::BTreeSet;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Loadable kernel modules that experiments insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelModule {
    /// IP Virtual Server — kernel-level load balancing (Figure 9).
    Ipvs,
    /// Soft-iWARP software RDMA (§5.7 mentions Soft-iwarp support).
    SoftIwarp,
    /// Soft-RoCE software RDMA.
    SoftRoce,
}

/// A guest kernel configuration.
///
/// # Example
///
/// ```
/// use xc_libos::config::{KernelConfig, KernelModule};
///
/// let mut cfg = KernelConfig::xlibos_default();
/// assert!(!cfg.kpti); // no user/kernel boundary left to harden
/// cfg.load_module(KernelModule::Ipvs);
/// assert!(cfg.has_module(KernelModule::Ipvs));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Symmetric multi-processing support. Disabling it for
    /// single-threaded apps removes locking and TLB shoot-downs (§3.2).
    pub smp: bool,
    /// The Meltdown/KPTI page-table-isolation patch is applied to this
    /// kernel. Cloud providers enable it by default (§5.1).
    pub kpti: bool,
    /// Kernel dedicated to a single application (LibOS mode): scheduler
    /// and locking tuned for one workload.
    pub dedicated: bool,
    /// Number of vCPUs this kernel believes it has.
    pub vcpus: u32,
    modules: BTreeSet<KernelModule>,
}

impl KernelConfig {
    /// The stock cloud host kernel under Docker: SMP, KPTI patched,
    /// shared among all containers.
    pub fn docker_default() -> Self {
        KernelConfig {
            smp: true,
            kpti: true,
            dedicated: false,
            vcpus: 8,
            modules: BTreeSet::new(),
        }
    }

    /// The same kernel with the Meltdown patch reverted (the `-unpatched`
    /// configurations of §5.1).
    pub fn docker_unpatched() -> Self {
        KernelConfig {
            kpti: false,
            ..KernelConfig::docker_default()
        }
    }

    /// Guest kernel inside a Xen-Container (unmodified Linux 4.4 PV).
    pub fn pv_guest_default() -> Self {
        KernelConfig {
            smp: true,
            kpti: true,
            dedicated: false,
            vcpus: 1,
            modules: BTreeSet::new(),
        }
    }

    /// X-LibOS: dedicated, KPTI off (there is no kernel/user isolation
    /// boundary left to protect inside the container — isolation is the
    /// X-Kernel's job, which carries its own patch).
    pub fn xlibos_default() -> Self {
        KernelConfig {
            smp: true,
            kpti: false,
            dedicated: true,
            vcpus: 1,
            modules: BTreeSet::new(),
        }
    }

    /// X-LibOS trimmed for a single-threaded event-driven app: SMP off
    /// (the §3.2 example of kernel customization).
    pub fn xlibos_uniprocessor() -> Self {
        KernelConfig {
            smp: false,
            ..KernelConfig::xlibos_default()
        }
    }

    /// Loads a kernel module (requires no root-in-host under X-Containers,
    /// unlike Docker — the point of §5.7).
    pub fn load_module(&mut self, module: KernelModule) -> &mut Self {
        self.modules.insert(module);
        self
    }

    /// Whether a module is loaded.
    pub fn has_module(&self, module: KernelModule) -> bool {
        self.modules.contains(&module)
    }

    /// Extra cost per hardware kernel entry/exit pair from the KPTI patch
    /// (zero when unpatched).
    pub fn kpti_tax(&self, costs: &CostModel) -> Nanos {
        if self.kpti {
            costs.kpti_trap_extra
        } else {
            Nanos::ZERO
        }
    }

    /// Multiplier on in-kernel work from SMP locking overhead: a
    /// uniprocessor build skips atomics/barriers worth a few percent
    /// (§3.2's "eliminate unnecessary locking").
    pub fn smp_factor(&self) -> f64 {
        if self.smp {
            1.0
        } else {
            0.93
        }
    }

    /// Multiplier on in-kernel work from dedicated tuning (scheduler and
    /// sysctl knobs matched to a single application, §3.2).
    pub fn dedication_factor(&self) -> f64 {
        if self.dedicated {
            0.96
        } else {
            1.0
        }
    }

    /// Combined multiplier applied to kernel-path work.
    pub fn kernel_work_factor(&self) -> f64 {
        self.smp_factor() * self.dedication_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_setup() {
        assert!(KernelConfig::docker_default().kpti);
        assert!(!KernelConfig::docker_unpatched().kpti);
        assert!(!KernelConfig::xlibos_default().kpti);
        assert!(KernelConfig::xlibos_default().dedicated);
        assert!(!KernelConfig::xlibos_uniprocessor().smp);
    }

    #[test]
    fn kpti_tax_follows_flag() {
        let costs = CostModel::skylake_cloud();
        assert_eq!(
            KernelConfig::docker_default().kpti_tax(&costs),
            costs.kpti_trap_extra
        );
        assert_eq!(
            KernelConfig::docker_unpatched().kpti_tax(&costs),
            Nanos::ZERO
        );
    }

    #[test]
    fn factors_bounded_and_ordered() {
        let stock = KernelConfig::docker_default();
        let tuned = KernelConfig::xlibos_uniprocessor();
        assert_eq!(stock.kernel_work_factor(), 1.0);
        assert!(tuned.kernel_work_factor() < 1.0);
        assert!(
            tuned.kernel_work_factor() > 0.8,
            "customization is a trim, not magic"
        );
    }

    #[test]
    fn module_loading() {
        let mut cfg = KernelConfig::xlibos_default();
        assert!(!cfg.has_module(KernelModule::Ipvs));
        cfg.load_module(KernelModule::Ipvs)
            .load_module(KernelModule::SoftRoce);
        assert!(cfg.has_module(KernelModule::Ipvs));
        assert!(cfg.has_module(KernelModule::SoftRoce));
        assert!(!cfg.has_module(KernelModule::SoftIwarp));
    }
}
