//! Kernel deployment backends and their cost compositions.
//!
//! [`Backend`] captures where the (guest) Linux kernel sits relative to
//! the hardware privilege boundary, which determines what every
//! kernel-crossing operation costs. All platform comparisons in
//! `xc-runtimes` reduce to these compositions plus per-workload operation
//! counts.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::abi::{XenAbi, USER_HOT_PAGES};

use crate::config::KernelConfig;

/// PTE updates batched per `mmu_update` hypercall (Linux's PV backend
/// batches aggressively).
pub const MMU_BATCH: u64 = 512;

/// Where the kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Linux in ring 0 on hardware (Docker's host kernel).
    Native,
    /// Unmodified 64-bit Linux as a Xen PV guest (Xen-Container /
    /// LightVM): kernel isolated in its own address space, syscalls
    /// forwarded by the hypervisor (§4.1).
    XenPv,
    /// X-LibOS on the X-Kernel: kernel shares its processes' address
    /// space and privilege level (§4.2–4.3).
    XKernel,
}

impl Backend {
    /// The hypervisor ABI underneath, if any.
    pub fn abi(self) -> Option<XenAbi> {
        match self {
            Backend::Native => None,
            Backend::XenPv => Some(XenAbi::XenPv),
            Backend::XKernel => Some(XenAbi::XKernel),
        }
    }

    /// Dispatch cost of one syscall (excluding the syscall body's own
    /// work). `optimized` selects the ABOM function-call path, which only
    /// exists under [`Backend::XKernel`].
    ///
    /// The KPTI tax applies to every *hardware* privilege crossing, so an
    /// optimized X-Container syscall escapes it entirely — the paper's
    /// observation that "the Meltdown patch does not affect performance of
    /// X-Containers" (§5.4).
    pub fn syscall_cost(self, costs: &CostModel, config: &KernelConfig, optimized: bool) -> Nanos {
        match self {
            Backend::Native => costs.syscall_trap + config.kpti_tax(costs),
            Backend::XenPv => XenAbi::XenPv.forwarded_syscall_cost(costs) + config.kpti_tax(costs),
            Backend::XKernel => {
                if optimized {
                    XenAbi::XKernel.optimized_syscall_cost(costs)
                } else {
                    XenAbi::XKernel.forwarded_syscall_cost(costs) + config.kpti_tax(costs)
                }
            }
        }
    }

    /// Cost of taking one device/network event into the kernel (softirq
    /// entry or event-channel delivery).
    pub fn event_entry_cost(self, costs: &CostModel, config: &KernelConfig) -> Nanos {
        match self {
            Backend::Native => costs.softirq_entry + config.kpti_tax(costs),
            Backend::XenPv => {
                costs.softirq_entry
                    + XenAbi::XenPv.event_delivery_cost(costs)
                    + config.kpti_tax(costs)
            }
            Backend::XKernel => {
                // Delivered by the §4.2 user-mode emulation: no hardware
                // crossing, no KPTI tax.
                costs.softirq_entry + XenAbi::XKernel.event_delivery_cost(costs)
            }
        }
    }

    /// Cost of a context switch between two *processes* of this kernel,
    /// with `runnable` tasks on the runqueue.
    pub fn context_switch_cost(self, costs: &CostModel, runnable: u64) -> Nanos {
        let sched =
            costs.context_switch_base + costs.sched_per_runnable * runnable.saturating_sub(1);
        match self {
            Backend::Native => {
                sched + costs.page_table_switch + costs.tlb_flush_with_refill(USER_HOT_PAGES)
            }
            Backend::XenPv => sched + XenAbi::XenPv.process_switch_cost(costs),
            Backend::XKernel => sched + XenAbi::XKernel.process_switch_cost(costs),
        }
    }

    /// Cost of a switch between two *threads* of one process (no
    /// address-space change).
    pub fn thread_switch_cost(self, costs: &CostModel, runnable: u64) -> Nanos {
        costs.thread_switch + costs.sched_per_runnable * runnable.saturating_sub(1)
    }

    /// Cost of `fork()` for a process with `resident_pages` mapped pages.
    pub fn fork_cost(self, costs: &CostModel, resident_pages: u64) -> Nanos {
        match self {
            Backend::Native => costs.fork_base + costs.fork_per_page * resident_pages,
            Backend::XenPv | Backend::XKernel => {
                let abi = self.abi().expect("virtualized backend");
                costs.fork_base + abi.fork_page_table_cost(costs, resident_pages, MMU_BATCH)
            }
        }
    }

    /// Cost of `execve()` of an image with `image_pages` pages whose
    /// loading performs `loader_syscalls` syscalls (ELF headers, mmaps,
    /// dynamic-linker reads). The loader syscalls are charged at this
    /// backend's dispatch rate — which is why cheap syscalls speed up
    /// `exec` (Figure 5's Execl panel).
    pub fn exec_cost(
        self,
        costs: &CostModel,
        config: &KernelConfig,
        image_pages: u64,
        loader_syscalls: u64,
        optimized: bool,
    ) -> Nanos {
        let map_cost = match self {
            Backend::Native => costs.fork_per_page * image_pages,
            Backend::XenPv | Backend::XKernel => self
                .abi()
                .expect("virtualized backend")
                .fork_page_table_cost(costs, image_pages, MMU_BATCH),
        };
        costs.exec_base + map_cost + self.syscall_cost(costs, config, optimized) * loader_syscalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (CostModel, KernelConfig, KernelConfig) {
        (
            CostModel::skylake_cloud(),
            KernelConfig::docker_default(),
            KernelConfig::xlibos_default(),
        )
    }

    #[test]
    fn syscall_cost_ordering_matches_figure4() {
        let (c, patched, xlibos) = env();
        let docker_patched = Backend::Native.syscall_cost(&c, &patched, false);
        let docker_unpatched =
            Backend::Native.syscall_cost(&c, &KernelConfig::docker_unpatched(), false);
        let xen_container = Backend::XenPv.syscall_cost(&c, &patched, false);
        let x_container = Backend::XKernel.syscall_cost(&c, &xlibos, true);

        // Figure 4's ordering: X ≫ Docker-unpatched > Docker-patched >
        // Xen-Container.
        assert!(x_container < docker_unpatched);
        assert!(docker_unpatched < docker_patched);
        assert!(docker_patched < xen_container);
        // And the headline magnitude: an optimized X-Container syscall is
        // more than an order of magnitude cheaper than patched native.
        assert!(docker_patched.as_nanos() > 20 * x_container.as_nanos());
    }

    #[test]
    fn meltdown_patch_does_not_affect_optimized_path() {
        let (c, _, _) = env();
        let mut patched_guest = KernelConfig::xlibos_default();
        patched_guest.kpti = true;
        let with = Backend::XKernel.syscall_cost(&c, &patched_guest, true);
        let without = Backend::XKernel.syscall_cost(&c, &KernelConfig::xlibos_default(), true);
        assert_eq!(with, without, "no hardware crossing, no KPTI tax");
    }

    #[test]
    fn unoptimized_xkernel_syscall_still_beats_pv() {
        let (c, patched, _) = env();
        let xk = Backend::XKernel.syscall_cost(&c, &patched, false);
        let pv = Backend::XenPv.syscall_cost(&c, &patched, false);
        assert!(xk < pv / 3);
    }

    #[test]
    fn context_switch_ordering_matches_figure5() {
        let c = CostModel::skylake_cloud();
        let native = Backend::Native.context_switch_cost(&c, 4);
        let xk = Backend::XKernel.context_switch_cost(&c, 4);
        let pv = Backend::XenPv.context_switch_cost(&c, 4);
        // "X-Containers has noticeable overheads compared to Docker in
        // process creation and context switching" (§5.4).
        assert!(native < xk);
        assert!(xk < pv);
    }

    #[test]
    fn runqueue_length_inflates_switches() {
        let c = CostModel::skylake_cloud();
        let short = Backend::Native.context_switch_cost(&c, 4);
        let long = Backend::Native.context_switch_cost(&c, 1600);
        assert!(
            long > short,
            "flat scheduling degrades with 4N tasks (Figure 8)"
        );
        assert_eq!(long - short, c.sched_per_runnable * (1600 - 4));
    }

    #[test]
    fn thread_switch_cheaper_than_process_switch() {
        let c = CostModel::skylake_cloud();
        for b in [Backend::Native, Backend::XenPv, Backend::XKernel] {
            assert!(b.thread_switch_cost(&c, 4) < b.context_switch_cost(&c, 4));
        }
    }

    #[test]
    fn fork_pays_hypervisor_validation() {
        let c = CostModel::skylake_cloud();
        let pages = 2_000;
        let native = Backend::Native.fork_cost(&c, pages);
        let xk = Backend::XKernel.fork_cost(&c, pages);
        assert!(xk > native, "PT ops must go through the X-Kernel (§5.4)");
        assert!(xk < native * 4, "batching keeps it in the same ballpark");
    }

    #[test]
    fn exec_benefits_from_cheap_syscalls() {
        let (c, patched, xlibos) = env();
        let docker = Backend::Native.exec_cost(&c, &patched, 600, 150, false);
        let xc = Backend::XKernel.exec_cost(&c, &xlibos, 600, 150, true);
        // The loader's syscalls dominate the difference; X wins Execl
        // despite paying hypervisor PT costs.
        assert!(xc < docker);
    }

    #[test]
    fn event_entry_kpti_asymmetry() {
        let (c, patched, xlibos) = env();
        let native_patched = Backend::Native.event_entry_cost(&c, &patched);
        let native_unpatched =
            Backend::Native.event_entry_cost(&c, &KernelConfig::docker_unpatched());
        let xk = Backend::XKernel.event_entry_cost(&c, &xlibos);
        assert!(native_patched > native_unpatched);
        assert!(xk < Backend::XenPv.event_entry_cost(&c, &patched));
    }
}
