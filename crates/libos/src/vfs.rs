//! A small in-memory VFS with a page-cache cost model.
//!
//! Backs the UnixBench **File Copy** microbenchmark (Figure 5): reads and
//! writes move real bytes through real descriptor state, while the cost of
//! each operation is composed from `vfs_op` + per-KiB page-cache copying
//! plus the backend's syscall dispatch (charged by the caller).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// File descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

/// VFS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// Path does not exist.
    NotFound(String),
    /// Descriptor is closed or never existed.
    BadFd(Fd),
    /// Path already exists (exclusive create).
    Exists(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file: {p}"),
            VfsError::BadFd(fd) => write!(f, "bad file descriptor {}", fd.0),
            VfsError::Exists(p) => write!(f, "file exists: {p}"),
        }
    }
}

impl Error for VfsError {}

#[derive(Debug, Clone, Default)]
struct Inode {
    data: Vec<u8>,
}

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    offset: usize,
}

/// The in-memory filesystem.
///
/// # Example
///
/// ```
/// use xc_libos::vfs::Vfs;
/// use xc_sim::cost::CostModel;
///
/// let costs = CostModel::skylake_cloud();
/// let mut fs = Vfs::new();
/// fs.create("/etc/nginx.conf")?;
/// let fd = fs.open("/etc/nginx.conf")?;
/// fs.write(fd, b"worker_processes 1;", &costs)?;
/// fs.seek(fd, 0)?;
/// let mut buf = [0u8; 64];
/// let (n, _cost) = fs.read(fd, &mut buf, &costs)?;
/// assert_eq!(&buf[..n], b"worker_processes 1;");
/// # Ok::<(), xc_libos::vfs::VfsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    inodes: BTreeMap<String, Inode>,
    open: BTreeMap<Fd, OpenFile>,
    next_fd: u32,
    bytes_read: u64,
    bytes_written: u64,
}

impl Vfs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`VfsError::Exists`] if the path is taken.
    pub fn create(&mut self, path: &str) -> Result<(), VfsError> {
        if self.inodes.contains_key(path) {
            return Err(VfsError::Exists(path.to_owned()));
        }
        self.inodes.insert(path.to_owned(), Inode::default());
        Ok(())
    }

    /// Opens an existing file at offset 0.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] for missing paths.
    pub fn open(&mut self, path: &str) -> Result<Fd, VfsError> {
        if !self.inodes.contains_key(path) {
            return Err(VfsError::NotFound(path.to_owned()));
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
            },
        );
        Ok(fd)
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadFd`] if not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), VfsError> {
        self.open.remove(&fd).map(|_| ()).ok_or(VfsError::BadFd(fd))
    }

    /// Repositions a descriptor.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadFd`] if not open.
    pub fn seek(&mut self, fd: Fd, offset: usize) -> Result<(), VfsError> {
        let of = self.open.get_mut(&fd).ok_or(VfsError::BadFd(fd))?;
        of.offset = offset;
        Ok(())
    }

    /// Reads into `buf` from the current offset, returning bytes read and
    /// the in-kernel cost (VFS traversal + page-cache copy).
    ///
    /// # Errors
    ///
    /// [`VfsError::BadFd`] if not open.
    pub fn read(
        &mut self,
        fd: Fd,
        buf: &mut [u8],
        costs: &CostModel,
    ) -> Result<(usize, Nanos), VfsError> {
        let of = self.open.get_mut(&fd).ok_or(VfsError::BadFd(fd))?;
        let inode = self.inodes.get(&of.path).ok_or(VfsError::BadFd(fd))?;
        let available = inode.data.len().saturating_sub(of.offset);
        let n = available.min(buf.len());
        buf[..n].copy_from_slice(&inode.data[of.offset..of.offset + n]);
        of.offset += n;
        self.bytes_read += n as u64;
        let cost = costs.vfs_op + costs.page_cache_per_kb * (n as u64).div_ceil(1024);
        Ok((n, cost))
    }

    /// Writes `data` at the current offset (extending the file), returning
    /// the in-kernel cost.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadFd`] if not open.
    pub fn write(&mut self, fd: Fd, data: &[u8], costs: &CostModel) -> Result<Nanos, VfsError> {
        let of = self.open.get_mut(&fd).ok_or(VfsError::BadFd(fd))?;
        let inode = self.inodes.get_mut(&of.path).ok_or(VfsError::BadFd(fd))?;
        let end = of.offset + data.len();
        if inode.data.len() < end {
            inode.data.resize(end, 0);
        }
        inode.data[of.offset..end].copy_from_slice(data);
        of.offset = end;
        self.bytes_written += data.len() as u64;
        Ok(costs.vfs_op + costs.page_cache_per_kb * (data.len() as u64).div_ceil(1024))
    }

    /// File size by path.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] for missing paths.
    pub fn size(&self, path: &str) -> Result<usize, VfsError> {
        self.inodes
            .get(path)
            .map(|i| i.data.len())
            .ok_or(VfsError::NotFound(path.to_owned()))
    }

    /// Total bytes read through this VFS.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written through this VFS.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut fs = Vfs::new();
        fs.create("/f").unwrap();
        let fd = fs.open("/f").unwrap();
        fs.write(fd, b"hello world", &costs()).unwrap();
        fs.seek(fd, 6).unwrap();
        let mut buf = [0u8; 16];
        let (n, _) = fs.read(fd, &mut buf, &costs()).unwrap();
        assert_eq!(&buf[..n], b"world");
        assert_eq!(fs.size("/f").unwrap(), 11);
    }

    #[test]
    fn file_copy_loop_moves_all_bytes() {
        // The UnixBench File Copy shape: 1 KB buffer, src → dst.
        let c = costs();
        let mut fs = Vfs::new();
        fs.create("/src").unwrap();
        fs.create("/dst").unwrap();
        let src = fs.open("/src").unwrap();
        fs.write(src, &vec![7u8; 10_000], &c).unwrap();
        fs.seek(src, 0).unwrap();
        let dst = fs.open("/dst").unwrap();
        let mut buf = [0u8; 1024];
        let mut total_cost = Nanos::ZERO;
        loop {
            let (n, rc) = fs.read(src, &mut buf, &c).unwrap();
            if n == 0 {
                break;
            }
            total_cost += rc;
            total_cost += fs.write(dst, &buf[..n], &c).unwrap();
        }
        assert_eq!(fs.size("/dst").unwrap(), 10_000);
        assert!(total_cost > Nanos::ZERO);
        assert_eq!(fs.bytes_read(), 10_000);
        assert_eq!(fs.bytes_written(), 20_000);
    }

    #[test]
    fn cost_scales_with_size() {
        let c = costs();
        let mut fs = Vfs::new();
        fs.create("/f").unwrap();
        let fd = fs.open("/f").unwrap();
        let small = fs.write(fd, &[0u8; 512], &c).unwrap();
        let large = fs.write(fd, &[0u8; 64 * 1024], &c).unwrap();
        assert!(large > small);
    }

    #[test]
    fn errors() {
        let mut fs = Vfs::new();
        assert!(matches!(fs.open("/missing"), Err(VfsError::NotFound(_))));
        fs.create("/f").unwrap();
        assert!(matches!(fs.create("/f"), Err(VfsError::Exists(_))));
        let fd = fs.open("/f").unwrap();
        fs.close(fd).unwrap();
        assert!(matches!(fs.close(fd), Err(VfsError::BadFd(_))));
        let mut buf = [0u8; 4];
        assert!(matches!(
            fs.read(fd, &mut buf, &costs()),
            Err(VfsError::BadFd(_))
        ));
    }

    #[test]
    fn eof_reads_zero() {
        let mut fs = Vfs::new();
        fs.create("/f").unwrap();
        let fd = fs.open("/f").unwrap();
        let mut buf = [0u8; 4];
        let (n, _) = fs.read(fd, &mut buf, &costs()).unwrap();
        assert_eq!(n, 0);
    }
}
