//! Kernel pipes.
//!
//! Back two UnixBench microbenchmarks (Figure 5): **Pipe Throughput** (one
//! process writing and reading its own pipe) and **Context Switching**
//! (two processes ping-ponging through a pipe pair, which forces a
//! process switch per message). Data really moves through a bounded ring;
//! costs are `pipe_op` + copy, with syscall dispatch charged by the
//! caller.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Default pipe capacity (Linux's 64 KiB).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// Pipe errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// The pipe buffer is full (writer must block).
    WouldBlockFull,
    /// The pipe buffer is empty (reader must block).
    WouldBlockEmpty,
    /// All writers closed and the buffer is drained.
    Closed,
}

impl fmt::Display for PipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeError::WouldBlockFull => write!(f, "pipe full, write would block"),
            PipeError::WouldBlockEmpty => write!(f, "pipe empty, read would block"),
            PipeError::Closed => write!(f, "pipe closed"),
        }
    }
}

impl Error for PipeError {}

/// A unidirectional kernel pipe.
///
/// # Example
///
/// ```
/// use xc_libos::pipe::Pipe;
/// use xc_sim::cost::CostModel;
///
/// let costs = CostModel::skylake_cloud();
/// let mut p = Pipe::new();
/// p.write(b"ping", &costs)?;
/// let mut buf = [0u8; 8];
/// let (n, _cost) = p.read(&mut buf, &costs)?;
/// assert_eq!(&buf[..n], b"ping");
/// # Ok::<(), xc_libos::pipe::PipeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipe {
    buffer: VecDeque<u8>,
    capacity: usize,
    writer_open: bool,
    bytes_through: u64,
}

impl Default for Pipe {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipe {
    /// Creates a pipe with the default 64 KiB capacity.
    pub fn new() -> Self {
        Pipe::with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with a custom capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "pipe capacity must be positive");
        Pipe {
            buffer: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            writer_open: true,
            bytes_through: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Free space.
    pub fn free(&self) -> usize {
        self.capacity - self.buffer.len()
    }

    /// Writes as much of `data` as fits, returning `(written, cost)`.
    ///
    /// # Errors
    ///
    /// [`PipeError::WouldBlockFull`] when no space at all;
    /// [`PipeError::Closed`] if the write end was closed.
    pub fn write(&mut self, data: &[u8], costs: &CostModel) -> Result<(usize, Nanos), PipeError> {
        if !self.writer_open {
            return Err(PipeError::Closed);
        }
        if self.free() == 0 {
            return Err(PipeError::WouldBlockFull);
        }
        let n = data.len().min(self.free());
        self.buffer.extend(&data[..n]);
        self.bytes_through += n as u64;
        Ok((n, costs.pipe_op + costs.copy_bytes(n as u64)))
    }

    /// Reads up to `buf.len()` bytes, returning `(read, cost)`.
    ///
    /// # Errors
    ///
    /// [`PipeError::WouldBlockEmpty`] when empty with a live writer;
    /// [`PipeError::Closed`] when empty and the writer closed.
    pub fn read(&mut self, buf: &mut [u8], costs: &CostModel) -> Result<(usize, Nanos), PipeError> {
        if self.buffer.is_empty() {
            return if self.writer_open {
                Err(PipeError::WouldBlockEmpty)
            } else {
                Err(PipeError::Closed)
            };
        }
        let n = buf.len().min(self.buffer.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.buffer.pop_front().expect("checked non-empty");
        }
        Ok((n, costs.pipe_op + costs.copy_bytes(n as u64)))
    }

    /// Closes the write end.
    pub fn close_writer(&mut self) {
        self.writer_open = false;
    }

    /// Total bytes that have passed through.
    pub fn bytes_through(&self) -> u64 {
        self.bytes_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn fifo_order() {
        let mut p = Pipe::new();
        p.write(b"abc", &costs()).unwrap();
        p.write(b"def", &costs()).unwrap();
        let mut buf = [0u8; 6];
        let (n, _) = p.read(&mut buf, &costs()).unwrap();
        assert_eq!(&buf[..n], b"abcdef");
    }

    #[test]
    fn blocking_semantics() {
        let mut p = Pipe::with_capacity(4);
        assert_eq!(
            p.read(&mut [0u8; 1], &costs()),
            Err(PipeError::WouldBlockEmpty)
        );
        let (written, _) = p.write(b"123456", &costs()).unwrap();
        assert_eq!(written, 4, "short write at capacity");
        assert_eq!(p.write(b"x", &costs()), Err(PipeError::WouldBlockFull));
        let mut buf = [0u8; 2];
        p.read(&mut buf, &costs()).unwrap();
        assert_eq!(p.free(), 2);
    }

    #[test]
    fn close_semantics() {
        let mut p = Pipe::new();
        p.write(b"last", &costs()).unwrap();
        p.close_writer();
        assert_eq!(p.write(b"x", &costs()), Err(PipeError::Closed));
        let mut buf = [0u8; 8];
        let (n, _) = p.read(&mut buf, &costs()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(p.read(&mut buf, &costs()), Err(PipeError::Closed));
    }

    #[test]
    fn ping_pong_counts_bytes() {
        // The Context Switching benchmark shape.
        let c = costs();
        let mut to_b = Pipe::new();
        let mut to_a = Pipe::new();
        for _ in 0..100 {
            to_b.write(b"ping", &c).unwrap();
            let mut buf = [0u8; 4];
            to_b.read(&mut buf, &c).unwrap();
            to_a.write(b"pong", &c).unwrap();
            to_a.read(&mut buf, &c).unwrap();
        }
        assert_eq!(to_b.bytes_through(), 400);
        assert_eq!(to_a.bytes_through(), 400);
    }

    #[test]
    fn cost_scales_with_payload() {
        let c = costs();
        let mut p = Pipe::new();
        let (_, small) = p.write(&[0u8; 16], &c).unwrap();
        let (_, large) = p.write(&[0u8; 32 * 1024], &c).unwrap();
        assert!(large > small);
    }
}
