//! The x86-64 Linux syscall table (the slice the workloads exercise).
//!
//! Binary compatibility (§2.3) means *numbers* are the interface: ABOM
//! bakes them into vsyscall entries and the Table 1 profiles distribute
//! dynamic calls over them. This module gives the numbers names so
//! profiles and tests read like strace output instead of integer soup,
//! and provides the per-domain [`DispatchTable`] that resolves every
//! number's dispatch route and cost once per kernel instead of on every
//! syscall.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::backend::Backend;
use crate::config::KernelConfig;

/// `read` — the Figure 2 case-1 example.
pub const SYS_READ: u64 = 0;
/// `write`.
pub const SYS_WRITE: u64 = 1;
/// `open`.
pub const SYS_OPEN: u64 = 2;
/// `close`.
pub const SYS_CLOSE: u64 = 3;
/// `stat`.
pub const SYS_STAT: u64 = 4;
/// `fstat`.
pub const SYS_FSTAT: u64 = 5;
/// `lseek`.
pub const SYS_LSEEK: u64 = 8;
/// `mmap`.
pub const SYS_MMAP: u64 = 9;
/// `mprotect`.
pub const SYS_MPROTECT: u64 = 10;
/// `munmap`.
pub const SYS_MUNMAP: u64 = 11;
/// `brk`.
pub const SYS_BRK: u64 = 12;
/// `rt_sigreturn` — `__restore_rt`, the Figure 2 9-byte example.
pub const SYS_RT_SIGRETURN: u64 = 15;
/// `writev`.
pub const SYS_WRITEV: u64 = 20;
/// `access`.
pub const SYS_ACCESS: u64 = 21;
/// `dup` — part of the UnixBench System Call loop.
pub const SYS_DUP: u64 = 32;
/// `nanosleep`.
pub const SYS_NANOSLEEP: u64 = 35;
/// `getpid` — part of the UnixBench System Call loop.
pub const SYS_GETPID: u64 = 39;
/// `sendfile`.
pub const SYS_SENDFILE: u64 = 40;
/// `socket`.
pub const SYS_SOCKET: u64 = 41;
/// `accept`.
pub const SYS_ACCEPT: u64 = 43;
/// `sendto`.
pub const SYS_SENDTO: u64 = 44;
/// `recvfrom`.
pub const SYS_RECVFROM: u64 = 45;
/// `fork`.
pub const SYS_FORK: u64 = 57;
/// `execve`.
pub const SYS_EXECVE: u64 = 59;
/// `exit`.
pub const SYS_EXIT: u64 = 60;
/// `umask` — part of the UnixBench System Call loop.
pub const SYS_UMASK: u64 = 95;
/// `getuid` — part of the UnixBench System Call loop.
pub const SYS_GETUID: u64 = 102;
/// `futex` — the cancellable-wrapper staple.
pub const SYS_FUTEX: u64 = 202;
/// `epoll_wait`.
pub const SYS_EPOLL_WAIT: u64 = 232;
/// `openat`.
pub const SYS_OPENAT: u64 = 257;
/// `accept4`.
pub const SYS_ACCEPT4: u64 = 288;
/// `epoll_pwait`.
pub const SYS_EPOLL_PWAIT: u64 = 281;

/// Name for a syscall number (the subset this workspace uses), or
/// `None` for numbers outside it.
pub fn name(nr: u64) -> Option<&'static str> {
    Some(match nr {
        SYS_READ => "read",
        SYS_WRITE => "write",
        SYS_OPEN => "open",
        SYS_CLOSE => "close",
        SYS_STAT => "stat",
        SYS_FSTAT => "fstat",
        SYS_LSEEK => "lseek",
        SYS_MMAP => "mmap",
        SYS_MPROTECT => "mprotect",
        SYS_MUNMAP => "munmap",
        SYS_BRK => "brk",
        SYS_RT_SIGRETURN => "rt_sigreturn",
        SYS_WRITEV => "writev",
        SYS_ACCESS => "access",
        SYS_DUP => "dup",
        SYS_NANOSLEEP => "nanosleep",
        SYS_GETPID => "getpid",
        SYS_SENDFILE => "sendfile",
        SYS_SOCKET => "socket",
        SYS_ACCEPT => "accept",
        SYS_SENDTO => "sendto",
        SYS_RECVFROM => "recvfrom",
        SYS_FORK => "fork",
        SYS_EXECVE => "execve",
        SYS_EXIT => "exit",
        SYS_UMASK => "umask",
        SYS_GETUID => "getuid",
        SYS_FUTEX => "futex",
        SYS_EPOLL_WAIT => "epoll_wait",
        SYS_OPENAT => "openat",
        SYS_ACCEPT4 => "accept4",
        SYS_EPOLL_PWAIT => "epoll_pwait",
        231 => "exit_group",
        _ => return None,
    })
}

/// The five syscalls of the UnixBench System Call benchmark (§5.4).
pub const UNIXBENCH_SYSCALL_LOOP: [u64; 5] =
    [SYS_DUP, SYS_CLOSE, SYS_GETPID, SYS_GETUID, SYS_UMASK];

/// Entries in the ABOM vsyscall table: dedicated wrappers exist for
/// syscall numbers `0..VSYSCALL_TABLE_ENTRIES` (§4.4); higher numbers
/// fall back to the generic bounce.
pub const VSYSCALL_TABLE_ENTRIES: u64 = 352;

/// How a syscall leaves the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallRoute {
    /// Hardware `syscall` trap into a ring-0 kernel (native Linux).
    Trap,
    /// Bounced through the hypervisor ABI into an isolated or
    /// same-privilege guest kernel (Xen PV, unoptimized X-LibOS).
    Forwarded,
    /// ABOM-rewritten function call straight into the X-LibOS — no
    /// privilege crossing at all (§4.4).
    FunctionCall,
}

/// Per-domain syscall-dispatch fast path.
///
/// [`Backend::syscall_cost`] recomposes the dispatch price — ABI
/// constants plus the KPTI tax — from scratch on every call, and the
/// route decision (trap vs bounce vs function call) is re-derived with
/// it. Both are fixed once a kernel's `(backend, config, optimized)`
/// triple is known, so a [`DispatchTable`] resolves them a single time:
/// a dense `SyscallRoute` table indexed by syscall number plus the
/// per-dispatch cost. `GuestKernel` builds one lazily on its first
/// syscall and afterwards charges syscalls with a field read.
#[derive(Debug, Clone)]
pub struct DispatchTable {
    /// Route per syscall number (dense, `VSYSCALL_TABLE_ENTRIES` long);
    /// numbers past the table's end take `fallback`.
    routes: Box<[SyscallRoute]>,
    /// Route for numbers without a dedicated vsyscall entry.
    fallback: SyscallRoute,
    /// Dispatch cost shared by every routed syscall (the cost model
    /// prices the crossing, not the number).
    dispatch_cost: Nanos,
    /// Sites permanently demoted from their resolved route back to the
    /// fallback (see [`DispatchTable::demote`]).
    demoted: u64,
}

impl DispatchTable {
    /// Resolves the route and dispatch cost for every syscall number
    /// under the given kernel deployment.
    pub fn resolve(
        backend: Backend,
        config: &KernelConfig,
        optimized: bool,
        costs: &CostModel,
    ) -> Self {
        let (table_route, fallback) = match backend {
            Backend::Native => (SyscallRoute::Trap, SyscallRoute::Trap),
            Backend::XenPv => (SyscallRoute::Forwarded, SyscallRoute::Forwarded),
            // Only numbers with a dedicated vsyscall entry become ABOM
            // function calls; the rest still bounce.
            Backend::XKernel if optimized => (SyscallRoute::FunctionCall, SyscallRoute::Forwarded),
            Backend::XKernel => (SyscallRoute::Forwarded, SyscallRoute::Forwarded),
        };
        DispatchTable {
            routes: vec![table_route; VSYSCALL_TABLE_ENTRIES as usize].into_boxed_slice(),
            fallback,
            dispatch_cost: backend.syscall_cost(costs, config, optimized),
            demoted: 0,
        }
    }

    /// Permanently demotes syscall `nr` to the fallback route — the
    /// graceful-degradation escape hatch: when an ABOM patch for a site
    /// is rolled back (failed post-patch verification, repeated patch
    /// faults), the number stops dispatching as a function call and
    /// takes the always-correct forwarded/trap path instead. Returns
    /// whether the route actually changed (demoting an already-fallback
    /// number is a no-op and is not counted).
    pub fn demote(&mut self, nr: u64) -> bool {
        match self.routes.get_mut(nr as usize) {
            Some(route) if *route != self.fallback => {
                *route = self.fallback;
                self.demoted += 1;
                true
            }
            _ => false,
        }
    }

    /// Number of syscall numbers demoted to the fallback route.
    pub fn demoted(&self) -> u64 {
        self.demoted
    }

    /// The dispatch route for syscall number `nr`.
    #[inline]
    pub fn route(&self, nr: u64) -> SyscallRoute {
        self.routes
            .get(nr as usize)
            .copied()
            .unwrap_or(self.fallback)
    }

    /// The resolved per-dispatch cost.
    #[inline]
    pub fn dispatch_cost(&self) -> Nanos {
        self.dispatch_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_numbers() {
        // The paper's two worked examples: read (entry 0x...008) and
        // rt_sigreturn (entry 0x...080 = 8·(15+1)).
        assert_eq!(SYS_READ, 0);
        assert_eq!(SYS_RT_SIGRETURN, 15);
        assert_eq!(name(0), Some("read"));
        assert_eq!(name(15), Some("rt_sigreturn"));
    }

    #[test]
    fn unixbench_loop_named() {
        let names: Vec<_> = UNIXBENCH_SYSCALL_LOOP
            .iter()
            .map(|&n| name(n).unwrap())
            .collect();
        assert_eq!(names, vec!["dup", "close", "getpid", "getuid", "umask"]);
    }

    #[test]
    fn unknown_numbers_are_none() {
        assert_eq!(name(9999), None);
        assert_eq!(name(333), None);
    }

    #[test]
    fn numbers_fit_vsyscall_table() {
        for nr in UNIXBENCH_SYSCALL_LOOP {
            assert!(nr <= 351, "nr {nr} must have a dedicated entry");
        }
        const _: () = assert!(SYS_ACCEPT4 <= 351);
    }

    #[test]
    fn dispatch_routes_per_backend() {
        let costs = CostModel::skylake_cloud();
        let native = DispatchTable::resolve(
            Backend::Native,
            &KernelConfig::docker_default(),
            false,
            &costs,
        );
        let pv = DispatchTable::resolve(
            Backend::XenPv,
            &KernelConfig::docker_default(),
            false,
            &costs,
        );
        let xc = DispatchTable::resolve(
            Backend::XKernel,
            &KernelConfig::xlibos_default(),
            true,
            &costs,
        );
        assert_eq!(native.route(SYS_READ), SyscallRoute::Trap);
        assert_eq!(pv.route(SYS_READ), SyscallRoute::Forwarded);
        assert_eq!(xc.route(SYS_READ), SyscallRoute::FunctionCall);
        // Numbers beyond the vsyscall table keep bouncing even under ABOM.
        assert_eq!(xc.route(VSYSCALL_TABLE_ENTRIES), SyscallRoute::Forwarded);
        assert_eq!(xc.route(9999), SyscallRoute::Forwarded);
        assert_eq!(native.route(9999), SyscallRoute::Trap);
    }

    #[test]
    fn dispatch_cost_matches_backend_composition() {
        let costs = CostModel::skylake_cloud();
        for (backend, config, optimized) in [
            (Backend::Native, KernelConfig::docker_default(), false),
            (Backend::XenPv, KernelConfig::docker_default(), false),
            (Backend::XKernel, KernelConfig::xlibos_default(), true),
            (Backend::XKernel, KernelConfig::xlibos_default(), false),
        ] {
            let table = DispatchTable::resolve(backend, &config, optimized, &costs);
            assert_eq!(
                table.dispatch_cost(),
                backend.syscall_cost(&costs, &config, optimized),
                "{backend:?} optimized={optimized}"
            );
        }
    }

    #[test]
    fn demote_falls_back_permanently() {
        let costs = CostModel::skylake_cloud();
        let mut xc = DispatchTable::resolve(
            Backend::XKernel,
            &KernelConfig::xlibos_default(),
            true,
            &costs,
        );
        assert_eq!(xc.route(SYS_READ), SyscallRoute::FunctionCall);
        assert!(xc.demote(SYS_READ));
        assert_eq!(xc.route(SYS_READ), SyscallRoute::Forwarded);
        assert_eq!(xc.demoted(), 1);
        // Idempotent: re-demoting an already-fallback number is a no-op.
        assert!(!xc.demote(SYS_READ));
        assert_eq!(xc.demoted(), 1);
        // Numbers past the dense table are already on the fallback.
        assert!(!xc.demote(VSYSCALL_TABLE_ENTRIES + 5));
        // Other numbers keep their optimized route.
        assert_eq!(xc.route(SYS_WRITE), SyscallRoute::FunctionCall);
    }

    #[test]
    fn unoptimized_xkernel_never_routes_function_calls() {
        let costs = CostModel::skylake_cloud();
        let xc = DispatchTable::resolve(
            Backend::XKernel,
            &KernelConfig::xlibos_default(),
            false,
            &costs,
        );
        for nr in 0..VSYSCALL_TABLE_ENTRIES {
            assert_eq!(xc.route(nr), SyscallRoute::Forwarded);
        }
    }
}
