//! The x86-64 Linux syscall table (the slice the workloads exercise).
//!
//! Binary compatibility (§2.3) means *numbers* are the interface: ABOM
//! bakes them into vsyscall entries and the Table 1 profiles distribute
//! dynamic calls over them. This module gives the numbers names so
//! profiles and tests read like strace output instead of integer soup.

/// `read` — the Figure 2 case-1 example.
pub const SYS_READ: u64 = 0;
/// `write`.
pub const SYS_WRITE: u64 = 1;
/// `open`.
pub const SYS_OPEN: u64 = 2;
/// `close`.
pub const SYS_CLOSE: u64 = 3;
/// `stat`.
pub const SYS_STAT: u64 = 4;
/// `fstat`.
pub const SYS_FSTAT: u64 = 5;
/// `lseek`.
pub const SYS_LSEEK: u64 = 8;
/// `mmap`.
pub const SYS_MMAP: u64 = 9;
/// `mprotect`.
pub const SYS_MPROTECT: u64 = 10;
/// `munmap`.
pub const SYS_MUNMAP: u64 = 11;
/// `brk`.
pub const SYS_BRK: u64 = 12;
/// `rt_sigreturn` — `__restore_rt`, the Figure 2 9-byte example.
pub const SYS_RT_SIGRETURN: u64 = 15;
/// `writev`.
pub const SYS_WRITEV: u64 = 20;
/// `access`.
pub const SYS_ACCESS: u64 = 21;
/// `dup` — part of the UnixBench System Call loop.
pub const SYS_DUP: u64 = 32;
/// `nanosleep`.
pub const SYS_NANOSLEEP: u64 = 35;
/// `getpid` — part of the UnixBench System Call loop.
pub const SYS_GETPID: u64 = 39;
/// `sendfile`.
pub const SYS_SENDFILE: u64 = 40;
/// `socket`.
pub const SYS_SOCKET: u64 = 41;
/// `accept`.
pub const SYS_ACCEPT: u64 = 43;
/// `sendto`.
pub const SYS_SENDTO: u64 = 44;
/// `recvfrom`.
pub const SYS_RECVFROM: u64 = 45;
/// `fork`.
pub const SYS_FORK: u64 = 57;
/// `execve`.
pub const SYS_EXECVE: u64 = 59;
/// `exit`.
pub const SYS_EXIT: u64 = 60;
/// `umask` — part of the UnixBench System Call loop.
pub const SYS_UMASK: u64 = 95;
/// `getuid` — part of the UnixBench System Call loop.
pub const SYS_GETUID: u64 = 102;
/// `futex` — the cancellable-wrapper staple.
pub const SYS_FUTEX: u64 = 202;
/// `epoll_wait`.
pub const SYS_EPOLL_WAIT: u64 = 232;
/// `openat`.
pub const SYS_OPENAT: u64 = 257;
/// `accept4`.
pub const SYS_ACCEPT4: u64 = 288;
/// `epoll_pwait`.
pub const SYS_EPOLL_PWAIT: u64 = 281;

/// Name for a syscall number (the subset this workspace uses), or
/// `None` for numbers outside it.
pub fn name(nr: u64) -> Option<&'static str> {
    Some(match nr {
        SYS_READ => "read",
        SYS_WRITE => "write",
        SYS_OPEN => "open",
        SYS_CLOSE => "close",
        SYS_STAT => "stat",
        SYS_FSTAT => "fstat",
        SYS_LSEEK => "lseek",
        SYS_MMAP => "mmap",
        SYS_MPROTECT => "mprotect",
        SYS_MUNMAP => "munmap",
        SYS_BRK => "brk",
        SYS_RT_SIGRETURN => "rt_sigreturn",
        SYS_WRITEV => "writev",
        SYS_ACCESS => "access",
        SYS_DUP => "dup",
        SYS_NANOSLEEP => "nanosleep",
        SYS_GETPID => "getpid",
        SYS_SENDFILE => "sendfile",
        SYS_SOCKET => "socket",
        SYS_ACCEPT => "accept",
        SYS_SENDTO => "sendto",
        SYS_RECVFROM => "recvfrom",
        SYS_FORK => "fork",
        SYS_EXECVE => "execve",
        SYS_EXIT => "exit",
        SYS_UMASK => "umask",
        SYS_GETUID => "getuid",
        SYS_FUTEX => "futex",
        SYS_EPOLL_WAIT => "epoll_wait",
        SYS_OPENAT => "openat",
        SYS_ACCEPT4 => "accept4",
        SYS_EPOLL_PWAIT => "epoll_pwait",
        231 => "exit_group",
        _ => return None,
    })
}

/// The five syscalls of the UnixBench System Call benchmark (§5.4).
pub const UNIXBENCH_SYSCALL_LOOP: [u64; 5] =
    [SYS_DUP, SYS_CLOSE, SYS_GETPID, SYS_GETUID, SYS_UMASK];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_numbers() {
        // The paper's two worked examples: read (entry 0x...008) and
        // rt_sigreturn (entry 0x...080 = 8·(15+1)).
        assert_eq!(SYS_READ, 0);
        assert_eq!(SYS_RT_SIGRETURN, 15);
        assert_eq!(name(0), Some("read"));
        assert_eq!(name(15), Some("rt_sigreturn"));
    }

    #[test]
    fn unixbench_loop_named() {
        let names: Vec<_> = UNIXBENCH_SYSCALL_LOOP
            .iter()
            .map(|&n| name(n).unwrap())
            .collect();
        assert_eq!(names, vec!["dup", "close", "getpid", "getuid", "umask"]);
    }

    #[test]
    fn unknown_numbers_are_none() {
        assert_eq!(name(9999), None);
        assert_eq!(name(333), None);
    }

    #[test]
    fn numbers_fit_vsyscall_table() {
        for nr in UNIXBENCH_SYSCALL_LOOP {
            assert!(nr <= 351, "nr {nr} must have a dedicated entry");
        }
        const _: () = assert!(SYS_ACCEPT4 <= 351);
    }
}
