//! A CFS-style fair scheduler — the inner level of Figure 8's hierarchy.
//!
//! Under Docker, one flat instance of this scheduler juggles the threads
//! of *all* containers (4N tasks for N NGINX+PHP containers); under
//! X-Containers each X-LibOS runs its own small instance over the
//! container's 4 processes while the credit scheduler juggles N vCPUs.
//! "This hierarchical scheduling turned out to be a more scalable way of
//! co-scheduling many containers" (§5.6).
//!
//! The implementation follows CFS's essentials: per-task virtual runtime,
//! weighted by nice-equivalent weights, always running the task with the
//! minimum vruntime; a `BTreeMap` plays the red-black tree's role.

use std::collections::BTreeMap;

use xc_sim::time::Nanos;

/// Task identifier within one scheduler instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Default task weight (CFS nice-0).
pub const WEIGHT_NICE_0: u32 = 1024;

/// CFS scheduling latency target: every runnable task should run once per
/// this period (stretched when the runqueue is long, like the real
/// `sched_latency_ns` / `sched_min_granularity_ns` pair).
pub const SCHED_LATENCY: Nanos = Nanos::from_millis(6);

/// Minimum slice a task receives once picked.
pub const MIN_GRANULARITY: Nanos = Nanos::from_micros(750);

#[derive(Debug, Clone)]
struct Task {
    weight: u32,
    vruntime: u128,
    run_time: Nanos,
    runnable: bool,
}

/// The fair scheduler.
///
/// # Example
///
/// ```
/// use xc_libos::sched::{FairScheduler, WEIGHT_NICE_0};
/// use xc_sim::time::Nanos;
///
/// let mut s = FairScheduler::new();
/// let a = s.add_task(WEIGHT_NICE_0);
/// let b = s.add_task(WEIGHT_NICE_0);
/// s.set_runnable(a, true);
/// s.set_runnable(b, true);
/// // Fair alternation: run whoever has the least virtual runtime.
/// let first = s.pick_next().unwrap();
/// s.account(first, Nanos::from_millis(3));
/// let second = s.pick_next().unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FairScheduler {
    tasks: BTreeMap<TaskId, Task>,
    next_id: u64,
    current: Option<TaskId>,
    switches: u64,
}

impl FairScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Registers a task with the given weight (blocked initially).
    pub fn add_task(&mut self, weight: u32) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        // New tasks start at the current minimum vruntime so they neither
        // starve nor monopolize (CFS's place_entity).
        let min_vr = self.min_vruntime();
        self.tasks.insert(
            id,
            Task {
                weight: weight.max(1),
                vruntime: min_vr,
                run_time: Nanos::ZERO,
                runnable: false,
            },
        );
        id
    }

    /// Removes a task.
    pub fn remove_task(&mut self, id: TaskId) {
        self.tasks.remove(&id);
        if self.current == Some(id) {
            self.current = None;
        }
    }

    /// Marks a task runnable/blocked.
    pub fn set_runnable(&mut self, id: TaskId, runnable: bool) {
        let floor = self.min_vruntime();
        if let Some(t) = self.tasks.get_mut(&id) {
            if runnable && !t.runnable {
                // Re-sync a waker's vruntime to the floor to avoid a
                // sleeper monopolizing after a long block.
                t.vruntime = t.vruntime.max(floor);
            }
            t.runnable = runnable;
        }
        if !runnable && self.current == Some(id) {
            self.current = None;
        }
    }

    fn min_vruntime(&self) -> u128 {
        self.tasks
            .values()
            .filter(|t| t.runnable)
            .map(|t| t.vruntime)
            .min()
            .unwrap_or(0)
    }

    /// Number of runnable tasks.
    pub fn runnable_count(&self) -> u64 {
        self.tasks.values().filter(|t| t.runnable).count() as u64
    }

    /// Picks the runnable task with the minimum vruntime (ties broken by
    /// id for determinism). Counts a switch when the pick differs from the
    /// previously running task.
    pub fn pick_next(&mut self) -> Option<TaskId> {
        let pick = self
            .tasks
            .iter()
            .filter(|(_, t)| t.runnable)
            .min_by_key(|(id, t)| (t.vruntime, **id))
            .map(|(id, _)| *id)?;
        if self.current != Some(pick) {
            self.switches += 1;
            self.current = Some(pick);
        }
        Some(pick)
    }

    /// Accounts `ran` wall time to a task, advancing its weighted
    /// vruntime.
    pub fn account(&mut self, id: TaskId, ran: Nanos) {
        if let Some(t) = self.tasks.get_mut(&id) {
            // vruntime advances inversely to weight.
            t.vruntime +=
                u128::from(ran.as_nanos()) * u128::from(WEIGHT_NICE_0) / u128::from(t.weight);
            t.run_time += ran;
        }
    }

    /// The slice a picked task should run before preemption: the latency
    /// target divided among runnable tasks, floored at the minimum
    /// granularity. Long runqueues stretch total latency — the mechanism
    /// behind Docker's Figure 8 degradation.
    pub fn timeslice(&self) -> Nanos {
        let n = self.runnable_count().max(1);
        (SCHED_LATENCY / n).max(MIN_GRANULARITY)
    }

    /// Total time accounted to a task.
    pub fn run_time(&self, id: TaskId) -> Option<Nanos> {
        self.tasks.get(&id).map(|t| t.run_time)
    }

    /// Context switches observed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Runs a closed-loop simulation for `duration`, alternating picks and
    /// full timeslices. Returns per-task run time. Used by tests and the
    /// scalability harness to measure fairness and switch rates.
    pub fn run_for(&mut self, duration: Nanos) -> BTreeMap<TaskId, Nanos> {
        let mut elapsed = Nanos::ZERO;
        while elapsed < duration {
            let Some(task) = self.pick_next() else { break };
            let slice = self.timeslice().min(duration - elapsed);
            self.account(task, slice);
            elapsed += slice;
        }
        self.tasks.iter().map(|(id, t)| (*id, t.run_time)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_share_equally() {
        let mut s = FairScheduler::new();
        let tasks: Vec<TaskId> = (0..4).map(|_| s.add_task(WEIGHT_NICE_0)).collect();
        for &t in &tasks {
            s.set_runnable(t, true);
        }
        let times = s.run_for(Nanos::from_secs(1));
        for &t in &tasks {
            let share = times[&t].as_secs_f64();
            assert!((share - 0.25).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn weighted_shares() {
        let mut s = FairScheduler::new();
        let light = s.add_task(WEIGHT_NICE_0);
        let heavy = s.add_task(WEIGHT_NICE_0 * 3);
        s.set_runnable(light, true);
        s.set_runnable(heavy, true);
        s.run_for(Nanos::from_secs(1));
        let ratio =
            s.run_time(heavy).unwrap().as_secs_f64() / s.run_time(light).unwrap().as_secs_f64();
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn blocked_tasks_never_run() {
        let mut s = FairScheduler::new();
        let a = s.add_task(WEIGHT_NICE_0);
        let b = s.add_task(WEIGHT_NICE_0);
        s.set_runnable(a, true);
        s.run_for(Nanos::from_millis(100));
        assert_eq!(s.run_time(b).unwrap(), Nanos::ZERO);
        assert!(s.run_time(a).unwrap() >= Nanos::from_millis(99));
    }

    #[test]
    fn timeslice_shrinks_with_load_then_floors() {
        let mut s = FairScheduler::new();
        let t0 = s.add_task(WEIGHT_NICE_0);
        s.set_runnable(t0, true);
        assert_eq!(s.timeslice(), SCHED_LATENCY);
        for _ in 0..3 {
            let t = s.add_task(WEIGHT_NICE_0);
            s.set_runnable(t, true);
        }
        assert_eq!(s.timeslice(), SCHED_LATENCY / 4);
        for _ in 0..100 {
            let t = s.add_task(WEIGHT_NICE_0);
            s.set_runnable(t, true);
        }
        assert_eq!(s.timeslice(), MIN_GRANULARITY, "floor engaged");
    }

    #[test]
    fn switch_rate_grows_with_runqueue() {
        // The Figure 8 mechanism: more runnable tasks → shorter slices →
        // more context switches per second.
        let mut small = FairScheduler::new();
        for _ in 0..4 {
            let t = small.add_task(WEIGHT_NICE_0);
            small.set_runnable(t, true);
        }
        small.run_for(Nanos::from_secs(1));

        let mut big = FairScheduler::new();
        for _ in 0..64 {
            let t = big.add_task(WEIGHT_NICE_0);
            big.set_runnable(t, true);
        }
        big.run_for(Nanos::from_secs(1));
        assert!(big.switches() as f64 > small.switches() as f64 * 1.9);
    }

    #[test]
    fn woken_sleeper_does_not_monopolize() {
        let mut s = FairScheduler::new();
        let sleeper = s.add_task(WEIGHT_NICE_0);
        let worker = s.add_task(WEIGHT_NICE_0);
        s.set_runnable(worker, true);
        s.run_for(Nanos::from_secs(1));
        // Sleeper wakes with vruntime floored to the worker's, not zero.
        s.set_runnable(sleeper, true);
        s.run_for(Nanos::from_millis(100));
        let sleeper_time = s.run_time(sleeper).unwrap();
        assert!(
            sleeper_time <= Nanos::from_millis(60),
            "sleeper got {sleeper_time}, should not monopolize"
        );
    }

    #[test]
    fn remove_task_clears_current() {
        let mut s = FairScheduler::new();
        let a = s.add_task(WEIGHT_NICE_0);
        s.set_runnable(a, true);
        assert_eq!(s.pick_next(), Some(a));
        s.remove_task(a);
        assert_eq!(s.pick_next(), None);
    }
}
