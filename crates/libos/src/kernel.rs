//! The assembled guest kernel.
//!
//! [`GuestKernel`] ties the subsystems of this crate — process table,
//! fair scheduler, VFS, pipes — into one object that behaves like the
//! kernel of a single container and *accounts simulated time* for every
//! operation it performs, using the deployment backend's cost
//! composition. It is the "X-LibOS as a whole" the examples drive, and a
//! cross-checking ground for the per-operation cost models used by the
//! figure harnesses.

use std::collections::BTreeMap;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::domain::DomainId;
use xc_xen::pgtable::PageTables;

use crate::backend::Backend;
use crate::config::KernelConfig;
use crate::pipe::{Pipe, PipeError};
use crate::process::{Pid, ProcessError, ProcessTable};
use crate::sched::{FairScheduler, TaskId, WEIGHT_NICE_0};
use crate::syscalls::DispatchTable;
use crate::vfs::{Fd, Vfs, VfsError};

/// Identifier of an open pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u32);

/// Errors from kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Process-management failure.
    Process(ProcessError),
    /// Filesystem failure.
    Vfs(VfsError),
    /// Pipe failure.
    Pipe(PipeError),
    /// Unknown pipe id.
    BadPipe(PipeId),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Process(e) => write!(f, "process error: {e}"),
            KernelError::Vfs(e) => write!(f, "vfs error: {e}"),
            KernelError::Pipe(e) => write!(f, "pipe error: {e}"),
            KernelError::BadPipe(id) => write!(f, "bad pipe id {}", id.0),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<ProcessError> for KernelError {
    fn from(e: ProcessError) -> Self {
        KernelError::Process(e)
    }
}
impl From<VfsError> for KernelError {
    fn from(e: VfsError) -> Self {
        KernelError::Vfs(e)
    }
}
impl From<PipeError> for KernelError {
    fn from(e: PipeError) -> Self {
        KernelError::Pipe(e)
    }
}

/// A complete single-container guest kernel with time accounting.
///
/// # Example
///
/// ```
/// use xc_libos::backend::Backend;
/// use xc_libos::config::KernelConfig;
/// use xc_libos::kernel::GuestKernel;
/// use xc_sim::cost::CostModel;
///
/// let costs = CostModel::skylake_cloud();
/// let mut k = GuestKernel::new(Backend::XKernel, KernelConfig::xlibos_default());
/// let nginx = k.spawn("nginx", 1500, &costs)?;
/// let worker = k.fork(nginx, &costs)?;
/// assert_eq!(k.process_count(), 2);
/// k.exit(worker, &costs)?;
/// assert!(k.elapsed().as_nanos() > 0, "every operation was accounted");
/// # Ok::<(), xc_libos::kernel::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GuestKernel {
    backend: Backend,
    config: KernelConfig,
    page_tables: PageTables,
    processes: ProcessTable,
    scheduler: FairScheduler,
    vfs: Vfs,
    pipes: BTreeMap<PipeId, Pipe>,
    next_pipe: u32,
    tasks: BTreeMap<Pid, TaskId>,
    elapsed: Nanos,
    syscalls: u64,
    abom_optimized: bool,
    /// Syscall routes and dispatch cost, resolved once on the first
    /// syscall (the constructor has no cost model in scope). `(backend,
    /// config, abom_optimized)` are immutable after construction, so the
    /// resolution can never go stale.
    dispatch: Option<DispatchTable>,
}

impl GuestKernel {
    /// Boots a kernel for one container (domain id is internal — one
    /// kernel per container).
    pub fn new(backend: Backend, config: KernelConfig) -> Self {
        GuestKernel {
            backend,
            config,
            page_tables: PageTables::new(),
            processes: ProcessTable::new(backend, DomainId(1)),
            scheduler: FairScheduler::new(),
            vfs: Vfs::new(),
            pipes: BTreeMap::new(),
            next_pipe: 0,
            tasks: BTreeMap::new(),
            elapsed: Nanos::ZERO,
            syscalls: 0,
            abom_optimized: backend == Backend::XKernel,
            dispatch: None,
        }
    }

    /// Simulated time consumed by all operations so far.
    pub fn elapsed(&self) -> Nanos {
        self.elapsed
    }

    /// Total syscalls dispatched.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The filesystem (shared by all processes of the container).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    fn charge_syscall(&mut self, costs: &CostModel) {
        self.syscalls += 1;
        let dispatch = self.dispatch.get_or_insert_with(|| {
            DispatchTable::resolve(self.backend, &self.config, self.abom_optimized, costs)
        });
        // The resolution is keyed by construction-time state; callers
        // passing a different cost model mid-lifetime would invalidate
        // it, which debug builds catch here.
        debug_assert_eq!(
            dispatch.dispatch_cost(),
            self.backend
                .syscall_cost(costs, &self.config, self.abom_optimized)
        );
        self.elapsed += dispatch.dispatch_cost();
    }

    /// The resolved per-syscall dispatch table (route + cost per
    /// syscall number), if any syscall has been dispatched yet.
    pub fn dispatch_table(&self) -> Option<&DispatchTable> {
        self.dispatch.as_ref()
    }

    /// Spawns the container's initial (or an additional top-level)
    /// process.
    ///
    /// # Errors
    ///
    /// Propagates process/hypervisor failures.
    pub fn spawn(&mut self, name: &str, pages: u64, costs: &CostModel) -> Result<Pid, KernelError> {
        let (pid, cost) = self
            .processes
            .spawn_init(name, pages, &mut self.page_tables, costs)?;
        self.elapsed += cost;
        let task = self.scheduler.add_task(WEIGHT_NICE_0);
        self.scheduler.set_runnable(task, true);
        self.tasks.insert(pid, task);
        Ok(pid)
    }

    /// `fork()` — one syscall plus the backend's fork work.
    ///
    /// # Errors
    ///
    /// Propagates process/hypervisor failures.
    pub fn fork(&mut self, parent: Pid, costs: &CostModel) -> Result<Pid, KernelError> {
        self.charge_syscall(costs);
        let (child, cost) = self.processes.fork(parent, &mut self.page_tables, costs)?;
        self.elapsed += cost;
        let task = self.scheduler.add_task(WEIGHT_NICE_0);
        self.scheduler.set_runnable(task, true);
        self.tasks.insert(child, task);
        Ok(child)
    }

    /// `execve()`.
    ///
    /// # Errors
    ///
    /// Propagates process failures.
    pub fn exec(
        &mut self,
        pid: Pid,
        name: &str,
        image_pages: u64,
        loader_syscalls: u64,
        costs: &CostModel,
    ) -> Result<(), KernelError> {
        self.charge_syscall(costs);
        let cost = self.processes.exec(
            pid,
            name,
            image_pages,
            loader_syscalls,
            &self.config,
            costs,
            self.abom_optimized,
        )?;
        self.syscalls += loader_syscalls;
        self.elapsed += cost;
        Ok(())
    }

    /// Terminates a process and unschedules its task.
    ///
    /// # Errors
    ///
    /// Propagates process/hypervisor failures.
    pub fn exit(&mut self, pid: Pid, costs: &CostModel) -> Result<(), KernelError> {
        self.charge_syscall(costs);
        let cost = self.processes.exit(pid, &mut self.page_tables, costs)?;
        self.elapsed += cost;
        if let Some(task) = self.tasks.remove(&pid) {
            self.scheduler.remove_task(task);
        }
        Ok(())
    }

    /// Creates a pipe.
    pub fn pipe(&mut self, costs: &CostModel) -> PipeId {
        self.charge_syscall(costs);
        let id = PipeId(self.next_pipe);
        self.next_pipe += 1;
        self.pipes.insert(id, Pipe::new());
        id
    }

    /// Writes to a pipe (one syscall + copy costs).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadPipe`] or pipe-full conditions.
    pub fn write_pipe(
        &mut self,
        pipe: PipeId,
        data: &[u8],
        costs: &CostModel,
    ) -> Result<usize, KernelError> {
        self.charge_syscall(costs);
        let p = self
            .pipes
            .get_mut(&pipe)
            .ok_or(KernelError::BadPipe(pipe))?;
        let (n, cost) = p.write(data, costs)?;
        self.elapsed += cost;
        Ok(n)
    }

    /// Reads from a pipe (one syscall + copy costs).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadPipe`] or pipe-empty conditions.
    pub fn read_pipe(
        &mut self,
        pipe: PipeId,
        buf: &mut [u8],
        costs: &CostModel,
    ) -> Result<usize, KernelError> {
        self.charge_syscall(costs);
        let p = self
            .pipes
            .get_mut(&pipe)
            .ok_or(KernelError::BadPipe(pipe))?;
        let (n, cost) = p.read(buf, costs)?;
        self.elapsed += cost;
        Ok(n)
    }

    /// Opens, creating if necessary (two syscalls worst case).
    ///
    /// # Errors
    ///
    /// VFS failures.
    pub fn open(&mut self, path: &str, costs: &CostModel) -> Result<Fd, KernelError> {
        self.charge_syscall(costs);
        if self.vfs.size(path).is_err() {
            self.vfs.create(path)?;
        }
        Ok(self.vfs.open(path)?)
    }

    /// `write()` to a file.
    ///
    /// # Errors
    ///
    /// VFS failures.
    pub fn write(&mut self, fd: Fd, data: &[u8], costs: &CostModel) -> Result<(), KernelError> {
        self.charge_syscall(costs);
        let cost = self.vfs.write(fd, data, costs)?;
        self.elapsed += cost.scale(self.config.kernel_work_factor());
        Ok(())
    }

    /// `read()` from a file.
    ///
    /// # Errors
    ///
    /// VFS failures.
    pub fn read(
        &mut self,
        fd: Fd,
        buf: &mut [u8],
        costs: &CostModel,
    ) -> Result<usize, KernelError> {
        self.charge_syscall(costs);
        let (n, cost) = self.vfs.read(fd, buf, costs)?;
        self.elapsed += cost.scale(self.config.kernel_work_factor());
        Ok(n)
    }

    /// Runs the scheduler for one quantum: picks the next runnable task,
    /// charges the context switch (if the task changed), and accounts the
    /// slice. Returns the pid that ran, if any.
    pub fn run_quantum(&mut self, costs: &CostModel) -> Option<Pid> {
        let before = self.scheduler.switches();
        let task = self.scheduler.pick_next()?;
        if self.scheduler.switches() > before {
            self.elapsed += self
                .backend
                .context_switch_cost(costs, self.scheduler.runnable_count());
        }
        let slice = self.scheduler.timeslice();
        self.scheduler.account(task, slice);
        self.elapsed += slice;
        self.tasks
            .iter()
            .find(|(_, t)| **t == task)
            .map(|(pid, _)| *pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(backend: Backend) -> GuestKernel {
        let config = match backend {
            Backend::Native => KernelConfig::docker_default(),
            Backend::XenPv => KernelConfig::pv_guest_default(),
            Backend::XKernel => KernelConfig::xlibos_default(),
        };
        GuestKernel::new(backend, config)
    }

    #[test]
    fn dispatch_table_resolves_lazily_and_charges_identically() {
        let costs = CostModel::skylake_cloud();
        for backend in [Backend::Native, Backend::XenPv, Backend::XKernel] {
            let mut k = kernel(backend);
            assert!(k.dispatch_table().is_none(), "resolved only on demand");
            let init = k.spawn("a", 100, &costs).unwrap();
            let before = k.elapsed();
            let _ = k.fork(init, &costs).unwrap();
            let table = k.dispatch_table().expect("resolved by first syscall");
            // The cached cost is exactly the per-call composition the
            // slow path would have charged.
            let config = match backend {
                Backend::Native => KernelConfig::docker_default(),
                Backend::XenPv => KernelConfig::pv_guest_default(),
                Backend::XKernel => KernelConfig::xlibos_default(),
            };
            let expected = backend.syscall_cost(&costs, &config, backend == Backend::XKernel);
            assert_eq!(table.dispatch_cost(), expected);
            assert!(k.elapsed() >= before + expected);
        }
    }

    #[test]
    fn process_lifecycle_accounts_time() {
        let costs = CostModel::skylake_cloud();
        let mut k = kernel(Backend::XKernel);
        let init = k.spawn("nginx", 1500, &costs).unwrap();
        let t0 = k.elapsed();
        let worker = k.fork(init, &costs).unwrap();
        assert!(k.elapsed() > t0);
        k.exec(worker, "php-fpm", 800, 120, &costs).unwrap();
        assert_eq!(k.process_count(), 2);
        k.exit(worker, &costs).unwrap();
        assert_eq!(k.process_count(), 1);
        assert!(k.syscalls() >= 123, "fork + exec(+loader) + exit");
    }

    #[test]
    fn pipe_ping_pong_through_kernel() {
        let costs = CostModel::skylake_cloud();
        let mut k = kernel(Backend::XKernel);
        let a = k.spawn("a", 100, &costs).unwrap();
        let _b = k.fork(a, &costs).unwrap();
        let pipe = k.pipe(&costs);
        let mut buf = [0u8; 4];
        for _ in 0..10 {
            assert_eq!(k.write_pipe(pipe, b"ping", &costs).unwrap(), 4);
            assert_eq!(k.read_pipe(pipe, &mut buf, &costs).unwrap(), 4);
            assert_eq!(&buf, b"ping");
        }
        assert!(matches!(
            k.read_pipe(pipe, &mut buf, &costs),
            Err(KernelError::Pipe(PipeError::WouldBlockEmpty))
        ));
    }

    #[test]
    fn file_io_through_kernel() {
        let costs = CostModel::skylake_cloud();
        let mut k = kernel(Backend::Native);
        k.spawn("cp", 100, &costs).unwrap();
        let fd = k.open("/data", &costs).unwrap();
        k.write(fd, &[7u8; 4096], &costs).unwrap();
        assert_eq!(k.vfs_mut().size("/data").unwrap(), 4096);
    }

    #[test]
    fn same_work_cheaper_on_x_libos_for_syscall_heavy_load() {
        let costs = CostModel::skylake_cloud();
        let mut native = kernel(Backend::Native);
        let mut xk = kernel(Backend::XKernel);
        for k in [&mut native, &mut xk] {
            k.spawn("worker", 100, &costs).unwrap();
            let pipe = k.pipe(&costs);
            let mut buf = [0u8; 64];
            for _ in 0..500 {
                k.write_pipe(pipe, &[1u8; 64], &costs).unwrap();
                k.read_pipe(pipe, &mut buf, &costs).unwrap();
            }
        }
        assert_eq!(native.syscalls(), xk.syscalls(), "identical op streams");
        assert!(
            xk.elapsed() < native.elapsed(),
            "X-LibOS {} vs native {}",
            xk.elapsed(),
            native.elapsed()
        );
    }

    #[test]
    fn scheduler_quantum_rotates_processes() {
        let costs = CostModel::skylake_cloud();
        let mut k = kernel(Backend::XKernel);
        let a = k.spawn("a", 100, &costs).unwrap();
        let b = k.fork(a, &costs).unwrap();
        let mut ran = std::collections::BTreeSet::new();
        for _ in 0..4 {
            ran.insert(k.run_quantum(&costs).expect("runnable"));
        }
        assert!(
            ran.contains(&a) && ran.contains(&b),
            "both scheduled: {ran:?}"
        );
    }

    #[test]
    fn bad_pipe_rejected() {
        let costs = CostModel::skylake_cloud();
        let mut k = kernel(Backend::Native);
        assert!(matches!(
            k.write_pipe(PipeId(9), b"x", &costs),
            Err(KernelError::BadPipe(PipeId(9)))
        ));
    }
}
