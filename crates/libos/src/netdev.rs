//! A working paravirtual network device: netfront + netback.
//!
//! Ties together every §4.1 transport mechanism — XenStore negotiation,
//! grant tables, shared descriptor rings, event channels — into a device
//! pair that really moves packet bytes from a guest to the driver
//! domain's "wire". The figure harnesses only need the *cost* of this
//! path (modelled in [`crate::net`]); this module exists to demonstrate
//! that the substrate pieces compose into the actual protocol, and to
//! let integration tests validate notification and copy counts against
//! the cost model's assumptions.

use std::collections::BTreeMap;

use xc_xen::domain::DomainId;
use xc_xen::error::XenError;
use xc_xen::events::EventChannels;
use xc_xen::grant::{GrantAccess, GrantTable};
use xc_xen::ring::{Descriptor, SharedRing};
use xc_xen::xenstore::XenStore;

/// A packet buffer registered with the front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TxBuffer {
    gref: u32,
    data: Vec<u8>,
}

/// The connected device pair (front-end in the guest, back-end in the
/// driver domain).
///
/// # Example
///
/// ```
/// use xc_libos::netdev::VirtualNic;
/// use xc_xen::domain::DomainId;
///
/// let mut nic = VirtualNic::connect(DomainId(3), DomainId(2))?;
/// nic.send(b"GET / HTTP/1.1\r\n")?;
/// let delivered = nic.backend_poll()?;
/// assert_eq!(delivered, vec![b"GET / HTTP/1.1\r\n".to_vec()]);
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug)]
pub struct VirtualNic {
    frontend: DomainId,
    backend: DomainId,
    ring: SharedRing,
    grants: GrantTable,
    events: EventChannels,
    store: XenStore,
    fe_port: u32,
    be_port: u32,
    next_gref_id: u64,
    tx_buffers: BTreeMap<u32, TxBuffer>,
    wire: Vec<Vec<u8>>,
    notifications: u64,
}

impl VirtualNic {
    /// Performs the full connect handshake: XenStore negotiation, ring
    /// setup, event-channel bind.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn connect(frontend: DomainId, backend: DomainId) -> Result<Self, XenError> {
        let mut store = XenStore::new();
        let mut events = EventChannels::new();
        let dom0 = DomainId(0);

        // Toolstack wires the two ends together in the store.
        let fe_path = format!("/local/domain/{}/device/vif/0", frontend.0);
        let be_path = format!("/local/domain/{}/backend/vif/{}/0", backend.0, frontend.0);
        store.write(dom0, &format!("{fe_path}/backend"), &be_path)?;
        store.write(dom0, &format!("{be_path}/frontend"), &fe_path)?;

        // Backend watches the frontend's directory for the ring details.
        store.watch(backend, &fe_path, "fe-ready")?;

        // Frontend allocates the event channel pair and publishes.
        let fe_port = events.alloc_unbound(frontend)?;
        let be_port = events.alloc_unbound(backend)?;
        events.bind(frontend, fe_port, backend, be_port)?;
        store.write(
            frontend,
            &format!("{fe_path}/event-channel"),
            &fe_port.to_string(),
        )?;
        store.set_perm(frontend, &format!("{fe_path}/event-channel"), backend)?;
        store.write(frontend, &format!("{fe_path}/ring-ref"), "1")?;
        store.set_perm(frontend, &format!("{fe_path}/ring-ref"), backend)?;

        // Backend observes the handshake and connects.
        let fired = store.take_events(backend);
        if fired.is_empty() {
            return Err(XenError::BadEventPort(fe_port));
        }
        store.write(
            backend,
            &format!(
                "/local/domain/{}/backend/vif/{}/0/state",
                backend.0, frontend.0
            ),
            "connected",
        )?;

        Ok(VirtualNic {
            frontend,
            backend,
            ring: SharedRing::new(256)?,
            grants: GrantTable::new(),
            events,
            store,
            fe_port,
            be_port,
            next_gref_id: 0,
            tx_buffers: BTreeMap::new(),
            wire: Vec::new(),
            notifications: 0,
        })
    }

    /// Front-end: transmits one packet. Grants the buffer, queues a
    /// descriptor, and notifies if the ring says so.
    ///
    /// # Errors
    ///
    /// Ring-full backpressure or grant failures.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), XenError> {
        let frame = 0x1000 + self.next_gref_id;
        self.next_gref_id += 1;
        let gref = self
            .grants
            .grant(self.frontend, self.backend, frame, GrantAccess::ReadOnly)?;
        self.tx_buffers.insert(
            gref,
            TxBuffer {
                gref,
                data: payload.to_vec(),
            },
        );
        let notify = self.ring.push_request(Descriptor {
            id: u64::from(gref),
            len: payload.len() as u32,
            gref,
        })?;
        if notify {
            self.events.send(self.frontend, self.fe_port)?;
            self.notifications += 1;
        }
        Ok(())
    }

    /// Back-end: drains pending events and the request ring, copying
    /// each granted buffer to the wire and completing the descriptor.
    /// Returns the packets delivered this poll.
    ///
    /// # Errors
    ///
    /// Grant/ring failures.
    pub fn backend_poll(&mut self) -> Result<Vec<Vec<u8>>, XenError> {
        // Consume the pending event (level-triggered).
        let _ = self.events.take_pending(self.backend);
        let mut delivered = Vec::new();
        while let Some(req) = self.ring.pop_request() {
            // Hypervisor-mediated copy of the granted frame.
            self.grants
                .copy(self.backend, req.gref, u64::from(req.len))?;
            let buf = self
                .tx_buffers
                .remove(&req.gref)
                .ok_or(XenError::BadGrantRef(req.gref))?;
            delivered.push(buf.data.clone());
            self.wire.push(buf.data);
            // Complete back to the front-end.
            let notify = self.ring.push_response(Descriptor {
                id: req.id,
                len: req.len,
                gref: req.gref,
            })?;
            if notify {
                self.events.send(self.backend, self.be_port)?;
            }
        }
        Ok(delivered)
    }

    /// Front-end: reaps completions, revoking grants. Returns how many
    /// buffers were reclaimed.
    ///
    /// # Errors
    ///
    /// Grant failures.
    pub fn frontend_reap(&mut self) -> Result<u32, XenError> {
        let _ = self.events.take_pending(self.frontend);
        let mut reaped = 0;
        while let Some(rsp) = self.ring.pop_response() {
            self.grants.revoke(self.frontend, rsp.gref)?;
            reaped += 1;
        }
        Ok(reaped)
    }

    /// Everything that has reached the wire, in order.
    pub fn wire(&self) -> &[Vec<u8>] {
        &self.wire
    }

    /// Event-channel notifications the front-end actually sent (the
    /// ring's suppression keeps this far below the packet count under
    /// batching).
    pub fn notifications(&self) -> u64 {
        self.notifications
    }

    /// Bytes moved by hypervisor grant copies.
    pub fn bytes_copied(&self) -> u64 {
        self.grants.bytes_copied()
    }

    /// The negotiated backend state in XenStore.
    pub fn backend_state(&self) -> Option<String> {
        self.store
            .read(
                DomainId(0),
                &format!(
                    "/local/domain/{}/backend/vif/{}/0/state",
                    self.backend.0, self.frontend.0
                ),
            )
            .ok()
            .flatten()
            .map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> VirtualNic {
        VirtualNic::connect(DomainId(3), DomainId(2)).expect("handshake")
    }

    #[test]
    fn handshake_leaves_connected_state() {
        let n = nic();
        assert_eq!(n.backend_state().as_deref(), Some("connected"));
    }

    #[test]
    fn bytes_travel_exactly() {
        let mut n = nic();
        n.send(b"hello").unwrap();
        n.send(b"world!").unwrap();
        let got = n.backend_poll().unwrap();
        assert_eq!(got, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(n.bytes_copied(), 11);
        assert_eq!(n.frontend_reap().unwrap(), 2);
    }

    #[test]
    fn batching_suppresses_notifications() {
        let mut n = nic();
        for i in 0..64u32 {
            n.send(&i.to_le_bytes()).unwrap();
        }
        // One wake-up for the whole batch.
        assert_eq!(n.notifications(), 1);
        assert_eq!(n.backend_poll().unwrap().len(), 64);
        assert_eq!(n.frontend_reap().unwrap(), 64);
    }

    #[test]
    fn ring_backpressure_propagates() {
        let mut n = nic();
        for i in 0..256u32 {
            n.send(&i.to_le_bytes()).unwrap();
        }
        assert!(n.send(b"overflow").is_err(), "ring full");
        n.backend_poll().unwrap();
        n.frontend_reap().unwrap();
        n.send(b"after drain").unwrap();
    }

    #[test]
    fn grants_are_reclaimed() {
        let mut n = nic();
        for round in 0..10 {
            n.send(format!("packet {round}").as_bytes()).unwrap();
            n.backend_poll().unwrap();
            n.frontend_reap().unwrap();
        }
        // All grants revoked after each round trip.
        assert_eq!(n.grants.live_grants(), 0);
        assert_eq!(n.wire().len(), 10);
    }
}
