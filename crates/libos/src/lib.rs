//! # xc-libos — Linux as a kernel and as a LibOS
//!
//! The paper's thesis (§3.2) is that the best fully-compatible LibOS *is*
//! the Linux kernel, rehosted on the X-Kernel ABI. This crate models the
//! guest-kernel layer in all three deployments the evaluation compares:
//!
//! * **Native** — Linux on hardware (the Docker baseline),
//! * **Xen PV** — unmodified Linux as a 64-bit PV guest (Xen-Container /
//!   LightVM), paying the §4.1 syscall-forwarding tax,
//! * **X-LibOS** — the modified kernel sharing its processes' privilege
//!   level, with function-call syscalls and global-bit mappings.
//!
//! Modules:
//!
//! * [`config`] — kernel configuration: SMP, the Meltdown/KPTI patch,
//!   loadable modules (IPVS for Figure 9), dedicated-kernel tuning (§3.2),
//! * [`backend`] — the [`Backend`] enum composing
//!   syscall / context-switch / fork / exec costs for the three
//!   deployments,
//! * [`process`] — processes, threads, fork/exec/exit with address-space
//!   bookkeeping through `xc-xen`,
//! * [`sched`] — a CFS-style fair scheduler (the *inner* level of
//!   Figure 8's hierarchy),
//! * [`vfs`] — a small in-memory VFS with a page-cache cost model
//!   (File Copy microbenchmark),
//! * [`pipe`] — kernel pipes (Pipe Throughput and Context Switching
//!   microbenchmarks),
//! * [`net`] — the network stack path model (iperf, macrobenchmarks,
//!   Figure 9 load balancing).
//!
//! # Example
//!
//! ```
//! use xc_libos::backend::Backend;
//! use xc_libos::config::KernelConfig;
//! use xc_sim::cost::CostModel;
//!
//! let costs = CostModel::skylake_cloud();
//! let patched = KernelConfig::docker_default();          // KPTI on
//! let xlibos = KernelConfig::xlibos_default();           // KPTI pointless
//!
//! let docker = Backend::Native.syscall_cost(&costs, &patched, false);
//! let xc = Backend::XKernel.syscall_cost(&costs, &xlibos, true);
//! assert!(docker.as_nanos() > 20 * xc.as_nanos()); // the 27× headroom
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod kernel;
pub mod net;
pub mod netdev;
pub mod pipe;
pub mod process;
pub mod sched;
pub mod syscalls;
pub mod vfs;

pub use backend::Backend;
pub use config::KernelConfig;
pub use kernel::GuestKernel;
pub use process::{Pid, ProcessTable};
pub use sched::FairScheduler;
pub use syscalls::{DispatchTable, SyscallRoute};
