//! Property-based tests for the guest-kernel substrate: CFS fairness,
//! VFS/pipe data integrity, and cost-model monotonicity.

use proptest::prelude::*;
use xc_libos::backend::Backend;
use xc_libos::config::KernelConfig;
use xc_libos::net::{NetPath, NetStack};
use xc_libos::pipe::Pipe;
use xc_libos::sched::{FairScheduler, WEIGHT_NICE_0};
use xc_libos::vfs::Vfs;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

proptest! {
    /// CFS gives weight-proportional shares for arbitrary weights.
    #[test]
    fn cfs_weighted_fairness(weights in proptest::collection::vec(1u32..8, 2..6)) {
        let mut s = FairScheduler::new();
        let tasks: Vec<_> = weights
            .iter()
            .map(|w| s.add_task(w * WEIGHT_NICE_0))
            .collect();
        for &t in &tasks {
            s.set_runnable(t, true);
        }
        s.run_for(Nanos::from_secs(2));
        let total_weight: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        let total_time: f64 = tasks
            .iter()
            .map(|&t| s.run_time(t).unwrap().as_secs_f64())
            .sum();
        for (&t, &w) in tasks.iter().zip(&weights) {
            let share = s.run_time(t).unwrap().as_secs_f64() / total_time;
            let expect = f64::from(w) / total_weight;
            prop_assert!(
                (share - expect).abs() < 0.05,
                "weight {w}: share {share:.3} expect {expect:.3}"
            );
        }
    }

    /// Pipes are exact FIFOs: any interleaving of writes and reads
    /// reproduces the written byte stream in order.
    #[test]
    fn pipe_preserves_byte_stream(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..256),
        1..32,
    )) {
        let costs = CostModel::skylake_cloud();
        let mut pipe = Pipe::with_capacity(64 * 1024);
        let mut written = Vec::new();
        let mut read_back = Vec::new();
        let mut buf = [0u8; 128];
        for chunk in &chunks {
            let mut offset = 0;
            while offset < chunk.len() {
                match pipe.write(&chunk[offset..], &costs) {
                    Ok((n, _)) => {
                        written.extend_from_slice(&chunk[offset..offset + n]);
                        offset += n;
                    }
                    Err(_) => {
                        // Full: drain some.
                        let (n, _) = pipe.read(&mut buf, &costs).unwrap();
                        read_back.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        while let Ok((n, _)) = pipe.read(&mut buf, &costs) {
            read_back.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(read_back, written);
    }

    /// The VFS stores and returns exact bytes at arbitrary offsets.
    #[test]
    fn vfs_read_back_exact(
        writes in proptest::collection::vec(
            (0usize..4096, proptest::collection::vec(any::<u8>(), 1..512)),
            1..16,
        )
    ) {
        let costs = CostModel::skylake_cloud();
        let mut fs = Vfs::new();
        fs.create("/f").unwrap();
        let fd = fs.open("/f").unwrap();
        let mut shadow: Vec<u8> = Vec::new();
        for (offset, data) in &writes {
            if shadow.len() < offset + data.len() {
                shadow.resize(offset + data.len(), 0);
            }
            shadow[*offset..offset + data.len()].copy_from_slice(data);
            fs.seek(fd, *offset).unwrap();
            fs.write(fd, data, &costs).unwrap();
        }
        fs.seek(fd, 0).unwrap();
        let mut out = vec![0u8; shadow.len()];
        let mut pos = 0;
        while pos < out.len() {
            let (n, _) = fs.read(fd, &mut out[pos..], &costs).unwrap();
            if n == 0 { break; }
            pos += n;
        }
        prop_assert_eq!(out, shadow);
    }

    /// Network costs are monotone in payload size for every path.
    #[test]
    fn net_costs_monotone(small in 1u64..32_768, delta in 1u64..32_768) {
        let costs = CostModel::skylake_cloud();
        for path in [
            NetPath::NativeBridge { iptables_rules: 1 },
            NetPath::KernelForward { responses_return: true },
        ] {
            let stack = NetStack::new(Backend::Native, KernelConfig::docker_default(), path);
            prop_assert!(stack.send_cost(&costs, small + delta) >= stack.send_cost(&costs, small));
            prop_assert!(stack.recv_cost(&costs, small + delta) >= stack.recv_cost(&costs, small));
        }
    }

    /// Syscall dispatch cost ordering holds for any KPTI combination:
    /// optimized X-Kernel ≤ native ≤ PV-forwarded.
    #[test]
    fn backend_ordering_stable(kpti in any::<bool>()) {
        let costs = CostModel::skylake_cloud();
        let mut cfg = KernelConfig::docker_default();
        cfg.kpti = kpti;
        let xk = Backend::XKernel.syscall_cost(&costs, &cfg, true);
        let native = Backend::Native.syscall_cost(&costs, &cfg, false);
        let pv = Backend::XenPv.syscall_cost(&costs, &cfg, false);
        prop_assert!(xk < native);
        prop_assert!(native < pv);
    }
}
