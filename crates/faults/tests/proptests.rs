//! Property-based tests for the chaos world's arena recycling (enable
//! with `--features proptest`).
//!
//! The unit suite pins recycling at one fixed configuration; the
//! property here quantifies over plans and shapes: a [`ChaosArena`]
//! recycled across a whole random sequence of runs must reproduce, for
//! every run, the exact [`ChaosResult`] a factory-fresh arena produces —
//! every counter, every histogram bucket, every conservation ledger.
//! That is the contract that makes the thread-local arena in
//! `run_chaos` safe: whatever ran on a worker thread before, the bytes
//! match.

use proptest::prelude::*;
use xc_faults::chaos::{run_chaos_in, ChaosArena, ChaosParams};
use xc_faults::plan::{FaultPlan, FaultRates};
use xc_sim::time::Nanos;

/// A run shape the chaos world's timing asserts always accept: only
/// knobs independent of the resend-timeout inequality vary; delays,
/// retry schedule, and timers stay at their defaults.
fn arb_params() -> impl Strategy<Value = ChaosParams> {
    (
        1usize..24,
        1usize..6,
        2u64..20,
        prop_oneof![Just(0u64), Just(64u64)],
    )
        .prop_map(
            |(connections, parallelism, duration_ms, corpus_sites)| ChaosParams {
                connections,
                parallelism,
                duration: Nanos::from_millis(duration_ms),
                corpus_sites,
                ..ChaosParams::default()
            },
        )
}

fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(0.002), Just(0.01), Just(0.05)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arena reuse is observationally invisible: replaying a random
    /// sequence of chaos runs through one continuously-recycled arena
    /// yields bit-identical results to giving every run a fresh one.
    #[test]
    fn chaos_arena_reuse_matches_fresh_worlds(
        runs in proptest::collection::vec(
            (arb_params(), arb_rate(), any::<u64>(), any::<u64>()),
            1..5,
        ),
    ) {
        let mut recycled = ChaosArena::new();
        for (params, rate, cell, jitter_seed) in runs {
            let plan = || FaultPlan::for_cell(2019, cell, FaultRates::scaled(rate));
            let reused = run_chaos_in(&mut recycled, params, plan(), jitter_seed);
            let fresh = run_chaos_in(&mut ChaosArena::new(), params, plan(), jitter_seed);
            prop_assert_eq!(&reused, &fresh);
            prop_assert!(reused.check_conservation().is_ok());
        }
    }
}
