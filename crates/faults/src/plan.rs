//! Seeded, deterministic fault schedules.
//!
//! A [`FaultPlan`] is a decision oracle: callers ask "does fault kind K
//! fire here?" at each potential injection point and the plan answers
//! from K's own RNG substream. Because each kind owns an independent
//! stream (split with the same SplitMix64 scrambling as
//! [`Rng::substream`]), the answer sequence for a kind depends only on
//! `(plan seed, kind, occurrence index)` — never on how draws of
//! *different* kinds interleave, never on worker count, never on
//! shard-merge order. That is what makes a chaos run byte-identical at
//! `--jobs 1` and `--jobs N`.

use xc_sim::rng::Rng;
use xc_sim::time::Nanos;
use xc_xen::XenError;

/// Number of typed fault classes (the length of the per-kind arrays).
pub const FAULT_KINDS: usize = 8;

/// The typed fault classes the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultKind {
    /// A hypercall fails transiently with a [`XenError`]; the caller
    /// retries with bounded exponential backoff.
    HypercallTransient = 0,
    /// An event-channel notification is lost before the guest observes
    /// it (the pending bit is cleared via
    /// [`xc_xen::events::EventChannels::drop_pending`]).
    EventDrop = 1,
    /// An event-channel delivery is delayed by a bounded random amount.
    EventDelay = 2,
    /// A grant is revoked mid-transfer; the mapper sees
    /// [`XenError::BadGrantRef`] and must re-negotiate.
    GrantRevoke = 3,
    /// ABOM pre-flight verification vetoes a site
    /// (`PatchOutcome::VerifyRejected`): it stays on the trap path.
    VerifyReject = 4,
    /// An applied ABOM patch fails post-patch checks and is rolled back
    /// ([`xc_abom::patcher::Abom::rollback`]); the site is permanently
    /// demoted to the trap route.
    PatchFail = 5,
    /// A vCPU stops making progress until the watchdog restarts the
    /// domain.
    VcpuStall = 6,
    /// The whole domain crashes; detected at the next watchdog scan and
    /// restarted.
    DomainCrash = 7,
}

impl FaultKind {
    /// Every kind, in stream order.
    pub const ALL: [FaultKind; FAULT_KINDS] = [
        FaultKind::HypercallTransient,
        FaultKind::EventDrop,
        FaultKind::EventDelay,
        FaultKind::GrantRevoke,
        FaultKind::VerifyReject,
        FaultKind::PatchFail,
        FaultKind::VcpuStall,
        FaultKind::DomainCrash,
    ];

    /// Dense index of this kind (its stream and counter slot).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::HypercallTransient => "hypercall_transient",
            FaultKind::EventDrop => "event_drop",
            FaultKind::EventDelay => "event_delay",
            FaultKind::GrantRevoke => "grant_revoke",
            FaultKind::VerifyReject => "verify_reject",
            FaultKind::PatchFail => "patch_fail",
            FaultKind::VcpuStall => "vcpu_stall",
            FaultKind::DomainCrash => "domain_crash",
        }
    }
}

/// Per-kind injection probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    rates: [f64; FAULT_KINDS],
}

/// Relative weight of each kind under [`FaultRates::scaled`]: frequent
/// transient faults, rare stalls, rarer crashes — roughly the shape of
/// production incident ladders.
const SCALE_WEIGHTS: [f64; FAULT_KINDS] = [1.0, 0.8, 1.0, 0.5, 2.0, 1.0, 0.02, 0.005];

impl FaultRates {
    /// No faults at all — every `should_inject` answers `false` without
    /// consuming a draw, so a disabled plan perturbs nothing.
    pub fn disabled() -> Self {
        FaultRates {
            rates: [0.0; FAULT_KINDS],
        }
    }

    /// One knob for the whole ladder: each kind fires with probability
    /// `rate × weight` (weights above, clamped to `[0, 0.95]`). This is
    /// the `--fault-rate` axis the `chaos_study` harness sweeps.
    pub fn scaled(rate: f64) -> Self {
        let mut rates = [0.0; FAULT_KINDS];
        for (slot, w) in rates.iter_mut().zip(SCALE_WEIGHTS) {
            *slot = (rate * w).clamp(0.0, 0.95);
        }
        FaultRates { rates }
    }

    /// Overrides one kind's rate.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// This kind's injection probability.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// Whether any kind can fire.
    pub fn any_enabled(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }
}

/// Draw/injection counters per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Decisions requested per kind.
    pub drawn: [u64; FAULT_KINDS],
    /// Decisions that injected a fault, per kind.
    pub injected: [u64; FAULT_KINDS],
}

impl FaultStats {
    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Faults injected for one kind.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Accumulates another run's counters (shard merges).
    pub fn merge(&mut self, other: &FaultStats) {
        for k in 0..FAULT_KINDS {
            self.drawn[k] += other.drawn[k];
            self.injected[k] += other.injected[k];
        }
    }
}

/// Base stream id for per-kind substreams; any constant works — the
/// substream scrambler decorrelates neighbors — but a distinctive one
/// keeps fault streams disjoint from the shard streams harnesses open
/// at small indices.
const FAULT_STREAM_BASE: u64 = 0xFA17_0000_0000_0000;

/// A seeded, deterministic fault-decision oracle (see the module docs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rates: FaultRates,
    streams: [Rng; FAULT_KINDS],
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan rooted at `seed` with the given rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            rates,
            streams: std::array::from_fn(|k| Rng::substream(seed, FAULT_STREAM_BASE + k as u64)),
            stats: FaultStats::default(),
        }
    }

    /// The plan for grid cell `cell` of an experiment rooted at `seed`:
    /// a pure function of `(seed, cell)`, so a sharded sweep gets the
    /// same schedule per cell at any worker count and in any claim
    /// order.
    pub fn for_cell(seed: u64, cell: u64, rates: FaultRates) -> Self {
        let mut base = Rng::substream(seed, cell);
        FaultPlan::new(base.next_u64(), rates)
    }

    /// A plan that never fires (and consumes no draws).
    pub fn disabled(seed: u64) -> Self {
        FaultPlan::new(seed, FaultRates::disabled())
    }

    /// Whether any fault kind can fire.
    pub fn enabled(&self) -> bool {
        self.rates.any_enabled()
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Decides whether the next potential fault of `kind` fires.
    ///
    /// Rate-0 kinds never consume a draw ([`Rng::chance`] short-circuits
    /// on `p <= 0`), so adding injection points to code exercised with a
    /// disabled plan cannot perturb any other stream.
    pub fn should_inject(&mut self, kind: FaultKind) -> bool {
        let k = kind.index();
        self.stats.drawn[k] += 1;
        let hit = self.streams[k].chance(self.rates.rates[k]);
        if hit {
            self.stats.injected[k] += 1;
        }
        hit
    }

    /// A delivery delay in `[lo, hi]`, drawn from the
    /// [`FaultKind::EventDelay`] stream.
    pub fn delay_between(&mut self, lo: Nanos, hi: Nanos) -> Nanos {
        let span = hi.saturating_sub(lo).as_nanos();
        let extra = self.streams[FaultKind::EventDelay.index()].next_below(span + 1);
        lo.saturating_add(Nanos::from_nanos(extra))
    }

    /// The [`XenError`] a transiently failing hypercall reports, drawn
    /// from the [`FaultKind::HypercallTransient`] stream.
    pub fn transient_error(&mut self) -> XenError {
        match self.streams[FaultKind::HypercallTransient.index()].next_below(3) {
            0 => XenError::NoFreePorts,
            1 => XenError::GrantTableFull,
            _ => XenError::BadPageTableUpdate {
                reason: "transient validation failure",
            },
        }
    }

    /// Accumulated draw/injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// FNV-1a digest of the next `draws_per_kind` decisions of every
    /// kind plus a delay and error draw — a compact fingerprint of the
    /// schedule. Pure in `(seed, rates, draws_per_kind)`; the
    /// determinism suite compares digests across worker counts and
    /// shard-merge orders.
    pub fn schedule_digest(seed: u64, rates: FaultRates, draws_per_kind: u32) -> u64 {
        let mut plan = FaultPlan::new(seed, rates);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for kind in FaultKind::ALL {
            for _ in 0..draws_per_kind {
                h = fnv_fold(h, u64::from(plan.should_inject(kind)));
            }
        }
        h = fnv_fold(
            h,
            plan.delay_between(Nanos::from_nanos(1), Nanos::from_micros(100))
                .as_nanos(),
        );
        let err_tag = match plan.transient_error() {
            XenError::NoFreePorts => 0,
            XenError::GrantTableFull => 1,
            _ => 2,
        };
        h = fnv_fold(h, err_tag);
        h
    }
}

/// One FNV-1a fold step over a `u64` word.
pub(crate) fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn kind_streams_are_independent() {
        let rates = FaultRates::scaled(0.2);
        let mut a = FaultPlan::new(7, rates);
        let mut b = FaultPlan::new(7, rates);
        // Plan A interleaves two kinds; plan B draws them in separate
        // bursts. Each kind's decision sequence must match regardless.
        let mut a_drop = Vec::new();
        let mut a_grant = Vec::new();
        for _ in 0..64 {
            a_drop.push(a.should_inject(FaultKind::EventDrop));
            a_grant.push(a.should_inject(FaultKind::GrantRevoke));
        }
        let b_drop: Vec<bool> = (0..64)
            .map(|_| b.should_inject(FaultKind::EventDrop))
            .collect();
        let b_grant: Vec<bool> = (0..64)
            .map(|_| b.should_inject(FaultKind::GrantRevoke))
            .collect();
        assert_eq!(a_drop, b_drop);
        assert_eq!(a_grant, b_grant);
    }

    #[test]
    fn disabled_plan_never_fires_and_draws_nothing_from_streams() {
        let mut plan = FaultPlan::disabled(42);
        for kind in FaultKind::ALL {
            for _ in 0..100 {
                assert!(!plan.should_inject(kind));
            }
        }
        assert!(!plan.enabled());
        assert_eq!(plan.stats().injected_total(), 0);
        assert_eq!(plan.stats().drawn[0], 100);
    }

    #[test]
    fn rates_shape_injection_frequency() {
        let mut plan = FaultPlan::new(11, FaultRates::scaled(0.5));
        let mut transient = 0;
        let mut crashes = 0;
        for _ in 0..4000 {
            transient += u64::from(plan.should_inject(FaultKind::HypercallTransient));
            crashes += u64::from(plan.should_inject(FaultKind::DomainCrash));
        }
        // 0.5 × 1.0 vs 0.5 × 0.005: the ladder must be steep.
        assert!(transient > 1500, "transient={transient}");
        assert!(crashes < 60, "crashes={crashes}");
        assert_eq!(
            plan.stats().injected_of(FaultKind::HypercallTransient),
            transient
        );
    }

    #[test]
    fn digest_is_pure_and_seed_sensitive() {
        let rates = FaultRates::scaled(0.1);
        let a = FaultPlan::schedule_digest(1, rates, 256);
        assert_eq!(a, FaultPlan::schedule_digest(1, rates, 256));
        assert_ne!(a, FaultPlan::schedule_digest(2, rates, 256));
        assert_ne!(
            a,
            FaultPlan::schedule_digest(1, FaultRates::scaled(0.2), 256)
        );
    }

    #[test]
    fn for_cell_is_a_pure_function_of_seed_and_cell() {
        let rates = FaultRates::scaled(0.3);
        let mut a = FaultPlan::for_cell(2019, 5, rates);
        let mut b = FaultPlan::for_cell(2019, 5, rates);
        let mut c = FaultPlan::for_cell(2019, 6, rates);
        let seq = |p: &mut FaultPlan| -> Vec<bool> {
            (0..128)
                .map(|_| p.should_inject(FaultKind::EventDrop))
                .collect()
        };
        assert_eq!(seq(&mut a), seq(&mut b));
        assert_ne!(seq(&mut a), seq(&mut c), "cells must differ");
    }

    #[test]
    fn delay_and_error_draws_stay_in_bounds() {
        let mut plan = FaultPlan::new(3, FaultRates::scaled(0.5));
        for _ in 0..200 {
            let d = plan.delay_between(Nanos::from_nanos(10), Nanos::from_micros(5));
            assert!(d >= Nanos::from_nanos(10) && d <= Nanos::from_micros(5));
        }
        let e = plan.transient_error();
        assert!(matches!(
            e,
            XenError::NoFreePorts | XenError::GrantTableFull | XenError::BadPageTableUpdate { .. }
        ));
    }
}
