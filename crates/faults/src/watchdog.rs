//! Progress-based stuck-domain detection.
//!
//! The watchdog tracks the last simulated instant each domain made
//! observable progress (completed a request, started service). A domain
//! whose progress timestamp falls more than `timeout` behind the clock
//! is declared stuck; the chaos world then restarts it, paying the
//! platform's full spawn cost and recording the detection-to-recovery
//! latency. Progress-based (rather than flag-based) detection means the
//! watchdog also catches stalls nobody explicitly signalled.

use xc_sim::time::Nanos;

/// Tracks per-domain progress timestamps against a stuck timeout.
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: Nanos,
    last_progress: Vec<Nanos>,
}

impl Watchdog {
    /// A watchdog over `domains` domains, all considered fresh (progress
    /// at time zero) with the given stuck `timeout`.
    pub fn new(domains: usize, timeout: Nanos) -> Self {
        Watchdog {
            timeout,
            last_progress: vec![Nanos::ZERO; domains],
        }
    }

    /// Records that domain `dom` made progress at `now`. Timestamps are
    /// monotonic: an out-of-order note never moves a domain backwards.
    ///
    /// # Panics
    ///
    /// Panics if `dom` is out of range.
    pub fn note_progress(&mut self, dom: usize, now: Nanos) {
        let slot = &mut self.last_progress[dom];
        *slot = (*slot).max(now);
    }

    /// The last instant `dom` made progress.
    ///
    /// # Panics
    ///
    /// Panics if `dom` is out of range.
    pub fn last_progress(&self, dom: usize) -> Nanos {
        self.last_progress[dom]
    }

    /// Whether `dom` has gone at least the timeout without progress.
    ///
    /// # Panics
    ///
    /// Panics if `dom` is out of range.
    pub fn is_stuck(&self, dom: usize, now: Nanos) -> bool {
        now.saturating_sub(self.last_progress[dom]) >= self.timeout
    }

    /// Every domain currently stuck at `now`.
    pub fn stuck(&self, now: Nanos) -> Vec<usize> {
        (0..self.last_progress.len())
            .filter(|&d| self.is_stuck(d, now))
            .collect()
    }

    /// The configured stuck timeout.
    pub fn timeout(&self) -> Nanos {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_domains_become_stuck_only_after_timeout() {
        let wd = Watchdog::new(2, Nanos::from_millis(10));
        assert!(!wd.is_stuck(0, Nanos::from_millis(9)));
        assert!(wd.is_stuck(0, Nanos::from_millis(10)));
        assert_eq!(wd.stuck(Nanos::from_millis(10)), vec![0, 1]);
    }

    #[test]
    fn progress_resets_the_clock_per_domain() {
        let mut wd = Watchdog::new(3, Nanos::from_millis(5));
        wd.note_progress(1, Nanos::from_millis(8));
        let now = Nanos::from_millis(10);
        assert!(wd.is_stuck(0, now));
        assert!(!wd.is_stuck(1, now));
        assert!(wd.is_stuck(2, now));
        assert_eq!(wd.stuck(now), vec![0, 2]);
        assert_eq!(wd.last_progress(1), Nanos::from_millis(8));
    }

    #[test]
    fn progress_is_monotonic() {
        let mut wd = Watchdog::new(1, Nanos::from_millis(5));
        wd.note_progress(0, Nanos::from_millis(7));
        wd.note_progress(0, Nanos::from_millis(3)); // stale note, ignored
        assert_eq!(wd.last_progress(0), Nanos::from_millis(7));
    }
}
