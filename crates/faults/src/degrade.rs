//! Graceful degradation of the ABOM fast path.
//!
//! §4.4's safety story: every patched site keeps the `syscall` trap as a
//! correct fallback. This module exercises it under injected failure —
//! during a warm-up pass over a synthetic wrapper corpus, the plan can
//! veto a site's verification ([`FaultKind::VerifyReject`], the site is
//! never patched) or fail a patch after the fact
//! ([`FaultKind::PatchFail`], the patch is undone with
//! [`Abom::rollback`]). Either way the site is permanently demoted to
//! the forwarded/trap route via [`DispatchTable::demote`]; it costs more
//! per syscall but never computes wrongly. The chaos world converts the
//! demoted fraction into a per-request syscall surcharge.

use xc_abom::binaries::glibc_wrapper_image;
use xc_abom::patcher::{Abom, PatchOutcome};
use xc_abom::AbomStats;
use xc_libos::DispatchTable;

use crate::plan::{FaultKind, FaultPlan};

/// Width of the case-1 pattern ABOM rewrites (`mov $nr,%eax; syscall`).
const CASE1_PATTERN_LEN: usize = 7;
/// Offset of the `syscall` instruction inside the case-1 wrapper.
const CASE1_SYSCALL_OFFSET: u64 = 5;

/// Outcome of one warm-up pass over the wrapper corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmupReport {
    /// Sites visited (syscall numbers `0..sites`).
    pub sites: u64,
    /// Sites left patched on the function-call fast path.
    pub patched: u64,
    /// Sites whose verification was vetoed (never patched).
    pub verify_rejected: u64,
    /// Sites patched and then rolled back after an injected failure.
    pub rolled_back: u64,
    /// Sites demoted to the fallback route (vetoed + rolled back +
    /// anything ABOM itself refused).
    pub demoted: u64,
    /// The optimizer's own counters for the pass.
    pub abom: AbomStats,
}

/// Runs ABOM over a corpus of `sites` glibc-style wrappers (one per
/// syscall number), injecting verification vetoes and patch failures
/// from `plan`, and demotes every site that cannot stay on the
/// function-call path.
///
/// Deterministic: decisions come from the plan's
/// [`FaultKind::VerifyReject`] and [`FaultKind::PatchFail`] streams in
/// site order. With a disabled plan every recognizable site ends up
/// patched and the dispatch table is untouched.
///
/// # Panics
///
/// Panics if the synthetic wrapper corpus is malformed (assembler
/// invariants, not inputs).
pub fn warm_up(plan: &mut FaultPlan, table: &mut DispatchTable, sites: u64) -> WarmupReport {
    let mut abom = Abom::new();
    let mut report = WarmupReport {
        sites,
        patched: 0,
        verify_rejected: 0,
        rolled_back: 0,
        demoted: 0,
        abom: AbomStats::new(),
    };
    for nr in 0..sites {
        if plan.should_inject(FaultKind::VerifyReject) {
            // Pre-flight verification vetoes the site: never patched,
            // permanently on the trap path.
            report.verify_rejected += 1;
            report.demoted += u64::from(table.demote(nr));
            continue;
        }
        let mut image = glibc_wrapper_image(nr);
        let entry = image.symbol("wrapper").expect("wrapper symbol exists");
        let original: Vec<u8> = image
            .read_bytes(entry, CASE1_PATTERN_LEN)
            .expect("wrapper prologue readable")
            .to_vec();
        match abom.on_syscall_trap(&mut image, entry + CASE1_SYSCALL_OFFSET) {
            PatchOutcome::Patched(_) if plan.should_inject(FaultKind::PatchFail) => {
                // Post-patch failure: undo the rewrite and fall back.
                let patched: Vec<u8> = image
                    .read_bytes(entry, CASE1_PATTERN_LEN)
                    .expect("patched prologue readable")
                    .to_vec();
                abom.rollback(&mut image, entry, &patched, &original)
                    .expect("rollback of a fresh patch succeeds");
                report.rolled_back += 1;
                report.demoted += u64::from(table.demote(nr));
            }
            PatchOutcome::Patched(_) | PatchOutcome::AlreadyPatched => {
                report.patched += 1;
            }
            // ABOM itself refused (unrecognized, disabled, …): the site
            // keeps trapping, so the route must not promise otherwise.
            _ => {
                report.demoted += u64::from(table.demote(nr));
            }
        }
    }
    report.abom = *abom.stats();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_libos::backend::Backend;
    use xc_libos::config::KernelConfig;
    use xc_libos::SyscallRoute;
    use xc_sim::CostModel;

    use crate::plan::FaultRates;

    fn fresh_table() -> DispatchTable {
        DispatchTable::resolve(
            Backend::XKernel,
            &KernelConfig::xlibos_default(),
            true,
            &CostModel::skylake_cloud(),
        )
    }

    #[test]
    fn disabled_plan_patches_everything() {
        let mut plan = FaultPlan::disabled(1);
        let mut table = fresh_table();
        let report = warm_up(&mut plan, &mut table, 32);
        assert_eq!(report.patched, 32);
        assert_eq!(report.demoted, 0);
        assert_eq!(report.rolled_back, 0);
        assert_eq!(table.demoted(), 0);
        assert_eq!(report.abom.patched_case1, 32);
    }

    #[test]
    fn injected_failures_demote_to_trap_route() {
        let rates = FaultRates::disabled()
            .with_rate(FaultKind::VerifyReject, 0.5)
            .with_rate(FaultKind::PatchFail, 0.5);
        let mut plan = FaultPlan::new(7, rates);
        let mut table = fresh_table();
        let report = warm_up(&mut plan, &mut table, 64);
        assert!(report.verify_rejected > 0, "veto stream must fire");
        assert!(report.rolled_back > 0, "rollback stream must fire");
        assert_eq!(
            report.demoted,
            report.verify_rejected + report.rolled_back,
            "every failed site is demoted exactly once"
        );
        assert_eq!(report.patched + report.demoted, 64);
        assert_eq!(table.demoted(), report.demoted);
        assert_eq!(report.abom.rolled_back, report.rolled_back);
        // Demoted numbers route via the fallback; patched ones stay fast.
        let mut fallback_routes = 0;
        for nr in 0..64 {
            if table.route(nr) == SyscallRoute::Forwarded {
                fallback_routes += 1;
            }
        }
        assert_eq!(fallback_routes, report.demoted);
    }

    #[test]
    fn warm_up_is_deterministic() {
        let rates = FaultRates::scaled(0.2);
        let run = |seed| {
            let mut plan = FaultPlan::new(seed, rates);
            let mut table = fresh_table();
            warm_up(&mut plan, &mut table, 48)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
