//! Bounded retry with exponential backoff in simulated time.
//!
//! Transient hypercall failures ([`crate::FaultKind::HypercallTransient`])
//! are retried a bounded number of times, each attempt waiting
//! `base × factor^attempt` of *simulated* time (capped). The policy is
//! pure arithmetic over [`Nanos`], so retries cost sim time — visible in
//! latency histograms — without ever blocking the host.

use xc_sim::time::Nanos;

/// A bounded exponential-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Nanos,
    /// Multiplier applied per attempt.
    pub factor: u32,
    /// Ceiling on any single delay.
    pub cap: Nanos,
    /// Attempts after which the operation is abandoned.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Default schedule for event-path hypercalls: 2µs, 4µs, 8µs, …
    /// capped at 200µs, at most 6 attempts (≈ 78µs total worst case).
    pub fn event_default() -> Self {
        RetryPolicy {
            base: Nanos::from_micros(2),
            factor: 2,
            cap: Nanos::from_micros(200),
            max_attempts: 6,
        }
    }

    /// The delay to wait after failed attempt number `attempt` (0-based),
    /// or `None` when the budget is exhausted and the caller must fall
    /// back (abandon the request, demote the site, …).
    pub fn delay_for(&self, attempt: u32) -> Option<Nanos> {
        if attempt >= self.max_attempts {
            return None;
        }
        let mult = u64::from(self.factor).saturating_pow(attempt);
        Some(self.base.saturating_mul(mult).min(self.cap))
    }

    /// Sum of every delay the policy can impose — callers size their
    /// resend timeouts above this so a retried send is never mistaken
    /// for a lost one.
    pub fn total_delay(&self) -> Nanos {
        (0..self.max_attempts)
            .filter_map(|a| self.delay_for(a))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_stop() {
        let p = RetryPolicy::event_default();
        assert_eq!(p.delay_for(0), Some(Nanos::from_micros(2)));
        assert_eq!(p.delay_for(1), Some(Nanos::from_micros(4)));
        assert_eq!(p.delay_for(5), Some(Nanos::from_micros(64)));
        assert_eq!(p.delay_for(6), None);
        assert_eq!(p.delay_for(u32::MAX), None);
    }

    #[test]
    fn cap_bounds_each_delay() {
        let p = RetryPolicy {
            base: Nanos::from_micros(10),
            factor: 10,
            cap: Nanos::from_micros(50),
            max_attempts: 8,
        };
        assert_eq!(p.delay_for(0), Some(Nanos::from_micros(10)));
        assert_eq!(p.delay_for(1), Some(Nanos::from_micros(50)));
        assert_eq!(p.delay_for(7), Some(Nanos::from_micros(50)));
    }

    #[test]
    fn huge_exponents_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            base: Nanos::from_secs(1),
            factor: u32::MAX,
            cap: Nanos::MAX,
            max_attempts: 64,
        };
        assert_eq!(p.delay_for(63), Some(Nanos::MAX));
    }

    #[test]
    fn total_delay_sums_the_schedule() {
        let p = RetryPolicy::event_default();
        // 2+4+8+16+32+64 µs
        assert_eq!(p.total_delay(), Nanos::from_micros(126));
    }
}
