//! The chaos world: a closed-loop request/response service driven
//! through the *real* hypervisor subsystems under injected faults.
//!
//! A client domain issues requests over per-connection event channels;
//! a server domain drains its pending bitmap, negotiates a grant for
//! the payload, copies it, and finishes after a modeled service time.
//! Every layer can fail on the plan's schedule:
//!
//! * the notification hypercall fails transiently → bounded
//!   exponential-backoff retry ([`RetryPolicy`]), then abandon;
//! * the pending bit is dropped before delivery → a resend timer
//!   recovers the request (bounded resends, then abandon);
//! * delivery is delayed by a bounded random amount;
//! * the grant is revoked mid-transfer → the mapper observes
//!   [`xc_xen::XenError::BadGrantRef`] and re-negotiates;
//! * ABOM patches are vetoed or rolled back during warm-up → demoted
//!   sites pay the trap surcharge on every request
//!   ([`crate::degrade::warm_up`]);
//! * the server vCPU stalls or the domain crashes → the watchdog
//!   detects the missing progress, restarts the domain at full spawn
//!   cost, re-warms ABOM, and requeues in-flight work.
//!
//! Faults move work between paths but never lose it. Three conservation
//! ledgers make that checkable after every run
//! ([`ChaosResult::check_conservation`]):
//!
//! 1. `issued == completed + abandoned + in_flight`;
//! 2. `sends == deliveries + drops + pending` (the event-channel
//!    ledger);
//! 3. `live_grants == 0` (every grant cycle closes).
//!
//! Determinism: all randomness flows from the [`FaultPlan`]'s per-kind
//! substreams plus one jitter stream, so a cell's result is a pure
//! function of `(seed, params)` — byte-identical at any `--jobs` value.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use xc_libos::backend::Backend;
use xc_libos::config::KernelConfig;
use xc_libos::DispatchTable;
use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::rng::Rng;
use xc_sim::stats::Histogram;
use xc_sim::time::Nanos;
use xc_sim::CostModel;
use xc_xen::domain::DomainId;
use xc_xen::events::EventChannels;
use xc_xen::grant::{GrantAccess, GrantTable};
use xc_xen::{Hypercall, HypervisorAccounting, XenError};

use crate::backoff::RetryPolicy;
use crate::degrade::warm_up;
use crate::plan::{fnv_fold, FaultKind, FaultPlan, FaultStats};
use crate::watchdog::Watchdog;

/// The server (backend) domain.
const SERVER: DomainId = DomainId(1);
/// The client (frontend) domain.
const CLIENT: DomainId = DomainId(2);
/// Watchdog slot for the server domain.
const SERVER_SLOT: usize = 0;

/// Parameters of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosParams {
    /// Closed-loop client connections.
    pub connections: usize,
    /// Requests the server processes concurrently.
    pub parallelism: usize,
    /// Simulated run length.
    pub duration: Nanos,
    /// Client↔server round-trip time; notification delivery takes half.
    pub rtt: Nanos,
    /// Healthy per-request service time (platform-dependent; the
    /// harness composes it from the platform's syscall costs).
    pub base_service: Nanos,
    /// Uniform extra service time in `[0, service_jitter]`.
    pub service_jitter: Nanos,
    /// ABOM warm-up corpus size (syscall numbers `0..corpus_sites`);
    /// zero skips warm-up entirely (non-ABOM platforms).
    pub corpus_sites: u64,
    /// Syscalls a request performs (prices the demotion surcharge).
    pub syscalls_per_request: u64,
    /// Extra cost of one trapped syscall over the optimized path.
    pub trap_extra: Nanos,
    /// Grant-copied payload per request.
    pub payload_bytes: u64,
    /// Upper bound of an injected delivery delay.
    pub delay_max: Nanos,
    /// Client resend timer for unacknowledged notifications.
    pub resend_timeout: Nanos,
    /// Retry schedule for transient hypercall failures (also bounds the
    /// resend count per request).
    pub retry: RetryPolicy,
    /// Watchdog scan interval.
    pub watchdog_period: Nanos,
    /// Progress gap after which the server is declared stuck.
    pub watchdog_timeout: Nanos,
    /// Full cost of restarting the server domain (the platform's spawn
    /// time).
    pub restart_cost: Nanos,
}

impl Default for ChaosParams {
    /// A small closed-loop service: 32 connections over a 1ms RTT,
    /// 4-wide service at 500µs per request, watchdog at 10ms/20ms.
    fn default() -> Self {
        ChaosParams {
            connections: 32,
            parallelism: 4,
            duration: Nanos::from_millis(500),
            rtt: Nanos::from_millis(1),
            base_service: Nanos::from_micros(500),
            service_jitter: Nanos::from_micros(50),
            corpus_sites: 0,
            syscalls_per_request: 64,
            trap_extra: Nanos::from_nanos(200),
            payload_bytes: 4096,
            delay_max: Nanos::from_micros(100),
            resend_timeout: Nanos::from_millis(2),
            retry: RetryPolicy::event_default(),
            watchdog_period: Nanos::from_millis(10),
            watchdog_timeout: Nanos::from_millis(20),
            restart_cost: Nanos::from_millis(100),
        }
    }
}

/// Events driving the chaos world.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A connection issues its next request.
    Issue { conn: usize },
    /// The server drains its pending bitmap.
    Deliver,
    /// Client resend timer for request `token` on `conn`.
    Resend { conn: usize, token: u64 },
    /// Service of `conn`'s request finishes (valid for `epoch` only).
    Finish { conn: usize, epoch: u32 },
    /// Periodic watchdog scan.
    Watchdog,
    /// The restarted server domain comes back up.
    Restarted,
}

/// Where a connection's current request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// No request outstanding.
    Idle,
    /// Notification sent; awaiting server-side delivery of `token`.
    AwaitDelivery { token: u64 },
    /// Delivered, waiting for a service slot.
    Queued,
    /// Being serviced.
    InService,
}

#[derive(Debug, Clone)]
struct Conn {
    state: ConnState,
    issued_at: Nanos,
    token: u64,
    resend_attempts: u32,
    port_server: u32,
    port_client: u32,
}

struct ChaosWorld {
    p: ChaosParams,
    plan: FaultPlan,
    jitter: Rng,
    costs: CostModel,
    ev: EventChannels,
    gt: GrantTable,
    acct: HypervisorAccounting,
    table: Option<DispatchTable>,
    /// Per-request surcharge from demoted (trap-path) syscall sites.
    demotion_extra: Nanos,
    wd: Watchdog,
    conns: Vec<Conn>,
    waiting: VecDeque<usize>,
    in_service: Vec<usize>,
    /// Bumped on every restart; invalidates in-flight `Finish` events.
    epoch: u32,
    stalled: bool,
    crashed: bool,
    restarting: bool,
    /// When the current stall/crash began.
    stall_since: Nanos,
    /// Progress origin of the outage the watchdog last detected.
    detected_origin: Nanos,
    issued: u64,
    completed: u64,
    abandoned: u64,
    resends: u64,
    hypercall_retries: u64,
    grant_faults: u64,
    stalls: u64,
    crashes: u64,
    restarts: u64,
    latency: Histogram,
    recovery: Histogram,
}

impl ChaosWorld {
    /// Builds (or rebuilds, after a restart) the dispatch table by
    /// running ABOM over the wrapper corpus under the fault plan, and
    /// reprices the per-request demotion surcharge.
    fn warm_abom(&mut self) {
        if self.p.corpus_sites == 0 {
            return;
        }
        let mut table = DispatchTable::resolve(
            Backend::XKernel,
            &KernelConfig::xlibos_default(),
            true,
            &self.costs,
        );
        let report = warm_up(&mut self.plan, &mut table, self.p.corpus_sites);
        // demoted/corpus of this request's syscalls take the trap path.
        self.demotion_extra = self
            .p
            .trap_extra
            .saturating_mul(report.demoted.saturating_mul(self.p.syscalls_per_request))
            / self.p.corpus_sites;
        self.table = Some(table);
    }

    /// Client-side notification send for `conn`'s next request, with
    /// transient-failure retry. Schedules delivery (unless the event is
    /// dropped) and the resend timer.
    fn send_request(&mut self, conn: usize, now: Nanos, queue: &mut EventQueue<Ev>) {
        let mut extra = Nanos::ZERO;
        let mut attempt = 0u32;
        loop {
            extra += self.acct.charge(Hypercall::EventChannelOp, &self.costs);
            if !self.plan.should_inject(FaultKind::HypercallTransient) {
                break;
            }
            // Typed transient failure; drawn so failures are attributed.
            let _err: XenError = self.plan.transient_error();
            self.hypercall_retries += 1;
            match self.p.retry.delay_for(attempt) {
                Some(delay) => {
                    extra += delay;
                    attempt += 1;
                }
                None => {
                    // Retry budget exhausted: abandon and re-issue later.
                    self.abandoned += 1;
                    self.conns[conn].state = ConnState::Idle;
                    queue.schedule_at(now + self.p.rtt + extra, Ev::Issue { conn });
                    return;
                }
            }
        }
        let c = &mut self.conns[conn];
        c.token += 1;
        let token = c.token;
        c.state = ConnState::AwaitDelivery { token };
        let (port_server, port_client) = (c.port_server, c.port_client);
        self.ev
            .send(CLIENT, port_client)
            .expect("connection ports stay bound");
        let mut dropped = false;
        if self.plan.should_inject(FaultKind::EventDrop) {
            dropped = self
                .ev
                .drop_pending(SERVER, port_server)
                .expect("server port exists");
        }
        if !dropped {
            let mut deliver_delay = self.p.rtt / 2 + extra;
            if self.plan.should_inject(FaultKind::EventDelay) {
                deliver_delay += self.plan.delay_between(Nanos::ZERO, self.p.delay_max);
            }
            queue.schedule_at(now + deliver_delay, Ev::Deliver);
        }
        // `run_chaos` asserts rtt/2 + max delay + retry budget <
        // resend_timeout, so this timer can only find a *lost* request
        // still AwaitDelivery — a delivered one has already moved on.
        queue.schedule_at(
            now + self.p.resend_timeout + extra,
            Ev::Resend { conn, token },
        );
    }

    /// Starts service on queued requests while slots are free and the
    /// server is healthy. Stalls and crashes are injected here — at a
    /// service boundary — so they always interrupt real work.
    fn try_start(&mut self, now: Nanos, queue: &mut EventQueue<Ev>) {
        while !self.stalled
            && !self.crashed
            && !self.restarting
            && self.in_service.len() < self.p.parallelism
        {
            let Some(conn) = self.waiting.pop_front() else {
                break;
            };
            self.conns[conn].state = ConnState::InService;
            self.in_service.push(conn);
            self.wd.note_progress(SERVER_SLOT, now);
            if self.plan.should_inject(FaultKind::DomainCrash) {
                self.crashed = true;
                self.crashes += 1;
                self.stall_since = now;
                break;
            }
            if self.plan.should_inject(FaultKind::VcpuStall) {
                self.stalled = true;
                self.stalls += 1;
                self.stall_since = now;
                break;
            }
            let mut extra = Nanos::ZERO;
            let frame = 0x9000 + conn as u64;
            let mut gref = self
                .gt
                .grant(CLIENT, SERVER, frame, GrantAccess::ReadWrite)
                .expect("grant table has room for the working set");
            extra += self
                .acct
                .charge(Hypercall::GrantTableOp { copy_kb: 0 }, &self.costs);
            if self.plan.should_inject(FaultKind::GrantRevoke) {
                // The client revokes mid-transfer; the server's map must
                // observe a dead reference, then the pair re-negotiates.
                self.gt
                    .revoke(CLIENT, gref)
                    .expect("unmapped grant is revocable");
                let stale = self.gt.map(SERVER, gref);
                assert!(
                    matches!(stale, Err(XenError::BadGrantRef(_))),
                    "revoked grant must be dead, got {stale:?}"
                );
                self.grant_faults += 1;
                if let Some(delay) = self.p.retry.delay_for(0) {
                    extra += delay;
                }
                gref = self
                    .gt
                    .grant(CLIENT, SERVER, frame, GrantAccess::ReadWrite)
                    .expect("re-grant after revocation");
                extra += self
                    .acct
                    .charge(Hypercall::GrantTableOp { copy_kb: 0 }, &self.costs);
            }
            self.gt.map(SERVER, gref).expect("live grant maps");
            self.gt
                .copy(SERVER, gref, self.p.payload_bytes)
                .expect("mapped grant copies");
            extra += self.acct.charge(
                Hypercall::GrantTableOp {
                    copy_kb: self.p.payload_bytes / 1024,
                },
                &self.costs,
            );
            self.gt.unmap(SERVER, gref).expect("mapped grant unmaps");
            self.gt
                .revoke(CLIENT, gref)
                .expect("unmapped grant is revocable");
            let jitter =
                Nanos::from_nanos(self.jitter.next_below(self.p.service_jitter.as_nanos() + 1));
            let service = self.p.base_service + self.demotion_extra + extra + jitter;
            queue.schedule_at(
                now + service,
                Ev::Finish {
                    conn,
                    epoch: self.epoch,
                },
            );
        }
    }
}

impl World for ChaosWorld {
    type Event = Ev;

    fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Issue { conn } => {
                if self.conns[conn].state != ConnState::Idle {
                    return;
                }
                self.issued += 1;
                self.conns[conn].issued_at = now;
                self.conns[conn].resend_attempts = 0;
                self.send_request(conn, now, queue);
            }
            Ev::Deliver => {
                // Level-triggered drain: one scan picks up every pending
                // port, possibly acknowledging other connections' sends
                // early — exactly how the shared bitmap behaves. Intake
                // keeps running during a stall; only *service* stops.
                for port in self.ev.take_pending(SERVER) {
                    let conn = port as usize;
                    if matches!(self.conns[conn].state, ConnState::AwaitDelivery { .. }) {
                        self.conns[conn].state = ConnState::Queued;
                        self.waiting.push_back(conn);
                    }
                }
                self.try_start(now, queue);
            }
            Ev::Resend { conn, token } => {
                // Only meaningful while the exact send it guards is
                // still undelivered (i.e. it was dropped).
                if self.conns[conn].state != (ConnState::AwaitDelivery { token }) {
                    return;
                }
                self.conns[conn].resend_attempts += 1;
                if self.conns[conn].resend_attempts >= self.p.retry.max_attempts {
                    self.abandoned += 1;
                    self.conns[conn].state = ConnState::Idle;
                    queue.schedule_at(now + self.p.rtt, Ev::Issue { conn });
                } else {
                    self.resends += 1;
                    self.send_request(conn, now, queue);
                }
            }
            Ev::Finish { conn, epoch } => {
                // Stale epochs died with the restart; during an outage
                // the request stays InService and is requeued on
                // recovery instead of completing.
                if epoch != self.epoch || self.stalled || self.crashed || self.restarting {
                    return;
                }
                let Some(pos) = self.in_service.iter().position(|&c| c == conn) else {
                    return;
                };
                self.in_service.swap_remove(pos);
                self.completed += 1;
                self.latency
                    .record_nanos(now.saturating_sub(self.conns[conn].issued_at));
                self.conns[conn].state = ConnState::Idle;
                self.wd.note_progress(SERVER_SLOT, now);
                queue.schedule_at(now + self.p.rtt, Ev::Issue { conn });
                self.try_start(now, queue);
            }
            Ev::Watchdog => {
                queue.schedule_at(now + self.p.watchdog_period, Ev::Watchdog);
                if (self.crashed || self.wd.is_stuck(SERVER_SLOT, now)) && !self.restarting {
                    self.restarting = true;
                    self.restarts += 1;
                    // Recovery latency is measured from when the outage
                    // began (explicit stall/crash origin if one was
                    // injected; last observed progress otherwise).
                    self.detected_origin = if self.stalled || self.crashed {
                        self.stall_since
                    } else {
                        self.wd.last_progress(SERVER_SLOT)
                    };
                    queue.schedule_at(now + self.p.restart_cost, Ev::Restarted);
                }
            }
            Ev::Restarted => {
                self.epoch += 1;
                self.stalled = false;
                self.crashed = false;
                self.restarting = false;
                self.recovery
                    .record_nanos(now.saturating_sub(self.detected_origin));
                // A restarted domain boots with an unpatched binary:
                // ABOM re-warms (under the same fault plan, so more
                // sites may demote) before service resumes.
                self.warm_abom();
                let stranded = std::mem::take(&mut self.in_service);
                for conn in stranded {
                    self.conns[conn].state = ConnState::Queued;
                    self.waiting.push_back(conn);
                }
                self.wd.note_progress(SERVER_SLOT, now);
                self.try_start(now, queue);
            }
        }
    }
}

/// Everything a chaos run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosResult {
    /// Requests issued.
    pub issued: u64,
    /// Requests completing service.
    pub completed: u64,
    /// Requests abandoned after exhausting retries/resends.
    pub abandoned: u64,
    /// Requests still outstanding when the run ended.
    pub in_flight: u64,
    /// Notification resends after dropped events.
    pub resends: u64,
    /// Transient hypercall failures retried.
    pub hypercall_retries: u64,
    /// Mid-transfer grant revocations recovered from.
    pub grant_faults: u64,
    /// Injected vCPU stalls.
    pub stalls: u64,
    /// Injected domain crashes.
    pub crashes: u64,
    /// Watchdog-triggered restarts.
    pub restarts: u64,
    /// Event-channel sends.
    pub sends: u64,
    /// Event-channel deliveries.
    pub deliveries: u64,
    /// Event-channel drops (injected).
    pub drops: u64,
    /// Events still pending at the end.
    pub pending: u64,
    /// Hypercalls charged.
    pub hypercalls: u64,
    /// Simulated time spent in the hypervisor.
    pub hypervisor_ns: Nanos,
    /// Bytes moved through grant copies.
    pub bytes_copied: u64,
    /// Grants still live at the end (must be zero).
    pub live_grants: u64,
    /// ABOM sites demoted to the trap path (current table).
    pub demoted: u64,
    /// ABOM warm-up corpus size.
    pub corpus_sites: u64,
    /// Request latency (issue → completion).
    pub latency: Histogram,
    /// Outage recovery latency (outage origin → service resumed).
    pub recovery: Histogram,
    /// The plan's draw/injection counters.
    pub fault_stats: FaultStats,
    /// Configured run length.
    pub duration: Nanos,
}

impl ChaosResult {
    /// Completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.duration.as_secs_f64()
        }
    }

    /// Checks the three conservation ledgers (module docs); returns a
    /// description of the first violated one.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.issued != self.completed + self.abandoned + self.in_flight {
            return Err(format!(
                "request ledger: issued {} != completed {} + abandoned {} + in-flight {}",
                self.issued, self.completed, self.abandoned, self.in_flight
            ));
        }
        if self.sends != self.deliveries + self.drops + self.pending {
            return Err(format!(
                "event ledger: sends {} != deliveries {} + drops {} + pending {}",
                self.sends, self.deliveries, self.drops, self.pending
            ));
        }
        if self.live_grants != 0 {
            return Err(format!(
                "grant ledger: {} grants still live",
                self.live_grants
            ));
        }
        Ok(())
    }

    /// FNV-1a fingerprint of every counter plus latency/recovery shape —
    /// what the determinism suite compares across worker counts.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            self.issued,
            self.completed,
            self.abandoned,
            self.in_flight,
            self.resends,
            self.hypercall_retries,
            self.grant_faults,
            self.stalls,
            self.crashes,
            self.restarts,
            self.sends,
            self.deliveries,
            self.drops,
            self.pending,
            self.hypercalls,
            self.hypervisor_ns.as_nanos(),
            self.bytes_copied,
            self.demoted,
            self.latency.count(),
            self.latency.quantile(0.5),
            self.latency.quantile(0.99),
            self.recovery.count(),
            self.recovery.quantile(0.99),
        ] {
            h = fnv_fold(h, v);
        }
        for k in 0..crate::FAULT_KINDS {
            h = fnv_fold(h, self.fault_stats.drawn[k]);
            h = fnv_fold(h, self.fault_stats.injected[k]);
        }
        h
    }
}

/// Chaos worlds assembled from freshly allocated (or grown) storage.
static ARENA_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Chaos worlds assembled entirely from recycled arena storage.
static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(allocated, reused)` world-construction counters across
/// every thread's chaos arena, for the bench ledger: in steady state a
/// sweep should report almost all reuses — one allocation per worker
/// thread, not one per grid cell.
pub fn arena_counters() -> (u64, u64) {
    (
        ARENA_ALLOCS.load(Ordering::Relaxed),
        ARENA_REUSES.load(Ordering::Relaxed),
    )
}

/// Reusable backing storage for chaos worlds.
///
/// Every cell of a chaos sweep rebuilds the same heap structure — the
/// event-channel port tables, the grant slab, the connection vector,
/// the waiting/in-service queues and the calendar wheel — so the arena
/// keeps one set alive per thread and hands it out reset instead of
/// letting each cell reallocate it. [`EventChannels::reset`] and
/// [`GrantTable::reset`] restore the exact logical state of fresh
/// subsystems (port numbering and grant generations restart from zero),
/// so arena-backed runs are byte-identical to freshly-allocated ones —
/// a feature-gated proptest pins that equivalence.
#[derive(Default)]
pub struct ChaosArena {
    ev: EventChannels,
    gt: GrantTable,
    conns: Vec<Conn>,
    waiting: VecDeque<usize>,
    in_service: Vec<usize>,
    queue: Option<EventQueue<Ev>>,
}

impl ChaosArena {
    /// Creates an empty arena; storage is allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the pooled storage for a run of `params` and bumps the
    /// global alloc/reuse counters; returns the recycled (or fresh)
    /// event queue.
    fn prepare(&mut self, params: &ChaosParams) -> EventQueue<Ev> {
        if self.queue.is_some() {
            ARENA_REUSES.fetch_add(1, Ordering::Relaxed);
        } else {
            ARENA_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        self.ev.reset();
        self.gt.reset();
        self.conns.clear();
        self.conns.reserve(params.connections);
        self.waiting.clear();
        self.waiting.reserve(params.connections);
        self.in_service.clear();
        self.in_service.reserve(params.parallelism);
        match self.queue.take() {
            Some(mut q) => {
                q.reset();
                q
            }
            None => EventQueue::with_capacity(4 * params.connections + 16),
        }
    }
}

thread_local! {
    /// One arena per worker thread: the parallel runner hands each
    /// thread a stream of sweep cells, and every cell on that thread
    /// reuses the same world storage.
    static ARENA: RefCell<ChaosArena> = RefCell::new(ChaosArena::new());
}

/// Runs one chaos cell to completion and collects the ledgers, drawing
/// world storage from the calling thread's arena.
///
/// # Panics
///
/// See [`run_chaos_in`].
pub fn run_chaos(params: ChaosParams, plan: FaultPlan, jitter_seed: u64) -> ChaosResult {
    ARENA.with(|arena| run_chaos_in(&mut arena.borrow_mut(), params, plan, jitter_seed))
}

/// Runs one chaos cell to completion and collects the ledgers, drawing
/// world storage from `arena` and returning it there afterwards.
/// Byte-identical to a run over a fresh arena.
///
/// # Panics
///
/// Panics if `params` are degenerate (zero connections/parallelism) or
/// if the timing invariant `rtt/2 + retry budget + delay_max <
/// resend_timeout` does not hold — the resend timer must never race a
/// delivery that is merely slow, or the event ledger would miscount.
pub fn run_chaos_in(
    arena: &mut ChaosArena,
    params: ChaosParams,
    plan: FaultPlan,
    jitter_seed: u64,
) -> ChaosResult {
    assert!(params.connections > 0, "need at least one connection");
    assert!(params.parallelism > 0, "need at least one service slot");
    assert!(
        params.rtt / 2 + params.retry.total_delay() + params.delay_max < params.resend_timeout,
        "resend timeout must exceed worst-case delivery: rtt/2 {} + retries {} + delay {} vs {}",
        params.rtt / 2,
        params.retry.total_delay(),
        params.delay_max,
        params.resend_timeout
    );
    let costs = CostModel::skylake_cloud();
    let queue = arena.prepare(&params);
    let mut ev = std::mem::take(&mut arena.ev);
    let mut conns = std::mem::take(&mut arena.conns);
    for i in 0..params.connections {
        let port_server = ev.alloc_unbound(SERVER).expect("server ports available");
        let port_client = ev.alloc_unbound(CLIENT).expect("client ports available");
        debug_assert_eq!(port_server as usize, i, "port index is the conn index");
        ev.bind(SERVER, port_server, CLIENT, port_client)
            .expect("fresh ports bind");
        conns.push(Conn {
            state: ConnState::Idle,
            issued_at: Nanos::ZERO,
            token: 0,
            resend_attempts: 0,
            port_server,
            port_client,
        });
    }
    let mut world = ChaosWorld {
        p: params,
        plan,
        jitter: Rng::new(jitter_seed),
        costs,
        ev,
        gt: std::mem::take(&mut arena.gt),
        acct: HypervisorAccounting::default(),
        table: None,
        demotion_extra: Nanos::ZERO,
        wd: Watchdog::new(1, params.watchdog_timeout),
        conns,
        waiting: std::mem::take(&mut arena.waiting),
        in_service: std::mem::take(&mut arena.in_service),
        epoch: 0,
        stalled: false,
        crashed: false,
        restarting: false,
        stall_since: Nanos::ZERO,
        detected_origin: Nanos::ZERO,
        issued: 0,
        completed: 0,
        abandoned: 0,
        resends: 0,
        hypercall_retries: 0,
        grant_faults: 0,
        stalls: 0,
        crashes: 0,
        restarts: 0,
        latency: Histogram::new(),
        recovery: Histogram::new(),
    };
    world.warm_abom();
    let mut sim = Simulation::from_parts(world, queue);
    for conn in 0..params.connections {
        // Stagger first issues across one RTT so the run does not start
        // with a synchronized burst.
        let at = params.rtt * conn as u64 / params.connections as u64;
        sim.queue_mut().schedule_at(at, Ev::Issue { conn });
    }
    sim.queue_mut()
        .schedule_at(params.watchdog_period, Ev::Watchdog);
    sim.run_until(params.duration);
    let (w, queue) = sim.into_parts();
    let in_flight = w
        .conns
        .iter()
        .filter(|c| c.state != ConnState::Idle)
        .count() as u64;
    let result = ChaosResult {
        issued: w.issued,
        completed: w.completed,
        abandoned: w.abandoned,
        in_flight,
        resends: w.resends,
        hypercall_retries: w.hypercall_retries,
        grant_faults: w.grant_faults,
        stalls: w.stalls,
        crashes: w.crashes,
        restarts: w.restarts,
        sends: w.ev.sends(),
        deliveries: w.ev.deliveries(),
        drops: w.ev.drops(),
        pending: w.ev.pending_count(SERVER) as u64,
        hypercalls: w.acct.total_calls(),
        hypervisor_ns: w.acct.total_time(),
        bytes_copied: w.gt.bytes_copied(),
        live_grants: w.gt.live_grants() as u64,
        demoted: w.table.as_ref().map_or(0, DispatchTable::demoted),
        corpus_sites: w.p.corpus_sites,
        latency: w.latency,
        recovery: w.recovery,
        fault_stats: *w.plan.stats(),
        duration: w.p.duration,
    };
    // Return the storage for the next cell on this thread. The
    // histograms moved into the result, so those stay per-run.
    arena.ev = w.ev;
    arena.gt = w.gt;
    arena.conns = w.conns;
    arena.waiting = w.waiting;
    arena.in_service = w.in_service;
    arena.queue = Some(queue);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;

    fn quick_params() -> ChaosParams {
        ChaosParams {
            duration: Nanos::from_millis(200),
            ..ChaosParams::default()
        }
    }

    #[test]
    fn healthy_run_completes_work_and_conserves() {
        let params = quick_params();
        let r = run_chaos(params, FaultPlan::disabled(1), 99);
        r.check_conservation().expect("healthy run conserves");
        assert!(r.completed > 100, "completed {}", r.completed);
        assert_eq!(r.abandoned, 0);
        assert_eq!(r.drops, 0);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.fault_stats.injected_total(), 0);
        assert!(r.throughput_rps() > 0.0);
    }

    #[test]
    fn faulty_run_conserves_and_recovers() {
        let params = ChaosParams {
            corpus_sites: 64,
            ..quick_params()
        };
        let plan = FaultPlan::new(5, FaultRates::scaled(0.05));
        let r = run_chaos(params, plan, 99);
        r.check_conservation().expect("faulty run conserves");
        assert!(r.fault_stats.injected_total() > 0, "faults must fire");
        assert!(r.drops > 0, "drop stream must fire at 4% per send");
        assert!(r.resends > 0, "drops must trigger resends");
        assert!(r.hypercall_retries > 0, "transient stream must fire");
        assert!(r.completed > 0, "service must survive the fault load");
    }

    #[test]
    fn faults_degrade_throughput() {
        let params = quick_params();
        let healthy = run_chaos(params, FaultPlan::disabled(1), 7);
        let faulty = run_chaos(params, FaultPlan::new(1, FaultRates::scaled(0.1)), 7);
        assert!(
            faulty.completed < healthy.completed,
            "faulty {} vs healthy {}",
            faulty.completed,
            healthy.completed
        );
    }

    #[test]
    fn watchdog_restarts_a_stalled_server() {
        // Only stalls, guaranteed early, and a restart that fits well
        // within the run.
        let params = ChaosParams {
            duration: Nanos::from_millis(300),
            restart_cost: Nanos::from_millis(30),
            ..ChaosParams::default()
        };
        let rates = FaultRates::disabled().with_rate(FaultKind::VcpuStall, 0.2);
        let r = run_chaos(params, FaultPlan::new(3, rates), 42);
        r.check_conservation().expect("stalled run conserves");
        assert!(r.stalls > 0, "stall stream must fire");
        assert!(r.restarts > 0, "watchdog must restart the server");
        assert!(r.recovery.count() > 0, "recoveries must be recorded");
        // Recovery spans detection (≤ timeout + period) + restart cost.
        assert!(
            r.recovery.quantile(0.5) >= params.restart_cost.as_nanos(),
            "recovery must include the restart cost"
        );
        assert!(r.completed > 0, "service must resume after restarts");
    }

    #[test]
    fn grant_revocation_recovers_without_losing_bytes() {
        let params = quick_params();
        let rates = FaultRates::disabled().with_rate(FaultKind::GrantRevoke, 0.5);
        let r = run_chaos(params, FaultPlan::new(9, rates), 1);
        r.check_conservation().expect("grant-fault run conserves");
        assert!(r.grant_faults > 0, "revocation stream must fire");
        assert_eq!(r.live_grants, 0);
        // Copies happen once per service start, in whole payloads.
        assert_eq!(r.bytes_copied % params.payload_bytes, 0);
        assert!(
            r.bytes_copied >= r.completed * params.payload_bytes,
            "every completed request copied exactly one payload"
        );
    }

    #[test]
    fn identical_inputs_are_byte_identical() {
        let params = ChaosParams {
            corpus_sites: 32,
            ..quick_params()
        };
        let a = run_chaos(params, FaultPlan::new(4, FaultRates::scaled(0.05)), 11);
        let b = run_chaos(params, FaultPlan::new(4, FaultRates::scaled(0.05)), 11);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = run_chaos(params, FaultPlan::new(5, FaultRates::scaled(0.05)), 11);
        assert_ne!(a.digest(), c.digest(), "seed must matter");
    }

    #[test]
    fn abom_demotions_surcharge_service() {
        let params = ChaosParams {
            corpus_sites: 64,
            trap_extra: Nanos::from_micros(5),
            ..quick_params()
        };
        let clean = run_chaos(params, FaultPlan::disabled(2), 3);
        let rates = FaultRates::disabled().with_rate(FaultKind::VerifyReject, 0.8);
        let degraded = run_chaos(params, FaultPlan::new(2, rates), 3);
        assert_eq!(clean.demoted, 0);
        assert!(degraded.demoted > 0, "veto stream must demote sites");
        assert!(
            degraded.latency.quantile(0.5) > clean.latency.quantile(0.5),
            "demoted sites must slow requests: {} vs {}",
            degraded.latency.quantile(0.5),
            clean.latency.quantile(0.5)
        );
    }
}
