//! # xc-faults — deterministic fault injection & graceful degradation
//!
//! The paper's robustness story is that components fail *safely*: the
//! X-Kernel validates and rejects bad hypercalls (§4.1), and ABOM keeps
//! the `syscall` trap as a permanent fallback whenever a site cannot be
//! safely rewritten (§4.4). This crate exercises those degradation paths
//! under sustained, *reproducible* failure:
//!
//! * [`plan`] — a seeded [`FaultPlan`] that decides, per typed
//!   [`FaultKind`], whether each potential fault fires. Every kind draws
//!   from its own [`xc_sim::rng::Rng`] substream, so a schedule is a pure
//!   function of `(seed, kind, occurrence index)` — byte-identical at any
//!   `--jobs` value and under any shard-merge order.
//! * [`backoff`] — bounded retry with exponential backoff in *simulated*
//!   time ([`RetryPolicy`]).
//! * [`watchdog`] — progress-based stuck-vCPU detection ([`Watchdog`]):
//!   a domain that stops completing work past the timeout is restarted,
//!   with the full restart cost charged and the recovery latency
//!   recorded.
//! * [`degrade`] — the ABOM degradation policy: a site whose patch is
//!   vetoed or rolled back ([`xc_abom::patcher::Abom::rollback`]) is
//!   permanently demoted to the trap route
//!   ([`xc_libos::syscalls::DispatchTable::demote`]).
//! * [`chaos`] — a closed-loop DES world wiring all of the above through
//!   the *real* [`xc_xen::events::EventChannels`] and
//!   [`xc_xen::grant::GrantTable`], with conservation invariants (no
//!   request lost, every event delivered/dropped/pending) checked by
//!   [`ChaosResult::check_conservation`].
//!
//! Faults change *when* things happen and *which path* handles them, but
//! never lose work: that is the property the `chaos_study` bench sweeps
//! and the determinism suite pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod backoff;
pub mod chaos;
pub mod degrade;
pub mod plan;
pub mod watchdog;

pub use backoff::RetryPolicy;
pub use chaos::{run_chaos, run_chaos_in, ChaosArena, ChaosParams, ChaosResult};
pub use degrade::{warm_up, WarmupReport};
pub use plan::{FaultKind, FaultPlan, FaultRates, FaultStats, FAULT_KINDS};
pub use watchdog::Watchdog;
