//! Deterministic discrete-event simulation engine.
//!
//! The engine is a classic event-queue DES specialised for determinism:
//! events scheduled for the same instant fire in insertion order (a strictly
//! monotonic sequence number breaks ties), so a simulation is a pure function
//! of its inputs.
//!
//! Ownership is structured to fit Rust: the *world* (all mutable simulation
//! state) is a single value implementing [`World`]; events are plain data
//! (usually an enum); and the engine hands the world each event together with
//! a mutable [`EventQueue`] through which it may schedule more events. No
//! `Rc<RefCell<…>>` webs, no trait-object callbacks.
//!
//! # Example
//!
//! ```
//! use xc_sim::engine::{EventQueue, Simulation, World};
//! use xc_sim::time::Nanos;
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Nanos, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             queue.schedule_in(Nanos::from_nanos(10), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().schedule_at(Nanos::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), Nanos::from_nanos(20));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Simulation state that reacts to events.
///
/// Implementors own *all* mutable state of a simulation; the engine owns the
/// clock and the pending-event queue.
pub trait World: Sized {
    /// The event type driving this world (usually an enum).
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// The handler may schedule follow-up events through `queue`; it must not
    /// assume any particular ordering among events scheduled for the same
    /// instant other than insertion order.
    fn handle(&mut self, now: Nanos, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Heap entry with `(time, seq)` packed into one `u128` so the heap's
/// sift operations compare a single scalar instead of two fields with a
/// branch between them — the comparison is the hottest instruction in a
/// saturated simulation.
struct Entry<E> {
    /// `(at << 64) | seq`: lexicographic `(time, seq)` order by
    /// construction, since both halves are unsigned.
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn new(at: Nanos, seq: u64, event: E) -> Self {
        Entry {
            key: (u128::from(at.as_nanos()) << 64) | u128::from(seq),
            event,
        }
    }

    #[inline]
    fn at(&self) -> Nanos {
        Nanos::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key.cmp(&self.key)
    }
}

/// The pending-event queue handed to [`World::handle`].
///
/// Events may be scheduled for the current instant or any future instant;
/// scheduling into the past is a logic error and panics, because it would
/// silently corrupt causality.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Nanos,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the heap reallocates.
    ///
    /// Closed-loop workloads know their steady-state queue depth up front
    /// (roughly one in-flight event per connection plus one per busy
    /// worker); pre-sizing removes every mid-run heap growth.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry::new(at, seq, event));
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            let at = e.at();
            debug_assert!(at >= self.now);
            self.now = at;
            (at, e.event)
        })
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A running simulation: a [`World`] plus its event queue and clock.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    steps: u64,
}

impl<W: World> Simulation<W> {
    /// Wraps a world with an empty event queue at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            steps: 0,
        }
    }

    /// Like [`Simulation::new`], with the event queue pre-sized for
    /// `capacity` pending events (see [`EventQueue::with_capacity`]).
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        Simulation {
            world,
            queue: EventQueue::with_capacity(capacity),
            steps: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// Total number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inspect or seed state between
    /// phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the event queue (e.g. to schedule initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Consumes the simulation, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, event)) => {
                self.steps += 1;
                self.world.handle(at, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Returns the finishing time.
    pub fn run(&mut self) -> Nanos {
        while self.step() {}
        self.now()
    }

    /// Runs until the queue drains or the clock passes `deadline`, whichever
    /// comes first. Events scheduled at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: Nanos) -> Nanos {
        loop {
            match self.queue.heap.peek() {
                Some(head) if head.at() <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so measurement windows have a well-defined length.
        if self.queue.now < deadline {
            self.queue.now = deadline;
        }
        self.now()
    }

    /// Runs for at most `max_steps` additional events (a runaway backstop for
    /// property tests). Returns the number of events processed.
    pub fn run_steps(&mut self, max_steps: u64) -> u64 {
        let mut n = 0;
        while n < max_steps && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Mark(id) => self.log.push((now.as_nanos(), id)),
                Ev::Chain(depth) => {
                    self.log.push((now.as_nanos(), depth));
                    if depth > 0 {
                        queue.schedule_in(Nanos::from_nanos(5), Ev::Chain(depth - 1));
                    }
                }
            }
        }
    }

    fn sim() -> Simulation<Recorder> {
        Simulation::new(Recorder { log: Vec::new() })
    }

    #[test]
    fn fires_in_time_order() {
        let mut s = sim();
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(30), Ev::Mark(3));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(10), Ev::Mark(1));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(20), Ev::Mark(2));
        s.run();
        assert_eq!(s.world().log, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut s = sim();
        for id in 0..10 {
            s.queue_mut()
                .schedule_at(Nanos::from_nanos(50), Ev::Mark(id));
        }
        s.run();
        let ids: Vec<u32> = s.world().log.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(4));
        let end = s.run();
        assert_eq!(end, Nanos::from_nanos(20));
        assert_eq!(s.steps(), 5);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(100));
        s.run_until(Nanos::from_nanos(23));
        // Events at t=0,5,10,15,20 fire; t=25 does not.
        assert_eq!(s.world().log.len(), 5);
        assert_eq!(s.now(), Nanos::from_nanos(23));
        // Remaining events still fire afterwards.
        s.run_until(Nanos::from_nanos(25));
        assert_eq!(s.world().log.len(), 6);
    }

    #[test]
    fn run_until_advances_clock_when_drained() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::from_nanos(5), Ev::Mark(1));
        s.run_until(Nanos::from_nanos(1_000));
        assert_eq!(s.now(), Nanos::from_nanos(1_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = sim();
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(10), Ev::Mark(1));
        s.run();
        s.queue_mut().schedule_at(Nanos::from_nanos(5), Ev::Mark(2));
    }

    #[test]
    fn run_steps_backstop() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(u32::MAX));
        let n = s.run_steps(100);
        assert_eq!(n, 100);
        assert!(!s.queue.is_empty());
    }

    #[test]
    fn entry_key_roundtrips_time_and_orders() {
        let early: Entry<()> = Entry::new(Nanos::from_nanos(10), u64::MAX, ());
        let late: Entry<()> = Entry::new(Nanos::from_nanos(11), 0, ());
        assert_eq!(early.at(), Nanos::from_nanos(10));
        assert_eq!(late.at(), Nanos::from_nanos(11));
        // Inverted ordering: the earlier entry is the heap maximum, even
        // when its sequence number is larger.
        assert!(early > late);
        let tie_a: Entry<()> = Entry::new(Nanos::from_nanos(5), 1, ());
        let tie_b: Entry<()> = Entry::new(Nanos::from_nanos(5), 2, ());
        assert!(tie_a > tie_b, "equal times break ties by insertion order");
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a: EventQueue<u8> = EventQueue::with_capacity(64);
        let mut b: EventQueue<u8> = EventQueue::new();
        for q in [&mut a, &mut b] {
            q.schedule_at(Nanos::from_nanos(3), 1);
            q.schedule_at(Nanos::from_nanos(1), 2);
            q.reserve(16);
        }
        assert_eq!(a.pop(), b.pop());
        assert_eq!(a.pop(), Some((Nanos::from_nanos(3), 1)));
    }

    #[test]
    fn queue_len_tracking() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(Nanos::from_nanos(1), 1);
        q.schedule_in(Nanos::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
    }
}
