//! Deterministic discrete-event simulation engine.
//!
//! The engine is a classic event-queue DES specialised for determinism:
//! events scheduled for the same instant fire in insertion order (a strictly
//! monotonic sequence number breaks ties), so a simulation is a pure function
//! of its inputs.
//!
//! Ownership is structured to fit Rust: the *world* (all mutable simulation
//! state) is a single value implementing [`World`]; events are plain data
//! (usually an enum); and the engine hands the world each event together with
//! a mutable [`EventQueue`] through which it may schedule more events. No
//! `Rc<RefCell<…>>` webs, no trait-object callbacks.
//!
//! # Example
//!
//! ```
//! use xc_sim::engine::{EventQueue, Simulation, World};
//! use xc_sim::time::Nanos;
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Nanos, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             queue.schedule_in(Nanos::from_nanos(10), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().schedule_at(Nanos::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), Nanos::from_nanos(20));
//! ```

use crate::calendar::{key, key_time, CalendarQueue};
use crate::time::Nanos;

/// Simulation state that reacts to events.
///
/// Implementors own *all* mutable state of a simulation; the engine owns the
/// clock and the pending-event queue.
pub trait World: Sized {
    /// The event type driving this world (usually an enum).
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// The handler may schedule follow-up events through `queue`; it must not
    /// assume any particular ordering among events scheduled for the same
    /// instant other than insertion order.
    fn handle(&mut self, now: Nanos, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// The pending-event queue handed to [`World::handle`].
///
/// Events may be scheduled for the current instant or any future instant;
/// scheduling into the past is a logic error and panics, because it would
/// silently corrupt causality.
///
/// Storage is a [`CalendarQueue`] (see [`crate::calendar`]): events are
/// keyed by `(time, seq)` packed into a `u128`, and the wheel pops keys
/// in the same strictly ascending order the previous binary heap did,
/// with O(1) amortised push/pop instead of O(log n).
#[derive(Default)]
pub struct EventQueue<E> {
    cal: CalendarQueue<E>,
    seq: u64,
    now: Nanos,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            cal: CalendarQueue::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the open bucket reallocates.
    ///
    /// Closed-loop workloads know their steady-state queue depth up front
    /// (roughly one in-flight event per connection plus one per busy
    /// worker); pre-sizing removes every mid-run growth.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            cal: CalendarQueue::with_capacity(capacity),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.cal.reserve(additional);
    }

    /// Clears pending events and rewinds the clock and sequence counter
    /// to zero, keeping the calendar queue's allocations (see
    /// [`CalendarQueue::reset`]). A reset queue behaves exactly like a
    /// fresh one, which is what lets world arenas recycle it across
    /// simulations without perturbing determinism.
    pub fn reset(&mut self) {
        self.cal.reset();
        self.seq = 0;
        self.now = Nanos::ZERO;
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.cal.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.cal.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    #[inline]
    pub fn schedule_at(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.cal.push(key(at, seq), event);
    }

    /// Schedules `event` after a relative `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// The instant of the next pending event, if any. Takes `&mut self`
    /// because finding the front may advance the wheel cursor; the
    /// visible state (pending events, `now`) is unchanged.
    #[inline]
    pub fn peek_at(&mut self) -> Option<Nanos> {
        self.cal.peek_key().map(key_time)
    }

    #[inline]
    fn pop(&mut self) -> Option<(Nanos, E)> {
        self.cal.pop().map(|(key, event)| {
            let at = key_time(key);
            debug_assert!(at >= self.now);
            self.now = at;
            (at, event)
        })
    }

    /// Pops the next event iff it is due at or before `deadline` — a
    /// fused peek-then-pop so bounded drains touch the queue front once
    /// per event.
    #[inline]
    fn pop_due(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        // Every seq at time `deadline` qualifies, so the limit key is
        // (deadline, u64::MAX).
        self.cal
            .pop_due(key(deadline, u64::MAX))
            .map(|(key, event)| {
                let at = key_time(key);
                debug_assert!(at >= self.now);
                self.now = at;
                (at, event)
            })
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.cal.len())
            .finish()
    }
}

/// A running simulation: a [`World`] plus its event queue and clock.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    steps: u64,
}

impl<W: World> Simulation<W> {
    /// Wraps a world with an empty event queue at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            steps: 0,
        }
    }

    /// Like [`Simulation::new`], with the event queue pre-sized for
    /// `capacity` pending events (see [`EventQueue::with_capacity`]).
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        Simulation {
            world,
            queue: EventQueue::with_capacity(capacity),
            steps: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// Total number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inspect or seed state between
    /// phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the event queue (e.g. to schedule initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Wraps a world around an existing — typically recycled — event
    /// queue. For a reproducible run the queue should be in its reset
    /// state (time zero, no pending events, see [`EventQueue::reset`]);
    /// the step counter starts at zero either way.
    pub fn from_parts(world: W, queue: EventQueue<W::Event>) -> Self {
        Simulation {
            world,
            queue,
            steps: 0,
        }
    }

    /// Consumes the simulation, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Consumes the simulation, returning both the world and the event
    /// queue so callers can recycle the queue's allocations (the
    /// counterpart to [`Simulation::from_parts`]).
    pub fn into_parts(self) -> (W, EventQueue<W::Event>) {
        (self.world, self.queue)
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    #[inline]
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, event)) => {
                self.steps += 1;
                self.world.handle(at, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Returns the finishing time.
    pub fn run(&mut self) -> Nanos {
        while self.step() {}
        self.now()
    }

    /// Runs until the queue drains or the clock passes `deadline`, whichever
    /// comes first. Events scheduled at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: Nanos) -> Nanos {
        while let Some((at, event)) = self.queue.pop_due(deadline) {
            self.steps += 1;
            self.world.handle(at, event, &mut self.queue);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so measurement windows have a well-defined length.
        if self.queue.now < deadline {
            self.queue.now = deadline;
        }
        self.now()
    }

    /// Runs for at most `max_steps` additional events (a runaway backstop for
    /// property tests). Returns the number of events processed.
    pub fn run_steps(&mut self, max_steps: u64) -> u64 {
        let mut n = 0;
        while n < max_steps && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Mark(id) => self.log.push((now.as_nanos(), id)),
                Ev::Chain(depth) => {
                    self.log.push((now.as_nanos(), depth));
                    if depth > 0 {
                        queue.schedule_in(Nanos::from_nanos(5), Ev::Chain(depth - 1));
                    }
                }
            }
        }
    }

    fn sim() -> Simulation<Recorder> {
        Simulation::new(Recorder { log: Vec::new() })
    }

    #[test]
    fn fires_in_time_order() {
        let mut s = sim();
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(30), Ev::Mark(3));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(10), Ev::Mark(1));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(20), Ev::Mark(2));
        s.run();
        assert_eq!(s.world().log, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut s = sim();
        for id in 0..10 {
            s.queue_mut()
                .schedule_at(Nanos::from_nanos(50), Ev::Mark(id));
        }
        s.run();
        let ids: Vec<u32> = s.world().log.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(4));
        let end = s.run();
        assert_eq!(end, Nanos::from_nanos(20));
        assert_eq!(s.steps(), 5);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(100));
        s.run_until(Nanos::from_nanos(23));
        // Events at t=0,5,10,15,20 fire; t=25 does not.
        assert_eq!(s.world().log.len(), 5);
        assert_eq!(s.now(), Nanos::from_nanos(23));
        // Remaining events still fire afterwards.
        s.run_until(Nanos::from_nanos(25));
        assert_eq!(s.world().log.len(), 6);
    }

    #[test]
    fn run_until_advances_clock_when_drained() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::from_nanos(5), Ev::Mark(1));
        s.run_until(Nanos::from_nanos(1_000));
        assert_eq!(s.now(), Nanos::from_nanos(1_000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = sim();
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(10), Ev::Mark(1));
        s.run();
        s.queue_mut().schedule_at(Nanos::from_nanos(5), Ev::Mark(2));
    }

    #[test]
    fn run_steps_backstop() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(u32::MAX));
        let n = s.run_steps(100);
        assert_eq!(n, 100);
        assert!(!s.queue.is_empty());
    }

    /// A handler that reschedules at the *current* instant mid-drain must
    /// see its follow-up fire after all other events at that instant that
    /// were already pending, in insertion order.
    #[test]
    fn schedule_at_now_during_drain_fires_last_in_insertion_order() {
        struct Requeue {
            log: Vec<u32>,
        }
        impl World for Requeue {
            type Event = u32;
            fn handle(&mut self, now: Nanos, id: u32, queue: &mut EventQueue<u32>) {
                self.log.push(id);
                if id == 0 {
                    queue.schedule_at(now, 100);
                }
            }
        }
        let mut s = Simulation::new(Requeue { log: Vec::new() });
        for id in 0..3 {
            s.queue_mut().schedule_at(Nanos::from_nanos(7), id);
        }
        s.run();
        assert_eq!(s.world().log, vec![0, 1, 2, 100]);
        assert_eq!(s.now(), Nanos::from_nanos(7));
    }

    #[test]
    fn schedules_at_nanos_max() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(Nanos::from_nanos(3), 1);
        q.schedule_at(Nanos::MAX, 2);
        q.schedule_in(Nanos::MAX, 3); // saturates to MAX, fires after 2
        assert_eq!(q.pop(), Some((Nanos::from_nanos(3), 1)));
        assert_eq!(q.peek_at(), Some(Nanos::MAX));
        assert_eq!(q.pop(), Some((Nanos::MAX, 2)));
        assert_eq!(q.pop(), Some((Nanos::MAX, 3)));
        assert_eq!(q.pop(), None);
        // At now == MAX, scheduling "later" still works (saturating).
        q.schedule_in(Nanos::from_nanos(1), 4);
        assert_eq!(q.pop(), Some((Nanos::MAX, 4)));
    }

    /// Events whose epochs collide on the same wheel residue (exactly one
    /// window apart) must still fire in time order across the rollover.
    #[test]
    fn wheel_epoch_rollover_preserves_order() {
        let mut s = sim();
        // ~4.2 ms apart: same ring residue at 4 µs × 1024 buckets.
        let window = Nanos::from_nanos((1 << 12) * 1024);
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(100), Ev::Mark(1));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(100) + window, Ev::Mark(2));
        s.queue_mut()
            .schedule_at(Nanos::from_nanos(100) + window * 2, Ev::Mark(3));
        s.run();
        let ids: Vec<u32> = s.world().log.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn peek_at_reports_next_event_without_popping() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.schedule_at(Nanos::from_nanos(9), 1);
        q.schedule_at(Nanos::from_nanos(4), 2);
        assert_eq!(q.peek_at(), Some(Nanos::from_nanos(4)));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((Nanos::from_nanos(4), 2)));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a: EventQueue<u8> = EventQueue::with_capacity(64);
        let mut b: EventQueue<u8> = EventQueue::new();
        for q in [&mut a, &mut b] {
            q.schedule_at(Nanos::from_nanos(3), 1);
            q.schedule_at(Nanos::from_nanos(1), 2);
            q.reserve(16);
        }
        assert_eq!(a.pop(), b.pop());
        assert_eq!(a.pop(), Some((Nanos::from_nanos(3), 1)));
    }

    #[test]
    fn reset_rewinds_clock_seq_and_pending() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(8);
        q.schedule_at(Nanos::from_nanos(3), 1);
        q.schedule_at(Nanos::from_nanos(9), 2);
        assert_eq!(q.pop(), Some((Nanos::from_nanos(3), 1)));
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), Nanos::ZERO);
        // Scheduling at time zero is legal again and insertion order
        // restarts from seq 0 — a recycled queue is a fresh queue.
        q.schedule_at(Nanos::ZERO, 7);
        q.schedule_at(Nanos::ZERO, 8);
        assert_eq!(q.pop(), Some((Nanos::ZERO, 7)));
        assert_eq!(q.pop(), Some((Nanos::ZERO, 8)));
    }

    #[test]
    fn from_parts_recycles_a_reset_queue() {
        let mut s = sim();
        s.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(4));
        s.run();
        let (_, mut queue) = s.into_parts();
        queue.reset();
        let mut s2 = Simulation::from_parts(Recorder { log: Vec::new() }, queue);
        assert_eq!(s2.steps(), 0);
        s2.queue_mut().schedule_at(Nanos::ZERO, Ev::Chain(4));
        let end = s2.run();
        assert_eq!(end, Nanos::from_nanos(20));
        assert_eq!(s2.steps(), 5);
    }

    #[test]
    fn queue_len_tracking() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(Nanos::from_nanos(1), 1);
        q.schedule_in(Nanos::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
    }
}
