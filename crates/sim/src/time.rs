//! Simulated time.
//!
//! All simulation components measure time in integer nanoseconds via the
//! [`Nanos`] newtype. Using an integer type keeps the simulation exactly
//! deterministic (no floating-point accumulation drift), and the newtype
//! keeps nanoseconds from being confused with counters or byte sizes
//! (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant in simulated nanoseconds.
///
/// `Nanos` is both a point on the simulation clock and a span between two
/// points; the engine does not need separate `Instant`/`Duration` types
/// because simulated time starts at zero.
///
/// # Example
///
/// ```
/// use xc_sim::time::Nanos;
///
/// let syscall = Nanos::from_nanos(60);
/// let million = syscall * 1_000_000;
/// assert_eq!(million.as_millis_f64(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / the simulation epoch.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time (used as an "infinitely far" deadline).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a `Nanos` from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a `Nanos` from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a `Nanos` from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a `Nanos` from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a `Nanos` from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Nanos::ZERO
        } else {
            Nanos((s * 1e9).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns zero instead of wrapping when
    /// `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Saturating addition, clamping at [`Nanos::MAX`].
    #[inline]
    pub fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Saturating multiplication by an integer factor, clamping at
    /// [`Nanos::MAX`] — exponential-backoff schedules double delays
    /// repeatedly and must cap instead of overflowing.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }

    /// Multiplies by a floating-point factor, rounding to the nearest
    /// nanosecond. Useful for environment speed scaling.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor >= 0.0 && factor.is_finite(), "invalid scale factor");
        Nanos((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    /// Formats with an adaptive unit: `ns`, `µs`, `ms`, or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}µs", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Nanos::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_nanos(100);
        let b = Nanos::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(a), Nanos::MAX);
        assert_eq!(a.saturating_mul(4).as_nanos(), 400);
        assert_eq!(Nanos::MAX.saturating_mul(2), Nanos::MAX);
    }

    #[test]
    fn scaling() {
        assert_eq!(Nanos::from_nanos(100).scale(1.5).as_nanos(), 150);
        assert_eq!(Nanos::from_nanos(100).scale(0.0), Nanos::ZERO);
    }

    #[test]
    fn display_adaptive_units() {
        assert_eq!(Nanos::from_nanos(999).to_string(), "999ns");
        assert_eq!(Nanos::from_nanos(1_500).to_string(), "1.50µs");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.00ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_and_ordering() {
        let total: Nanos = [1u64, 2, 3].iter().map(|&n| Nanos::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
        assert!(Nanos::from_nanos(5) < Nanos::from_nanos(6));
        assert_eq!(Nanos::from_nanos(5).max(Nanos::from_nanos(6)).as_nanos(), 6);
        assert_eq!(Nanos::from_nanos(5).min(Nanos::from_nanos(6)).as_nanos(), 5);
    }
}
