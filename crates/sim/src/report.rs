//! Experiment output: aligned text tables and a minimal JSON emitter.
//!
//! Every figure/table harness in `xc-bench` renders its results through
//! [`Table`], so all experiment output shares one format, and dumps a
//! machine-readable mirror via [`json_object`]/[`json_array`] without pulling
//! a serialization dependency into the simulation core.

use std::fmt;
use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Left-aligned text.
    Text(String),
    /// Right-aligned number rendered with the given number of decimals.
    Num(f64, usize),
    /// Empty cell.
    Blank,
}

impl Cell {
    /// Appends the cell's text form to `out` — no per-cell `String`;
    /// callers thread one reused buffer through every cell.
    fn render_into(&self, out: &mut String) {
        match self {
            Cell::Text(s) => out.push_str(s),
            Cell::Num(v, dp) => {
                let _ = write!(out, "{v:.*}", dp);
            }
            Cell::Blank => {}
        }
    }

    fn is_numeric(&self) -> bool {
        matches!(self, Cell::Num(..))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v, 2)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Num(v as f64, 0)
    }
}

/// An aligned text table with a title, column headers, and rows.
///
/// # Example
///
/// ```
/// use xc_sim::report::Table;
///
/// let mut t = Table::new("Demo", &["config", "throughput"]);
/// t.row(["Docker".into(), 1.00.into()]);
/// t.row(["X-Container".into(), 1.86.into()]);
/// let text = t.to_text();
/// assert!(text.contains("X-Container"));
/// assert!(text.contains("1.86"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with blanks;
    /// longer rows are permitted and extend the layout.
    pub fn row<I>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = Cell>,
    {
        self.rows.push(cells.into_iter().collect());
        self
    }

    /// Appends a visual separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators included).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form into a fresh `String`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Appends the aligned text form to `out`.
    ///
    /// Allocation-free per cell: a single scratch buffer is reused for
    /// every cell (once in the width pass, once in the emit pass —
    /// re-rendering a cell is cheaper than keeping `rows × columns`
    /// heap strings alive), and lines are assembled directly in `out`.
    /// Byte-identical to the previous per-cell-`String` renderer, which
    /// the `render_into_matches_string_per_cell_reference` test pins.
    pub fn render_into(&self, out: &mut String) {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);

        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        let mut scratch = String::new();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                scratch.clear();
                cell.render_into(&mut scratch);
                widths[i] = widths[i].max(scratch.chars().count());
            }
        }

        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "== {} ==", self.title);
        // The header line's byte length (≥ `total` via padding) sets the
        // rule width; measure it as written instead of buffering it.
        let header_start = out.len();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
        }
        let rule = total.max(out.len() - header_start);
        out.push('\n');
        push_dashes(out, rule);

        for row in &self.rows {
            if row.is_empty() {
                push_dashes(out, rule);
                continue;
            }
            let line_start = out.len();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                scratch.clear();
                cell.render_into(&mut scratch);
                if cell.is_numeric() {
                    let _ = write!(out, "{:>w$}", scratch, w = widths[i]);
                } else {
                    let _ = write!(out, "{:<w$}", scratch, w = widths[i]);
                }
            }
            let trimmed = out[line_start..].trim_end().len();
            out.truncate(line_start + trimmed);
            out.push('\n');
        }
    }
}

/// Appends `n` dashes and a newline (the table rule) without the
/// intermediate `String` of `"-".repeat(n)`.
fn push_dashes(out: &mut String, n: usize) {
    out.reserve(n + 1);
    for _ in 0..n {
        out.push('-');
    }
    out.push('\n');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// A JSON value for the minimal emitter.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values are emitted as `null`).
    Num(f64),
    /// String (escaped on emission).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Ordered object (insertion order preserved for reproducible output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes to compact JSON text.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Parses one JSON value from `text` (the whole string must be the
    /// value, modulo surrounding whitespace). The inverse of
    /// [`write_into`](Self::write_into): everything the emitter produces
    /// parses back, including `f64` round-trips via Rust's shortest
    /// `Display` form — which is what lets the bench journal replay
    /// checkpointed cell results byte-identically.
    ///
    /// # Errors
    ///
    /// A short description with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Appends compact JSON text to `out` — lets callers stream many
    /// values (e.g. one record per finding) into one buffer.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string. Shared by string
/// values and object keys (keys previously cloned through a temporary
/// `Json::Str` — one heap allocation per field).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Advances `pos` past ASCII whitespace.
fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Consumes the literal `lit` at `pos` or errors.
fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

/// Recursive-descent value parser for [`Json::parse`].
fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect_lit(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_lit(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {}", *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

/// Parses a quoted string with the emitter's escape set plus `\uXXXX`
/// (surrogate pairs included) and `\/`, `\b`, `\f` for interchange.
fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = parse_hex4(bytes, pos)?;
                        if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: a low surrogate must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            } else {
                                return Err("lone high surrogate".to_owned());
                            }
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(format!("invalid codepoint {code:#x}")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-decode the UTF-8 run starting here in one step.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = start + len;
                let chunk = bytes
                    .get(start..end)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

/// Byte length of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses exactly four hex digits.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .and_then(|c| std::str::from_utf8(c).ok())
        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
    let code =
        u32::from_str_radix(chunk, 16).map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
    *pos += 4;
    Ok(code)
}

/// Parses a JSON number via `f64::from_str` over the numeric run.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let run = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII run");
    run.parse::<f64>()
        .map_err(|_| format!("invalid number {run:?} at byte {start}"))
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn json_object<I, K, V>(fields: I) -> Json
where
    I: IntoIterator<Item = (K, V)>,
    K: Into<String>,
    V: Into<Json>,
{
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    )
}

/// Builds a [`Json::Arr`] from values.
pub fn json_array<I, V>(items: I) -> Json
where
    I: IntoIterator<Item = V>,
    V: Into<Json>,
{
    Json::Arr(items.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(["alpha".into(), Cell::Num(1.5, 2)]);
        t.row(["b".into(), Cell::Num(10.0, 1)]);
        let text = t.to_text();
        assert!(text.contains("== T =="));
        assert!(text.contains("alpha"));
        assert!(text.contains("1.50"));
        assert!(text.contains("10.0"));
        // Numbers are right-aligned to the same column end.
        let lines: Vec<&str> = text.lines().collect();
        let a = lines.iter().find(|l| l.contains("alpha")).unwrap();
        let b = lines.iter().find(|l| l.contains("10.0")).unwrap();
        assert_eq!(
            a.rfind("1.50").map(|i| i + 4),
            b.rfind("10.0").map(|i| i + 4),
        );
    }

    #[test]
    fn table_separator_and_ragged_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row(["x".into(), "extra".into()]);
        t.separator();
        t.row(["y".into()]);
        let text = t.to_text();
        assert!(text.contains("extra"));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    /// The pre-`render_into` renderer, kept verbatim as the reference:
    /// one `String` per cell, buffered header/row lines, `str::repeat`
    /// rules. `render_into` must reproduce its bytes exactly.
    fn reference_to_text(t: &Table) -> String {
        fn render(cell: &Cell) -> String {
            match cell {
                Cell::Text(s) => s.clone(),
                Cell::Num(v, dp) => format!("{v:.*}", dp),
                Cell::Blank => String::new(),
            }
        }
        let columns = t
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(t.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in t.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        let rendered: Vec<Vec<String>> = t
            .rows
            .iter()
            .map(|row| row.iter().map(render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", t.title);
        let mut header_line = String::new();
        for (i, h) in t.headers.iter().enumerate() {
            if i > 0 {
                header_line.push_str(" | ");
            }
            let _ = write!(header_line, "{:<w$}", h, w = widths[i]);
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(total.max(header_line.len())));
        for (row, cells) in t.rows.iter().zip(&rendered) {
            if cells.is_empty() {
                let _ = writeln!(out, "{}", "-".repeat(total.max(header_line.len())));
                continue;
            }
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str(" | ");
                }
                if row[i].is_numeric() {
                    let _ = write!(line, "{:>w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(line, "{:<w$}", cell, w = widths[i]);
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// A golden table exercising every layout feature: ragged rows,
    /// separators, blanks, mixed alignment, wide headers, multi-byte
    /// chars, trailing-space trimming.
    fn golden_table() -> Table {
        let mut t = Table::new("Fig X — golden", &["configuration", "rps", "Δ vs docker"]);
        t.row([
            "Docker (µs)".into(),
            Cell::Num(1234.5, 1),
            Cell::Num(1.0, 2),
        ]);
        t.row(["X-Container".into(), Cell::Num(9.0, 0), Cell::Blank]);
        t.separator();
        t.row([
            "wide row".into(),
            Cell::Num(-0.5, 3),
            2.0.into(),
            "overflow col".into(),
        ]);
        t.row([Cell::Blank, Cell::Blank]);
        t.row(["tail".into()]);
        t
    }

    #[test]
    fn render_into_matches_string_per_cell_reference() {
        let t = golden_table();
        let mut streamed = String::from("prefix|");
        t.render_into(&mut streamed);
        assert_eq!(streamed, format!("prefix|{}", reference_to_text(&t)));
        assert_eq!(t.to_text(), reference_to_text(&t));
        // An empty table is a degenerate but legal layout.
        let empty = Table::new("E", &[]);
        assert_eq!(empty.to_text(), reference_to_text(&empty));
    }

    #[test]
    fn json_escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_object_roundtrip_shape() {
        let j = json_object([
            ("name", Json::from("fig4")),
            ("relative", Json::from(27.4)),
            ("patched", Json::from(true)),
            ("runs", json_array([1u64, 2, 3])),
        ]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"fig4","relative":27.4,"patched":true,"runs":[1,2,3]}"#
        );
    }

    #[test]
    fn json_numbers() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Null.to_string_compact(), "null");
    }

    #[test]
    fn parse_roundtrips_emitter_output() {
        let j = json_object([
            ("name", Json::from("fig4 — \"quoted\"\n\\tab\t")),
            ("relative", Json::from(27.4)),
            ("neg", Json::Num(-0.001_220_703_125)),
            ("patched", Json::from(true)),
            ("missing", Json::Null),
            ("runs", json_array([1u64, 2, 3])),
            ("nested", json_object([("k", Json::Arr(vec![]))])),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = j.to_string_compact();
        assert_eq!(Json::parse(&text).expect("parses"), j);
    }

    #[test]
    fn parse_f64_display_is_exact() {
        // The journal's replay contract: every f64 the emitter writes
        // parses back to identical bits (Rust Display is shortest
        // round-trip), including values with long fractional parts.
        for v in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            2.5e-308,
            98_765_432.123_456_78,
        ] {
            let text = Json::Num(v).to_string_compact();
            let back = Json::parse(&text).expect("parses").as_num().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let j =
            Json::parse(" { \"a\" : [ 1 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ").expect("parses");
        let arr = j.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("Aé😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "{\"a\":\"\\ud800\"}",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn json_accessors() {
        let j = json_object([("x", Json::from(1.0)), ("s", Json::from("v"))]);
        assert_eq!(j.get("x").and_then(Json::as_num), Some(1.0));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Bool(true).as_num(), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
