//! Experiment output: aligned text tables and a minimal JSON emitter.
//!
//! Every figure/table harness in `xc-bench` renders its results through
//! [`Table`], so all experiment output shares one format, and dumps a
//! machine-readable mirror via [`json_object`]/[`json_array`] without pulling
//! a serialization dependency into the simulation core.

use std::fmt;
use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Left-aligned text.
    Text(String),
    /// Right-aligned number rendered with the given number of decimals.
    Num(f64, usize),
    /// Empty cell.
    Blank,
}

impl Cell {
    /// Appends the cell's text form to `out` — no per-cell `String`;
    /// callers thread one reused buffer through every cell.
    fn render_into(&self, out: &mut String) {
        match self {
            Cell::Text(s) => out.push_str(s),
            Cell::Num(v, dp) => {
                let _ = write!(out, "{v:.*}", dp);
            }
            Cell::Blank => {}
        }
    }

    fn is_numeric(&self) -> bool {
        matches!(self, Cell::Num(..))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v, 2)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Num(v as f64, 0)
    }
}

/// An aligned text table with a title, column headers, and rows.
///
/// # Example
///
/// ```
/// use xc_sim::report::Table;
///
/// let mut t = Table::new("Demo", &["config", "throughput"]);
/// t.row(["Docker".into(), 1.00.into()]);
/// t.row(["X-Container".into(), 1.86.into()]);
/// let text = t.to_text();
/// assert!(text.contains("X-Container"));
/// assert!(text.contains("1.86"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with blanks;
    /// longer rows are permitted and extend the layout.
    pub fn row<I>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = Cell>,
    {
        self.rows.push(cells.into_iter().collect());
        self
    }

    /// Appends a visual separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators included).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form into a fresh `String`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Appends the aligned text form to `out`.
    ///
    /// Allocation-free per cell: a single scratch buffer is reused for
    /// every cell (once in the width pass, once in the emit pass —
    /// re-rendering a cell is cheaper than keeping `rows × columns`
    /// heap strings alive), and lines are assembled directly in `out`.
    /// Byte-identical to the previous per-cell-`String` renderer, which
    /// the `render_into_matches_string_per_cell_reference` test pins.
    pub fn render_into(&self, out: &mut String) {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);

        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        let mut scratch = String::new();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                scratch.clear();
                cell.render_into(&mut scratch);
                widths[i] = widths[i].max(scratch.chars().count());
            }
        }

        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "== {} ==", self.title);
        // The header line's byte length (≥ `total` via padding) sets the
        // rule width; measure it as written instead of buffering it.
        let header_start = out.len();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
        }
        let rule = total.max(out.len() - header_start);
        out.push('\n');
        push_dashes(out, rule);

        for row in &self.rows {
            if row.is_empty() {
                push_dashes(out, rule);
                continue;
            }
            let line_start = out.len();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                scratch.clear();
                cell.render_into(&mut scratch);
                if cell.is_numeric() {
                    let _ = write!(out, "{:>w$}", scratch, w = widths[i]);
                } else {
                    let _ = write!(out, "{:<w$}", scratch, w = widths[i]);
                }
            }
            let trimmed = out[line_start..].trim_end().len();
            out.truncate(line_start + trimmed);
            out.push('\n');
        }
    }
}

/// Appends `n` dashes and a newline (the table rule) without the
/// intermediate `String` of `"-".repeat(n)`.
fn push_dashes(out: &mut String, n: usize) {
    out.reserve(n + 1);
    for _ in 0..n {
        out.push('-');
    }
    out.push('\n');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// A JSON value for the minimal emitter.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values are emitted as `null`).
    Num(f64),
    /// String (escaped on emission).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Ordered object (insertion order preserved for reproducible output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes to compact JSON text.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Appends compact JSON text to `out` — lets callers stream many
    /// values (e.g. one record per finding) into one buffer.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string. Shared by string
/// values and object keys (keys previously cloned through a temporary
/// `Json::Str` — one heap allocation per field).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn json_object<I, K, V>(fields: I) -> Json
where
    I: IntoIterator<Item = (K, V)>,
    K: Into<String>,
    V: Into<Json>,
{
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    )
}

/// Builds a [`Json::Arr`] from values.
pub fn json_array<I, V>(items: I) -> Json
where
    I: IntoIterator<Item = V>,
    V: Into<Json>,
{
    Json::Arr(items.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(["alpha".into(), Cell::Num(1.5, 2)]);
        t.row(["b".into(), Cell::Num(10.0, 1)]);
        let text = t.to_text();
        assert!(text.contains("== T =="));
        assert!(text.contains("alpha"));
        assert!(text.contains("1.50"));
        assert!(text.contains("10.0"));
        // Numbers are right-aligned to the same column end.
        let lines: Vec<&str> = text.lines().collect();
        let a = lines.iter().find(|l| l.contains("alpha")).unwrap();
        let b = lines.iter().find(|l| l.contains("10.0")).unwrap();
        assert_eq!(
            a.rfind("1.50").map(|i| i + 4),
            b.rfind("10.0").map(|i| i + 4),
        );
    }

    #[test]
    fn table_separator_and_ragged_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row(["x".into(), "extra".into()]);
        t.separator();
        t.row(["y".into()]);
        let text = t.to_text();
        assert!(text.contains("extra"));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    /// The pre-`render_into` renderer, kept verbatim as the reference:
    /// one `String` per cell, buffered header/row lines, `str::repeat`
    /// rules. `render_into` must reproduce its bytes exactly.
    fn reference_to_text(t: &Table) -> String {
        fn render(cell: &Cell) -> String {
            match cell {
                Cell::Text(s) => s.clone(),
                Cell::Num(v, dp) => format!("{v:.*}", dp),
                Cell::Blank => String::new(),
            }
        }
        let columns = t
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(t.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in t.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        let rendered: Vec<Vec<String>> = t
            .rows
            .iter()
            .map(|row| row.iter().map(render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", t.title);
        let mut header_line = String::new();
        for (i, h) in t.headers.iter().enumerate() {
            if i > 0 {
                header_line.push_str(" | ");
            }
            let _ = write!(header_line, "{:<w$}", h, w = widths[i]);
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(total.max(header_line.len())));
        for (row, cells) in t.rows.iter().zip(&rendered) {
            if cells.is_empty() {
                let _ = writeln!(out, "{}", "-".repeat(total.max(header_line.len())));
                continue;
            }
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str(" | ");
                }
                if row[i].is_numeric() {
                    let _ = write!(line, "{:>w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(line, "{:<w$}", cell, w = widths[i]);
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// A golden table exercising every layout feature: ragged rows,
    /// separators, blanks, mixed alignment, wide headers, multi-byte
    /// chars, trailing-space trimming.
    fn golden_table() -> Table {
        let mut t = Table::new("Fig X — golden", &["configuration", "rps", "Δ vs docker"]);
        t.row([
            "Docker (µs)".into(),
            Cell::Num(1234.5, 1),
            Cell::Num(1.0, 2),
        ]);
        t.row(["X-Container".into(), Cell::Num(9.0, 0), Cell::Blank]);
        t.separator();
        t.row([
            "wide row".into(),
            Cell::Num(-0.5, 3),
            2.0.into(),
            "overflow col".into(),
        ]);
        t.row([Cell::Blank, Cell::Blank]);
        t.row(["tail".into()]);
        t
    }

    #[test]
    fn render_into_matches_string_per_cell_reference() {
        let t = golden_table();
        let mut streamed = String::from("prefix|");
        t.render_into(&mut streamed);
        assert_eq!(streamed, format!("prefix|{}", reference_to_text(&t)));
        assert_eq!(t.to_text(), reference_to_text(&t));
        // An empty table is a degenerate but legal layout.
        let empty = Table::new("E", &[]);
        assert_eq!(empty.to_text(), reference_to_text(&empty));
    }

    #[test]
    fn json_escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_object_roundtrip_shape() {
        let j = json_object([
            ("name", Json::from("fig4")),
            ("relative", Json::from(27.4)),
            ("patched", Json::from(true)),
            ("runs", json_array([1u64, 2, 3])),
        ]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"fig4","relative":27.4,"patched":true,"runs":[1,2,3]}"#
        );
    }

    #[test]
    fn json_numbers() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Null.to_string_compact(), "null");
    }
}
