//! Primitive cost model.
//!
//! Every container architecture in the reproduction is *composed* from the
//! primitive operations below — a syscall trap, a hypercall, a page-table
//! switch, a TLB flush, a ptrace stop, a VM exit, … The per-workload numbers
//! in the paper's figures then emerge from **how many of each primitive every
//! architecture executes**, which is decided by the models in `xc-xen`,
//! `xc-libos` and `xc-runtimes`, not by per-figure constants.
//!
//! Default magnitudes are taken from public measurements of Skylake-era Xeon
//! servers (lmbench-style microbenchmarks, the KPTI performance litigation of
//! 2018, Xen and KVM transition-cost studies). They are inputs to the model;
//! see `DESIGN.md` §1 for the measured-vs-asserted boundary. All values can
//! be overridden through [`CostModelBuilder`] — the ablation benches do
//! exactly that.

use std::fmt;

use crate::time::Nanos;

macro_rules! cost_model {
    (
        $(
            $(#[$meta:meta])*
            $field:ident : $default:expr
        ),* $(,)?
    ) => {
        /// Primitive operation costs, in simulated nanoseconds.
        ///
        /// Construct via [`CostModel::skylake_cloud`] (the calibrated
        /// default) or customize with [`CostModel::builder`].
        ///
        /// # Example
        ///
        /// ```
        /// use xc_sim::cost::CostModel;
        /// use xc_sim::time::Nanos;
        ///
        /// let costs = CostModel::builder()
        ///     .kpti_trap_extra(Nanos::ZERO) // pre-Meltdown world
        ///     .build();
        /// assert_eq!(costs.kpti_trap_extra, Nanos::ZERO);
        /// ```
        #[derive(Debug, Clone, PartialEq, Eq)]
        #[non_exhaustive]
        pub struct CostModel {
            $(
                $(#[$meta])*
                pub $field: Nanos,
            )*
        }

        /// Builder for [`CostModel`] (see [`CostModel::builder`]).
        #[derive(Debug, Clone)]
        pub struct CostModelBuilder {
            model: CostModel,
        }

        impl CostModelBuilder {
            $(
                $(#[$meta])*
                pub fn $field(mut self, value: Nanos) -> Self {
                    self.model.$field = value;
                    self
                }
            )*

            /// Finishes the builder.
            pub fn build(self) -> CostModel {
                self.model
            }
        }

        impl CostModel {
            /// The calibrated default model: a dual-socket Skylake-era Xeon
            /// cloud server (the paper used EC2 c4.2xlarge, GCE custom-8, and
            /// E5-2690 local machines).
            pub fn skylake_cloud() -> Self {
                CostModel {
                    $($field: Nanos::from_nanos($default),)*
                }
            }

            /// Starts a builder seeded with [`CostModel::skylake_cloud`].
            pub fn builder() -> CostModelBuilder {
                CostModelBuilder { model: CostModel::skylake_cloud() }
            }

            /// Iterates over `(name, value)` pairs — used by the report
            /// harnesses to dump the model alongside results.
            pub fn entries(&self) -> Vec<(&'static str, Nanos)> {
                vec![$((stringify!($field), self.$field),)*]
            }
        }
    };
}

cost_model! {
    // ---- CPU / syscall path -------------------------------------------

    /// A user-space `call`/`ret` pair through the vsyscall entry table —
    /// what an ABOM-patched "system call" costs before the handler runs
    /// (§4.4 of the paper).
    function_call: 2,
    /// `syscall`/`sysret` round trip into ring 0 and back, with register
    /// save/restore but *no* KPTI and no filters. lmbench "simple syscall"
    /// on Skylake ≈ 40–50 ns.
    syscall_trap: 45,
    /// Per-syscall cost of the default Docker seccomp-BPF filter plus
    /// audit hooks. Published seccomp overhead measurements put the
    /// default profile at 60–120 ns per syscall.
    seccomp_filter: 90,
    /// Extra cost per kernel entry/exit pair under the Meltdown/KPTI page
    /// table isolation patch (CR3 write ×2 plus TLB effects; EC2-era Xeons
    /// without PCID passthrough sit at the expensive end).
    kpti_trap_extra: 420,
    /// X-LibOS syscall handler dispatch overhead once reached via function
    /// call: entry-table indirection, stack switch to the kernel stack
    /// (§4.3 — still required with multiple processes), return fix-ups.
    vsyscall_dispatch: 10,
    /// Kernel-side work of a trivial syscall body (`getpid`-class).
    syscall_body: 5,
    /// User-space loop overhead per benchmark iteration (UnixBench-style
    /// harness around the measured calls).
    loop_iteration: 2,

    // ---- Virtualization primitives ------------------------------------

    /// Hypercall into the (X-)Kernel and back, including argument
    /// validation. Xen PV hypercalls measure 150–300 ns.
    hypercall: 250,
    /// Hardware VM exit + entry round trip (single-level virtualization).
    vmexit: 1_200,
    /// *Additional* cost when a VM exit happens under nested
    /// virtualization (L2→L0→L1 bouncing; Google documents the penalty as
    /// large — this makes a nested exit ≈ 8 µs total).
    nested_vmexit_extra: 6_800,
    /// One ptrace syscall-stop round trip: two scheduler wake-ups, signal
    /// delivery, and the tracer's own syscalls (gVisor's ptrace platform
    /// pays this *twice* per sandboxed syscall entry/exit pair; the 5–6 µs
    /// figure matches gVisor's published "structural cost" numbers).
    ptrace_stop: 2_900,
    /// Sending an event through a Xen event channel (hypercall + bitmap
    /// update).
    event_channel_send: 250,
    /// Delivering a pending event upcall into a PV guest (bounce frame
    /// setup and entry into the guest handler).
    upcall_delivery: 400,
    /// `iret` performed via the Xen PV hypercall (unmodified PV ABI,
    /// needed to switch privilege levels atomically — §4.2).
    iret_hypercall: 280,
    /// `iret` emulated entirely in user mode by X-LibOS (push registers to
    /// the kernel stack, `ret`) — the X-Container replacement for the
    /// hypercall (§4.2).
    iret_userspace: 12,

    // ---- Memory management --------------------------------------------

    /// Bare CR3 write (page-table switch) without a full flush (global
    /// pages / PCID retained).
    page_table_switch: 150,
    /// Full TLB flush (CR3 write discarding all non-global entries),
    /// *excluding* refill; refill is charged per page below.
    tlb_flush_full: 220,
    /// Amortized page-walk cost to refill one hot TLB entry after a flush.
    tlb_refill_per_page: 22,
    /// Minor page fault service (no I/O).
    page_fault: 900,
    /// Validating and applying one page-table entry update via the
    /// hypervisor (`mmu_update`); batched updates pay one
    /// [`hypercall`](CostModel::hypercall) plus this per entry.
    pte_update: 35,
    /// Copying one KiB of memory (≈ 30 GB/s effective single-threaded
    /// copy bandwidth).
    memcpy_per_kb: 33,

    // ---- Scheduling / process management ------------------------------

    /// Fixed cost of a scheduler decision plus state save/restore for a
    /// kernel-level context switch (excluding page-table effects).
    context_switch_base: 950,
    /// Additional scheduler cost per runnable task on the runqueue beyond
    /// the first (cache pressure on the runqueue structures; this is what
    /// makes flat scheduling of 4N processes degrade faster than
    /// hierarchical N×4 scheduling in Figure 8).
    sched_per_runnable: 18,
    /// Switching between threads of one process (no address-space change).
    thread_switch: 600,
    /// `fork()` fixed cost: task struct, descriptor table, accounting.
    fork_base: 38_000,
    /// Per resident page cost in `fork()` for copy-on-write page-table
    /// setup (one PTE write; under PV this routes through `mmu_update`).
    fork_per_page: 9,
    /// `execve()` fixed cost beyond its constituent syscalls: binary
    /// parsing, mm teardown/rebuild.
    exec_base: 180_000,
    /// Process teardown (exit + wait reaping).
    process_teardown: 30_000,

    // ---- Files / IPC ---------------------------------------------------

    /// VFS layer traversal per file syscall (dentry/inode lookups, fd
    /// table).
    vfs_op: 140,
    /// Reading/writing one KiB that hits the page cache (index lookup +
    /// copy).
    page_cache_per_kb: 45,
    /// Pipe buffer bookkeeping per read/write beyond the data copy.
    pipe_op: 120,

    // ---- Network -------------------------------------------------------

    /// Kernel TCP/IP processing of one segment (one direction, native
    /// stack).
    tcp_segment: 1_500,
    /// Softirq / interrupt entry for one NIC event (this is a kernel
    /// entry: KPTI taxes it when the patch is on).
    softirq_entry: 400,
    /// Traversing one iptables NAT rule set (the paper exposes all
    /// cloud-hosted servers via iptables port forwarding).
    iptables_nat: 300,
    /// One software bridge / veth hop (Docker bridge networking).
    bridge_hop: 250,
    /// Copying one KiB between front-end and back-end driver domains via
    /// Xen grant copy.
    grant_copy_per_kb: 90,
    /// Notifying the peer ring of a split-driver transfer (event channel +
    /// ring bookkeeping), charged per batch of segments.
    ring_notify: 350,
    /// One-way wire + NIC latency between two VMs in the same cloud zone.
    wire_latency: 28_000,
    /// NIC DMA + descriptor processing per KiB.
    nic_per_kb: 28,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::skylake_cloud()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostModel:")?;
        for (name, value) in self.entries() {
            writeln!(f, "  {name:<22} {value}")?;
        }
        Ok(())
    }
}

impl CostModel {
    /// Cost of a full TLB flush followed by refilling `hot_pages` entries.
    ///
    /// This is the quantity the X-Container global-bit optimization (§4.3)
    /// avoids for the kernel's share of the working set.
    #[inline]
    pub fn tlb_flush_with_refill(&self, hot_pages: u64) -> Nanos {
        self.tlb_flush_full + self.tlb_refill_per_page * hot_pages
    }

    /// Cost of one batched `mmu_update` hypercall applying `entries` PTE
    /// updates.
    #[inline]
    pub fn mmu_update_batch(&self, entries: u64) -> Nanos {
        self.hypercall + self.pte_update * entries
    }

    /// Cost of copying `bytes` through `memcpy`.
    #[inline]
    pub fn copy_bytes(&self, bytes: u64) -> Nanos {
        // Round up to whole KiB to keep integer math; sub-KiB copies are
        // dominated by fixed syscall costs anyway.
        self.memcpy_per_kb * bytes.div_ceil(1024)
    }

    /// Cost of grant-copying `bytes` across a split-driver boundary.
    #[inline]
    pub fn grant_copy_bytes(&self, bytes: u64) -> Nanos {
        self.grant_copy_per_kb * bytes.div_ceil(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_skylake() {
        assert_eq!(CostModel::default(), CostModel::skylake_cloud());
    }

    #[test]
    fn builder_overrides_single_field() {
        let m = CostModel::builder()
            .syscall_trap(Nanos::from_nanos(999))
            .build();
        assert_eq!(m.syscall_trap.as_nanos(), 999);
        // Everything else untouched.
        assert_eq!(m.hypercall, CostModel::skylake_cloud().hypercall);
    }

    #[test]
    fn ordering_invariants() {
        // The architectural story of the paper depends on these orderings;
        // guard them so calibration changes cannot silently invert them.
        let m = CostModel::skylake_cloud();
        assert!(
            m.function_call < m.syscall_trap,
            "function call must beat trap"
        );
        assert!(m.syscall_trap < m.hypercall.saturating_add(m.syscall_trap));
        assert!(
            m.iret_userspace < m.iret_hypercall,
            "usermode iret is the point of §4.2"
        );
        assert!(m.vmexit < m.vmexit + m.nested_vmexit_extra);
        assert!(
            m.ptrace_stop > m.syscall_trap,
            "ptrace interception dominates gVisor"
        );
        assert!(m.thread_switch < m.context_switch_base + m.page_table_switch);
    }

    #[test]
    fn composite_helpers() {
        let m = CostModel::skylake_cloud();
        assert_eq!(
            m.tlb_flush_with_refill(10),
            m.tlb_flush_full + m.tlb_refill_per_page * 10
        );
        assert_eq!(m.mmu_update_batch(0), m.hypercall);
        assert_eq!(m.copy_bytes(1), m.memcpy_per_kb);
        assert_eq!(m.copy_bytes(1024), m.memcpy_per_kb);
        assert_eq!(m.copy_bytes(1025), m.memcpy_per_kb * 2);
        assert_eq!(m.grant_copy_bytes(4096), m.grant_copy_per_kb * 4);
    }

    #[test]
    fn entries_lists_all_fields() {
        let m = CostModel::skylake_cloud();
        let entries = m.entries();
        assert!(entries.len() > 30, "expected full field listing");
        assert!(entries.iter().any(|(n, _)| *n == "syscall_trap"));
        assert!(entries.iter().any(|(n, _)| *n == "grant_copy_per_kb"));
    }

    #[test]
    fn display_contains_fields() {
        let text = CostModel::skylake_cloud().to_string();
        assert!(text.contains("syscall_trap"));
        assert!(text.contains("kpti_trap_extra"));
    }
}
