//! Deterministic pseudo-random number generation.
//!
//! Every experiment harness carries an explicit seed; all stochastic workload
//! decisions (request inter-arrival jitter, key distributions, SET/GET mixes)
//! flow from a [`Rng`] derived from that seed, making every figure
//! regeneration byte-for-byte reproducible.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. Both are implemented here directly so
//! the simulation core has no external dependencies.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use xc_sim::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

/// SplitMix64 step, used for seeding and for hash-style stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) produces a valid, full-period stream: the
    /// internal state is expanded through SplitMix64, which never yields the
    /// all-zero state for four consecutive outputs.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates the `stream`-th generator of the family rooted at `seed`
    /// (SplitMix64 stream-splitting).
    ///
    /// Parallel experiment runners hand shard `i` of a sharded experiment
    /// `Rng::substream(seed, i)`: every shard gets a decorrelated stream
    /// that depends only on `(seed, stream)`, never on which worker thread
    /// runs it or in what order — so sharded results merge bit-for-bit
    /// identically regardless of parallelism.
    ///
    /// `substream(seed, s)` never equals `Rng::new(seed)` for any `s`:
    /// the stream index is pushed through an extra SplitMix64 scramble
    /// before seeding.
    pub fn substream(seed: u64, stream: u64) -> Rng {
        // Scramble the stream index on its own first, then mix with the
        // seed through a second SplitMix64 pass. Two rounds decorrelate
        // (seed, stream) pairs that differ in few bits (0, 1, 2, …).
        let mut s = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let scrambled = splitmix64(&mut s);
        let mut mixed = seed ^ scrambled.rotate_left(23);
        Rng::new(splitmix64(&mut mixed))
    }

    /// Derives an independent child generator for a named subsystem.
    ///
    /// Deriving (rather than sharing) generators keeps experiment components
    /// order-independent: adding a draw in one workload does not perturb the
    /// stream seen by another.
    pub fn derive(&self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix the label hash with this generator's current state without
        // advancing it.
        let mut seed = h ^ self.state[0].rotate_left(17) ^ self.state[2];
        Rng::new(splitmix64(&mut seed))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire 2019: unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with uniform `f64`s in `[0, 1)` — the exact sequence
    /// `out.len()` calls to [`Rng::next_f64`] would produce, drawn in
    /// one pass. Hot loops that consume one uniform per event (e.g. the
    /// closed-loop service jitter) refill a small slab through this
    /// instead of paying a generator round-trip per draw.
    #[inline]
    pub fn next_f64_batch(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for open-loop arrival processes (Poisson arrivals).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        // Avoid ln(0); next_f64 is in [0,1) so 1-x is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Zipf-like rank selection over `n` items with skew `theta` in `(0,1)`.
    ///
    /// Approximated by inverse-power sampling; adequate for key-popularity
    /// workload generation (YCSB-style) where only the popularity *shape*
    /// matters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        let u = self.next_f64();
        let exp = 1.0 / (1.0 - theta.clamp(0.0, 0.999));
        let rank = ((n as f64) * u.powf(exp)).floor() as u64;
        rank.min(n - 1)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Samples an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted from empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted requires positive total weight");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be nearly disjoint");
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = Rng::new(99);
        let mut c1 = root.derive("net");
        let mut c2 = root.derive("net");
        let mut c3 = root.derive("disk");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn substreams_are_deterministic_and_disjoint() {
        let mut a = Rng::substream(2019, 3);
        let mut b = Rng::substream(2019, 3);
        let mut c = Rng::substream(2019, 4);
        let mut d = Rng::substream(2020, 3);
        let mut same_c = 0;
        let mut same_d = 0;
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64(), "same (seed, stream) must agree");
            if x == c.next_u64() {
                same_c += 1;
            }
            if x == d.next_u64() {
                same_d += 1;
            }
        }
        assert!(same_c < 4, "adjacent streams must be nearly disjoint");
        assert!(same_d < 4, "adjacent seeds must be nearly disjoint");
    }

    #[test]
    fn substream_is_not_the_root_stream() {
        let first = Rng::new(7).next_u64();
        for stream in 0..32 {
            assert_ne!(
                Rng::substream(7, stream).next_u64(),
                first,
                "stream {stream} collides with Rng::new"
            );
        }
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
            let v = r.range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn bounded_uniformity_rough() {
        let mut r = Rng::new(17);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean_rough() {
        let mut r = Rng::new(23);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(250.0)).sum();
        let mean = sum / n as f64;
        assert!((240.0..260.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = Rng::new(31);
        let mut head = 0u32;
        for _ in 0..10_000 {
            let v = r.zipf(1000, 0.9);
            assert!(v < 1000);
            if v < 100 {
                head += 1;
            }
        }
        // With strong skew, the top decile should absorb most draws.
        assert!(head > 5_000, "head draws {head}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(41);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = Rng::new(43);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.7..3.3).contains(&ratio), "ratio {ratio}");
    }
}
