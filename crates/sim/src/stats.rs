//! Streaming statistics and latency histograms.
//!
//! Two accumulators cover everything the experiment harnesses need:
//!
//! * [`Summary`] — count / mean / standard deviation / min / max via
//!   Welford's online algorithm (the paper reports mean ± stddev of five
//!   runs; the harnesses do the same),
//! * [`Histogram`] — an HDR-style log-bucketed histogram for request
//!   latencies, supporting arbitrary quantiles with bounded relative error.

use std::fmt;

use crate::time::Nanos;

/// Streaming count / mean / variance / extrema accumulator.
///
/// # Example
///
/// ```
/// use xc_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.stddev() - 2.138089935).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`]: a derived `Default` would zero `min`/`max`
    /// instead of installing the ±infinity sentinels, silently corrupting
    /// the extrema of anything recorded afterwards.
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator), or 0 with fewer than two
    /// observations.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation, or 0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (parallel Welford combination).
    ///
    /// Empty operands are handled by explicit count checks — an empty
    /// `other` leaves `self` untouched and an empty `self` copies `other`
    /// wholesale — so the result never depends on the ±infinity min/max
    /// sentinels an empty summary carries. The observation count saturates
    /// instead of wrapping when the combined total would exceed `u64::MAX`.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            // Nothing to fold in; in particular other's sentinel extrema
            // must not leak into ours.
            return;
        }
        if self.count == 0 {
            // Our own sentinels are equally meaningless: adopt other as-is.
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds `others` into `self` in slice order.
    ///
    /// Welford combination is a float computation, so unlike
    /// [`Histogram::merge_many`] the order matters for bit-identity: this
    /// is defined as the exact sequential left fold the callers previously
    /// spelled out, kept as a method so sharded reducers have one entry
    /// point for both statistic kinds.
    pub fn merge_many(&mut self, others: &[&Summary]) {
        for other in others {
            self.merge(other);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Number of linear sub-buckets per power-of-two bucket.
///
/// 32 sub-buckets bound the relative quantile error to about 3%.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// HDR-style log-bucketed histogram over `u64` values (typically
/// nanoseconds).
///
/// Values are grouped into power-of-two magnitude buckets, each split into
/// `SUB_BUCKETS` linear sub-buckets, giving ~3% relative error on reported
/// quantiles regardless of the value range — the same design HdrHistogram
/// uses, reimplemented minimally here to keep the core dependency-free.
///
/// # Example
///
/// ```
/// use xc_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.50);
/// assert!((450..=550).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // 64 magnitude buckets × SUB_BUCKETS covers the full u64 range.
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Branch-free bucket index. Indices 0..2·SUB_BUCKETS are exactly
    /// `value` (bucket 1's shift is zero, so its formula degenerates to
    /// the identity), which lets the small-value case fall out of the
    /// general formula: `value | 1` makes `leading_zeros` well-defined
    /// at zero, and the two saturating clamps (compiled to cmov, not
    /// branches) pin sub-`SUB_BUCKETS` magnitudes to shift 0 / base 0.
    #[inline]
    fn index_of(value: u64) -> usize {
        let magnitude = 63 - (value | 1).leading_zeros();
        let shift = magnitude.saturating_sub(SUB_BITS);
        let base = (magnitude + 1).saturating_sub(SUB_BITS) as usize * SUB_BUCKETS;
        base + ((value >> shift) as usize & (SUB_BUCKETS - 1))
    }

    /// Representative (midpoint-ish upper bound) value for a bucket index.
    fn value_of(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if bucket == 0 {
            sub
        } else {
            let magnitude = bucket as u32 + SUB_BITS - 1;
            let base = (SUB_BUCKETS as u64 + sub) << (magnitude - SUB_BITS);
            // Upper edge of the sub-bucket minus one, i.e. the largest value
            // mapping to this index.
            base + ((1u64 << (magnitude - SUB_BITS)) - 1)
        }
    }

    /// Resets to the empty state while keeping the bucket allocation —
    /// the reuse hook world arenas call instead of building a fresh
    /// histogram (2 048 buckets) per simulation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }

    /// Records a single value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records `n` occurrences of `value` at once, saturating the bucket
    /// count and total instead of wrapping (an `n` near `u64::MAX` is how
    /// merge saturation is exercised without `u64::MAX` calls to
    /// [`record`](Self::record)).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = &mut self.counts[Self::index_of(value)];
        *slot = slot.saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(u128::from(value) * u128::from(n));
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records a [`Nanos`] duration.
    pub fn record_nanos(&mut self, value: Nanos) {
        self.record(value.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of recorded values (sums are exact; only bucket *positions*
    /// are approximate).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]`, within ~3% relative error.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket's representative value into the exactly
                // tracked [min, max] envelope.
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: the median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Merges another histogram into this one.
    ///
    /// Counts saturate instead of wrapping, and the bucket loop is the
    /// same lane-chunked pass as [`merge_many`](Self::merge_many).
    pub fn merge(&mut self, other: &Histogram) {
        self.merge_many(&[other]);
    }

    /// Width of the fixed lane arrays the merge loops accumulate into.
    ///
    /// Eight u64 lanes fill two AVX2 registers; the loops below are plain
    /// array arithmetic over `[u64; LANES]` chunks with no per-bucket
    /// branching, which LLVM autovectorizes.
    const LANES: usize = 8;

    /// Sparse checkpoint view for crash-safe serialization: the exact
    /// raw counters — including the `u64::MAX`/`0` min/max sentinels an
    /// empty histogram carries — plus every non-zero `(bucket, count)`
    /// pair in ascending bucket order. [`from_checkpoint`] rebuilds a
    /// structurally identical histogram from this view, which is what
    /// lets the bench journal replay a checkpointed cell result
    /// bit-for-bit (`PartialEq` compares the raw fields).
    ///
    /// [`from_checkpoint`]: Self::from_checkpoint
    pub fn checkpoint(&self) -> HistogramCheckpoint {
        HistogramCheckpoint {
            total: self.total,
            sum: self.sum,
            min: self.min,
            max: self.max,
            counts: self
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }

    /// Rebuilds a histogram from a [`checkpoint`](Self::checkpoint)
    /// view. Returns `None` when the view is structurally invalid — a
    /// bucket index out of range, a duplicated or unsorted index, or a
    /// zero count (which the sparse form never produces) — so corrupted
    /// journal payloads degrade to re-execution instead of silently
    /// reconstructing a different distribution.
    pub fn from_checkpoint(view: &HistogramCheckpoint) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut prev: Option<u32> = None;
        for &(index, count) in &view.counts {
            if index as usize >= h.counts.len() || count == 0 || prev.is_some_and(|p| p >= index) {
                return None;
            }
            h.counts[index as usize] = count;
            prev = Some(index);
        }
        h.total = view.total;
        h.sum = view.sum;
        h.min = view.min;
        h.max = view.max;
        Some(h)
    }

    /// Merges every histogram in `others` into `self` in one pass over the
    /// bucket array.
    ///
    /// Integer bucket counts are exact and order-independent, so unlike
    /// [`Summary`] this is safe for tree reduction: folding N shards here
    /// touches each of the 2 048 buckets once (sources inner, buckets
    /// outer) instead of N times, and produces bytes identical to N
    /// sequential [`merge`](Self::merge) calls in any order. All counters
    /// saturate instead of wrapping.
    pub fn merge_many(&mut self, others: &[&Histogram]) {
        let n = self.counts.len();
        let mut i = 0;
        while i + Self::LANES <= n {
            let mut acc = [0u64; Self::LANES];
            acc.copy_from_slice(&self.counts[i..i + Self::LANES]);
            for other in others {
                debug_assert_eq!(other.counts.len(), n);
                let src = &other.counts[i..i + Self::LANES];
                for (a, &b) in acc.iter_mut().zip(src) {
                    *a = a.saturating_add(b);
                }
            }
            self.counts[i..i + Self::LANES].copy_from_slice(&acc);
            i += Self::LANES;
        }
        while i < n {
            let mut a = self.counts[i];
            for other in others {
                a = a.saturating_add(other.counts[i]);
            }
            self.counts[i] = a;
            i += 1;
        }
        for other in others {
            self.total = self.total.saturating_add(other.total);
            self.sum = self.sum.saturating_add(other.sum);
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }
}

/// The exact serializable state of a [`Histogram`]: raw counters plus
/// sparse non-zero buckets (see [`Histogram::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCheckpoint {
    /// Recorded-value count (saturating).
    pub total: u64,
    /// Exact sum of recorded values.
    pub sum: u128,
    /// Raw minimum (the `u64::MAX` sentinel when empty).
    pub min: u64,
    /// Raw maximum (0 when empty).
    pub max: u64,
    /// Non-zero `(bucket index, count)` pairs, ascending.
    pub counts: Vec<(u32, u64)>,
}

/// Items shard `index` owns when `total` items split across `shards`
/// equal partitions: the remainder goes to the lowest-indexed shards, so
/// the split is a pure function of `(total, shards)` — the contract
/// every deterministic sharded merge in the workspace relies on (the
/// parallel bench runner, the per-worker closed loop, the cluster
/// study's client partition).
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_share(total: u64, shards: u64, index: u64) -> u64 {
    assert!(shards > 0, "shard_share over zero shards");
    total / shards + u64::from(index < total % shards)
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.stddev() - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.sum() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn summary_default_matches_new() {
        // A derived Default would zero the extrema sentinels; recording
        // through a default-constructed summary must behave like new().
        let mut d = Summary::default();
        d.record(7.0);
        assert_eq!(d.min(), 7.0);
        assert_eq!(d.max(), 7.0);
        let mut m = Summary::default();
        m.merge(&d);
        assert_eq!(m.min(), 7.0);
    }

    #[test]
    fn summary_count_saturates_on_merge() {
        let mut a = Summary::new();
        a.count = u64::MAX - 1;
        a.mean = 1.0;
        a.min = 1.0;
        a.max = 1.0;
        let b: Summary = [2.0, 3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn summary_merge_many_is_sequential_fold() {
        let parts: Vec<Summary> = (0..5)
            .map(|i| (i * 50..(i + 1) * 50).map(f64::from).collect())
            .collect();
        let mut seq = Summary::new();
        for p in &parts {
            seq.merge(p);
        }
        let mut many = Summary::new();
        many.merge_many(&parts.iter().collect::<Vec<_>>());
        assert_eq!(seq, many);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let mut a: Summary = (0..100).map(f64::from).collect();
        let b: Summary = (100..250).map(f64::from).collect();
        let all: Summary = (0..250).map(f64::from).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.stddev() - all.stddev()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        let b: Summary = [7.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 7.0);
        let mut c = a;
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Small values land in dedicated unit buckets: quantiles are exact.
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_quantile_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let got = h.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.04, "q={q} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.max(), 40);
        assert_eq!(h.min(), 10);
    }

    #[test]
    fn histogram_merge_equals_union() {
        let a: Histogram = (1..1000u64).collect();
        let b: Histogram = (1000..5000u64).collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let union: Histogram = (1..5000u64).collect();
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.quantile(0.5), union.quantile(0.5));
        assert_eq!(merged.max(), union.max());
    }

    #[test]
    fn histogram_clear_restores_empty_state() {
        let mut h: Histogram = (1..5000u64).collect();
        h.clear();
        assert_eq!(h, Histogram::new());
        h.record(9);
        assert_eq!(h.min(), 9);
        assert_eq!(h.max(), 9);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 900, 70_000] {
            a.record_n(v, 5);
            for _ in 0..5 {
                b.record(v);
            }
        }
        a.record_n(42, 0); // no-op, must not disturb min/max/total
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_merge_saturates_counts() {
        let mut a = Histogram::new();
        a.record_n(5, u64::MAX - 3);
        let mut b = Histogram::new();
        b.record_n(5, 10);
        b.record_n(1 << 40, 10); // an overflow-range bucket too
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "total must saturate, not wrap");
        assert_eq!(
            a.counts[Histogram::index_of(5)],
            u64::MAX,
            "bucket count must saturate, not wrap"
        );
        assert_eq!(a.counts[Histogram::index_of(1 << 40)], 10);
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn histogram_merge_many_matches_sequential() {
        let parts: Vec<Histogram> = (0..7)
            .map(|i| {
                (i * 1000..(i + 1) * 1000 + 13)
                    .map(|v| v * 31 + 1)
                    .collect()
            })
            .collect();
        let mut seq = Histogram::new();
        for p in &parts {
            seq.merge(p);
        }
        let mut many = Histogram::new();
        many.merge_many(&parts.iter().collect::<Vec<_>>());
        // Full structural equality: identical buckets, totals, extrema.
        assert_eq!(seq, many);
        assert_eq!(seq.quantile(0.999), many.quantile(0.999));
    }

    #[test]
    fn histogram_merge_many_with_empties() {
        let mut a = Histogram::new();
        let b: Histogram = (1..100u64).collect();
        let empty = Histogram::new();
        a.merge_many(&[&empty, &b, &empty]);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_empty_quantile_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_handles_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Quantile clamps into the observed envelope.
        assert!(h.quantile(0.5) >= u64::MAX / 2);
    }

    #[test]
    fn histogram_checkpoint_roundtrips_exactly() {
        let mut h = Histogram::new();
        for v in (0..50_000u64).map(|v| v * 97 + 3) {
            h.record(v);
        }
        h.record(u64::MAX);
        let back = Histogram::from_checkpoint(&h.checkpoint()).expect("valid view");
        assert_eq!(back, h, "structural equality, raw fields included");
        // The empty histogram's sentinels survive the trip too.
        let empty = Histogram::new();
        assert_eq!(
            Histogram::from_checkpoint(&empty.checkpoint()).expect("valid"),
            empty
        );
    }

    #[test]
    fn histogram_checkpoint_rejects_corrupt_views() {
        let h: Histogram = (1..100u64).collect();
        let good = h.checkpoint();
        let mut out_of_range = good.clone();
        out_of_range.counts.push((1 << 20, 1));
        assert!(Histogram::from_checkpoint(&out_of_range).is_none());
        let mut zero_count = good.clone();
        zero_count.counts[0].1 = 0;
        assert!(Histogram::from_checkpoint(&zero_count).is_none());
        let mut unsorted = good.clone();
        unsorted.counts.swap(0, 1);
        assert!(Histogram::from_checkpoint(&unsorted).is_none());
        let mut duplicated = good;
        duplicated.counts[1].0 = duplicated.counts[0].0;
        assert!(Histogram::from_checkpoint(&duplicated).is_none());
    }

    #[test]
    fn index_value_monotone() {
        // value_of(index_of(v)) >= v and indices are monotone in v.
        let mut prev_idx = 0;
        for v in (0..2_000_000u64).step_by(997) {
            let idx = Histogram::index_of(v);
            assert!(idx >= prev_idx, "index must be monotone at v={v}");
            prev_idx = idx;
            assert!(Histogram::value_of(idx) >= v);
        }
    }

    #[test]
    fn branch_free_index_matches_branching_reference() {
        // The original early-return formula, kept verbatim as the
        // reference the branch-free rewrite must reproduce bit-for-bit.
        fn reference(value: u64) -> usize {
            if value < SUB_BUCKETS as u64 {
                return value as usize;
            }
            let magnitude = 63 - value.leading_zeros();
            let bucket = magnitude - SUB_BITS + 1;
            let sub = (value >> (magnitude - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
            (bucket as usize) * SUB_BUCKETS + sub
        }
        for v in 0..10_000u64 {
            assert_eq!(Histogram::index_of(v), reference(v), "v={v}");
        }
        for shift in 0..64u32 {
            for delta in [-1i64, 0, 1] {
                let v = (1u64 << shift).wrapping_add_signed(delta);
                assert_eq!(Histogram::index_of(v), reference(v), "v={v}");
            }
        }
        assert_eq!(Histogram::index_of(u64::MAX), reference(u64::MAX));
    }
}
