//! # xc-sim — deterministic simulation substrate for the X-Containers reproduction
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * [`time`] — the [`Nanos`] simulated-time newtype,
//! * [`rng`] — deterministic pseudo-random number generation
//!   ([`Rng`], SplitMix64 seeding + xoshiro256\*\* stream),
//! * [`engine`] — a deterministic discrete-event simulation engine,
//! * [`stats`] — streaming summaries and log-bucketed latency histograms,
//! * [`cost`] — the primitive cost model all container architectures are
//!   composed from,
//! * [`report`] — text tables and a minimal JSON emitter for experiment
//!   harness output.
//!
//! The entire simulation is **single-threaded and deterministic**: every
//! source of randomness flows from an explicit seed, and simultaneous events
//! are ordered by insertion sequence. Running an experiment twice produces
//! byte-identical tables, which is what makes the figure-regeneration
//! harnesses in `xc-bench` reproducible.
//!
//! # Example
//!
//! ```
//! use xc_sim::time::Nanos;
//! use xc_sim::cost::CostModel;
//!
//! let costs = CostModel::skylake_cloud();
//! // A trap-based syscall is far more expensive than a function call:
//! assert!(costs.syscall_trap > costs.function_call);
//! assert_eq!(Nanos::from_micros(2).as_nanos(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod cost;
pub mod engine;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use cost::CostModel;
pub use engine::{EventQueue, Simulation, World};
pub use rng::Rng;
pub use stats::{Histogram, HistogramCheckpoint, Summary};
pub use time::Nanos;
