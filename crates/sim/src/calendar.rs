//! Calendar-queue event storage for the DES engine.
//!
//! A [`CalendarQueue`] replaces the engine's former `BinaryHeap` with a
//! timing wheel: pending events are bucketed by simulated-time *epoch*
//! (`time >> BUCKET_BITS`), with a small overflow heap catching events
//! scheduled beyond the wheel's window. The hot operations become O(1)
//! amortised — a push is a bucket index plus a `Vec` push, a pop takes
//! the tail of a pre-sorted front bucket — instead of O(log n) sift
//! chains whose `u128` compares dominate a saturated simulation.
//!
//! # Determinism
//!
//! Both queue implementations in this module pop keys in strictly
//! ascending `u128` order, and the engine packs `(time, seq)` into that
//! key lexicographically (`time` in the high 64 bits, the insertion
//! sequence number in the low 64). Equal keys cannot exist because the
//! sequence number is unique, so the pop order — time first, insertion
//! order within an instant — is a total order independent of the
//! container: heap and wheel are observationally identical. The
//! [`HeapQueue`] reference implementation (the engine's previous
//! container, verbatim) exists so tests and the `queue_bench` binary can
//! check that equivalence empirically on random schedules.
//!
//! # Structure
//!
//! * `current` — the open bucket: every pending event with epoch ≤
//!   `cursor`, sorted by key *descending* so the next event to fire is a
//!   plain `Vec::pop` from the tail.
//! * `ring` — `NUM_BUCKETS` unsorted buckets for epochs in
//!   `(cursor, cursor + NUM_BUCKETS)`. Within that half-open window each
//!   residue class `epoch % NUM_BUCKETS` contains exactly one epoch, so
//!   a live bucket only ever holds keys of a single epoch.
//! * `overflow` — a min-heap for events at or beyond the window's far
//!   edge; entries migrate onto the ring as the cursor advances.
//!
//! When `current` drains, the queue advances: the nearest populated
//! epoch (found via the occupancy bitmap, bounded by the overflow
//! minimum) becomes the new cursor, overflow entries now inside the
//! window migrate, and the cursor's ring bucket is sorted into
//! `current`. Each event is touched a constant number of times on its
//! way through — push, one migration at most, one sort, pop — which is
//! where the wheel beats the heap's per-operation log factor.
//!
//! # Finding the next bucket
//!
//! A 16×`u64` occupancy bitmap mirrors the ring: bit `r % 64` of word
//! `r / 64` is set exactly when ring bucket `r` is non-empty. `advance`
//! locates the nearest populated epoch with a rotating
//! `trailing_zeros` word scan — at most 17 word reads for the whole
//! 1024-bucket ring — instead of probing buckets one by one. The
//! difference is invisible when events are dense (the very next bucket
//! is almost always populated) but decisive in the sparse regime, where
//! event spacing far exceeds the bucket width and the old linear scan
//! walked hundreds of empty buckets per pop. The pre-bitmap scan
//! survives behind [`CalendarQueue::new_linear_scan`] purely as the
//! reference strategy `queue_bench --sparse` measures against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// log2 of the starting bucket width in nanoseconds: 2^12 ns ≈ 4.1 µs
/// per bucket. Service times and RTTs in the workload models are
/// microsecond-scale, so a saturated simulation lands a handful of
/// events in each bucket. Adaptive queues resize away from this when
/// the observed occupancy drifts out of band (see
/// [`CalendarQueue::advance`]).
const DEFAULT_BUCKET_BITS: u32 = 12;
/// Narrowest adaptive bucket width: 2^8 ns = 256 ns.
const MIN_BUCKET_BITS: u32 = 8;
/// Widest adaptive bucket width: 2^22 ns ≈ 4.2 ms per bucket (a ~4.3 s
/// window), enough that even second-scale timer wheels advance bucket
/// by bucket instead of scanning.
const MAX_BUCKET_BITS: u32 = 22;
/// Number of wheel buckets (power of two). The ring *size* is fixed —
/// only the per-bucket time width adapts. At the default width, 1024
/// buckets × 4.1 µs ≈ 4.2 ms of look-ahead window; events beyond it
/// wait in the overflow heap.
const NUM_BUCKETS: usize = 1 << 10;
const EPOCH_MASK: u64 = NUM_BUCKETS as u64 - 1;
/// Words in the ring occupancy bitmap (one bit per bucket).
const OCC_WORDS: usize = NUM_BUCKETS / 64;
/// Advances between adaptation checks. Long enough to smooth over
/// bursts, short enough that a regime change (e.g. a sparse timer
/// phase) is caught within a few thousand events.
const ADAPT_PERIOD: u32 = 512;
/// Mean epoch jump per advance above which the buckets are too narrow
/// (the scan walks mostly-empty words): widen.
const WIDEN_JUMP: u64 = 8;
/// Mean events opened per advance above which the buckets are too wide
/// (each advance sorts a crowd): narrow — but only when the jump is
/// already tiny, so widening and narrowing can never oscillate.
const NARROW_OCCUPANCY: u64 = 16;

/// Packs an absolute time and a sequence number into one scalar key
/// whose `u128` order is the lexicographic `(time, seq)` order.
#[inline]
pub fn key(at: Nanos, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

/// Recovers the time half of a packed key.
#[inline]
pub fn key_time(key: u128) -> Nanos {
    Nanos::from_nanos((key >> 64) as u64)
}

#[inline]
fn epoch_of(key: u128, bucket_bits: u32) -> u64 {
    ((key >> 64) as u64) >> bucket_bits
}

/// One pending event: a packed `(time, seq)` key plus its payload.
///
/// Ordering is *inverted* on the key so that a `BinaryHeap` (a
/// max-heap) pops the smallest key first.
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// The engine's previous event container — a plain binary min-heap on
/// the packed key — kept as the reference implementation the calendar
/// queue is checked against (equivalence proptest, `queue_bench`).
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> HeapQueue<E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty heap with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts an event under a packed key.
    #[inline]
    pub fn push(&mut self, key: u128, event: E) {
        self.heap.push(Entry { key, event });
    }

    /// Removes and returns the smallest-keyed event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u128, E)> {
        self.heap.pop().map(|e| (e.key, e.event))
    }

    /// The smallest pending key, if any. (`&mut` for API symmetry with
    /// [`CalendarQueue::peek_key`].)
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        self.heap.peek().map(|e| e.key)
    }

    /// Removes and returns the smallest-keyed event iff its key is at
    /// most `limit`.
    #[inline]
    pub fn pop_due(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.heap.peek()?.key > limit {
            return None;
        }
        self.heap.pop().map(|e| (e.key, e.event))
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

/// A timing-wheel priority queue over packed `(time, seq)` keys.
///
/// Pops keys in strictly ascending order, exactly like [`HeapQueue`]
/// (see the module docs for the argument), with O(1) amortised push and
/// pop. The one contract inherited from the engine: a pushed key must
/// not be smaller than the last key popped (the engine's
/// "no scheduling into the past" rule guarantees it).
pub struct CalendarQueue<E> {
    /// Open bucket: all events with epoch ≤ `cursor`, sorted by key
    /// descending (next event at the tail).
    current: Vec<Entry<E>>,
    /// Epoch covered by `current`.
    cursor: u64,
    /// The wheel. Lazily allocated on first use; bucket `epoch & MASK`
    /// holds events of the single live epoch in that residue class.
    ring: Vec<Vec<Entry<E>>>,
    /// Total events stored across all ring buckets.
    ring_len: usize,
    /// Ring occupancy: bit `r % 64` of word `r / 64` is set exactly
    /// when ring bucket `r` is non-empty.
    occupancy: [u64; OCC_WORDS],
    /// Events at or beyond the window's far edge, min-keyed first.
    overflow: BinaryHeap<Entry<E>>,
    /// log2 of the current bucket width in nanoseconds. Fixed at
    /// [`DEFAULT_BUCKET_BITS`] for non-adaptive queues.
    bucket_bits: u32,
    /// Whether the queue resizes its bucket width when occupancy
    /// drifts out of band (see [`CalendarQueue::advance`]).
    adaptive: bool,
    /// Advances since the last adaptation check.
    advances: u32,
    /// Events opened into `current` since the last adaptation check.
    opened: u64,
    /// Sum of cursor-epoch jumps since the last adaptation check.
    jump_sum: u64,
    /// Use the pre-bitmap linear empty-bucket probe in [`advance`]
    /// (`Self::advance`) — the reference strategy `queue_bench --sparse`
    /// compares the bitmap scan against. Never set on engine queues.
    linear_advance: bool,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the cursor at epoch zero and
    /// adaptive bucket-width resizing enabled (the engine default).
    pub fn new() -> Self {
        CalendarQueue {
            current: Vec::new(),
            cursor: 0,
            ring: Vec::new(),
            ring_len: 0,
            occupancy: [0; OCC_WORDS],
            overflow: BinaryHeap::new(),
            bucket_bits: DEFAULT_BUCKET_BITS,
            adaptive: true,
            advances: 0,
            opened: 0,
            jump_sum: 0,
            linear_advance: false,
        }
    }

    /// Creates a queue pinned to the default bucket width — the
    /// pre-adaptive behaviour, kept as the fixed-width reference lane
    /// `queue_bench --sparse` measures the adaptive queue against.
    pub fn new_fixed_width() -> Self {
        CalendarQueue {
            adaptive: false,
            ..CalendarQueue::new()
        }
    }

    /// Creates a queue whose `advance` probes ring buckets one by one
    /// (the pre-bitmap strategy, fixed width). Kept only so
    /// `queue_bench --sparse` and the equivalence tests can measure the
    /// bitmap scan against its predecessor; the engine always uses
    /// [`CalendarQueue::new`].
    pub fn new_linear_scan() -> Self {
        CalendarQueue {
            adaptive: false,
            linear_advance: true,
            ..CalendarQueue::new()
        }
    }

    /// log2 of the current bucket width in nanoseconds (observability
    /// for benches and tests; starts at 12, moves only on adaptive
    /// queues).
    pub fn bucket_bits(&self) -> u32 {
        self.bucket_bits
    }

    /// Creates an empty queue with the open bucket pre-sized for
    /// `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = CalendarQueue::new();
        q.current.reserve(capacity);
        q
    }

    /// Reserves room for at least `additional` more events in the open
    /// bucket.
    pub fn reserve(&mut self, additional: usize) {
        self.current.reserve(additional);
    }

    /// Clears every pending event and rewinds the queue to its
    /// just-constructed logical state while keeping the allocations (the
    /// open bucket's capacity, the lazily-allocated ring, the overflow
    /// heap's buffer). The adaptive state rewinds too — bucket width back
    /// to the default, telemetry counters zeroed — so a reused queue is
    /// observationally identical to a fresh one. Arena-backed simulation
    /// worlds rely on that to stay byte-identical to freshly-allocated
    /// runs. The construction-time strategy flags (`adaptive`,
    /// `linear_advance`) are preserved.
    pub fn reset(&mut self) {
        self.current.clear();
        self.cursor = 0;
        for bucket in &mut self.ring {
            bucket.clear();
        }
        self.ring_len = 0;
        self.occupancy = [0; OCC_WORDS];
        self.overflow.clear();
        self.bucket_bits = DEFAULT_BUCKET_BITS;
        self.advances = 0;
        self.opened = 0;
        self.jump_sum = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.current.len() + self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an event under a packed key.
    #[inline]
    pub fn push(&mut self, key: u128, event: E) {
        self.push_entry(Entry { key, event });
    }

    /// Routes one entry to the right tier under the current bucket
    /// width. Shared by `push` and `rebucket`.
    #[inline]
    fn push_entry(&mut self, entry: Entry<E>) {
        let epoch = epoch_of(entry.key, self.bucket_bits);
        if epoch <= self.cursor {
            // The open bucket: binary-insert to keep the descending
            // order. Most same-instant work lands at the tail.
            let idx = self.current.partition_point(|e| e.key > entry.key);
            self.current.insert(idx, entry);
        } else if epoch - self.cursor < NUM_BUCKETS as u64 {
            if self.ring.is_empty() {
                self.ring = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
            }
            let slot = (epoch & EPOCH_MASK) as usize;
            self.ring[slot].push(entry);
            self.ring_len += 1;
            self.occupancy[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Removes and returns the smallest-keyed event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u128, E)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        self.current.pop().map(|e| (e.key, e.event))
    }

    /// The smallest pending key, if any. Takes `&mut self` because
    /// finding the front may advance the wheel cursor.
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        self.current.last().map(|e| e.key)
    }

    /// Removes and returns the smallest-keyed event iff its key is at
    /// most `limit` — a fused peek-then-pop, so bounded drains
    /// (`run_until`) find the front once per event instead of twice.
    #[inline]
    pub fn pop_due(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        match self.current.last() {
            Some(e) if e.key <= limit => self.current.pop().map(|e| (e.key, e.event)),
            _ => None,
        }
    }

    /// Refills the drained open bucket from the nearest populated
    /// epoch. Returns `false` when no events remain anywhere.
    ///
    /// Deliberately *not* `#[cold]`: in a steady closed loop the event
    /// spacing is close to one bucket width, so the wheel advances
    /// nearly once per pop and this path is as hot as the pop itself.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        if self.ring_len == 0 && self.overflow.is_empty() {
            return false;
        }
        if self.adaptive {
            self.advances += 1;
            if self.advances >= ADAPT_PERIOD && self.maybe_resize() {
                // A coarsening rebucket can fold pending epochs into the
                // open bucket; if it did, that's this advance's refill.
                if !self.current.is_empty() {
                    if self.current.len() > 1 {
                        self.current
                            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
                    }
                    return true;
                }
            }
        }
        // The next cursor is the nearest populated epoch: the occupancy
        // bitmap names the nearest live ring bucket (a live bucket
        // holds a single epoch, so the bucket at distance d *is* epoch
        // cursor + d), bounded by the overflow minimum.
        let overflow_epoch = self
            .overflow
            .peek()
            .map(|e| epoch_of(e.key, self.bucket_bits));
        let ring_epoch = if self.ring_len == 0 {
            None
        } else if self.linear_advance {
            self.next_ring_epoch_linear(overflow_epoch)
        } else {
            self.next_ring_epoch()
        };
        let next = match (ring_epoch, overflow_epoch) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        };
        let Some(next) = next else { return false };
        if self.adaptive {
            self.jump_sum += next - self.cursor;
        }
        self.cursor = next;
        // Pull overflow entries that are now inside the window. The
        // minimum's epoch is already in hand, so the common case (empty
        // or still-distant overflow) costs no second heap peek.
        if overflow_epoch.is_some_and(|ep| ep - self.cursor < NUM_BUCKETS as u64) {
            while let Some(e) = self.overflow.peek() {
                let ep = epoch_of(e.key, self.bucket_bits);
                if ep <= self.cursor {
                    let e = self.overflow.pop().expect("peeked entry");
                    self.current.push(e);
                } else if ep - self.cursor < NUM_BUCKETS as u64 {
                    let e = self.overflow.pop().expect("peeked entry");
                    if self.ring.is_empty() {
                        self.ring = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
                    }
                    let slot = (ep & EPOCH_MASK) as usize;
                    self.ring[slot].push(e);
                    self.ring_len += 1;
                    self.occupancy[slot / 64] |= 1 << (slot % 64);
                } else {
                    break;
                }
            }
        }
        // Open the cursor's ring bucket.
        if self.ring_len > 0 {
            let slot = (self.cursor & EPOCH_MASK) as usize;
            let bucket = &mut self.ring[slot];
            self.ring_len -= bucket.len();
            self.current.append(bucket);
            self.occupancy[slot / 64] &= !(1 << (slot % 64));
        }
        // Near-empty buckets are the steady state when event spacing is
        // comparable to the bucket width; skip the sort-call overhead
        // for the singleton case.
        if self.current.len() > 1 {
            self.current
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
        }
        if self.adaptive {
            self.opened += self.current.len() as u64;
        }
        debug_assert!(!self.current.is_empty());
        true
    }

    /// Adaptation check, run every [`ADAPT_PERIOD`] advances: widen the
    /// buckets when the cursor leaps many epochs per advance (sparse
    /// regime — the scan mostly skips emptiness), narrow when each
    /// advance opens a crowd *and* the cursor barely moves (dense regime
    /// — the sort dominates). The conditions are mutually exclusive on
    /// the observed jump, so the width cannot oscillate. Returns whether
    /// a rebucket happened.
    fn maybe_resize(&mut self) -> bool {
        let advances = u64::from(std::mem::take(&mut self.advances));
        let opened = std::mem::take(&mut self.opened);
        let jump_sum = std::mem::take(&mut self.jump_sum);
        let avg_jump = jump_sum / advances;
        let avg_opened = opened / advances;
        let new_bits = if avg_jump > WIDEN_JUMP && self.bucket_bits < MAX_BUCKET_BITS {
            (self.bucket_bits + 2).min(MAX_BUCKET_BITS)
        } else if avg_opened > NARROW_OCCUPANCY
            && avg_jump <= 2
            && self.bucket_bits > MIN_BUCKET_BITS
        {
            (self.bucket_bits - 2).max(MIN_BUCKET_BITS)
        } else {
            return false;
        };
        self.rebucket(new_bits);
        true
    }

    /// Re-buckets every pending ring/overflow entry under a new bucket
    /// width. Safe at any advance boundary: `current` is empty there, so
    /// every pending entry's old epoch is strictly greater than the
    /// cursor, which makes `cursor << old_bits` a lower bound on every
    /// pending time — re-deriving the cursor from that floor can only
    /// round down, never past a pending event.
    fn rebucket(&mut self, new_bits: u32) {
        debug_assert!(self.current.is_empty());
        let floor = self.cursor << self.bucket_bits;
        let mut pending: Vec<Entry<E>> = Vec::with_capacity(self.len());
        for bucket in &mut self.ring {
            pending.append(bucket);
        }
        self.ring_len = 0;
        self.occupancy = [0; OCC_WORDS];
        pending.extend(self.overflow.drain());
        self.bucket_bits = new_bits;
        self.cursor = floor >> new_bits;
        for entry in pending {
            self.push_entry(entry);
        }
    }

    /// Nearest populated ring epoch strictly after the cursor, located
    /// by a rotating `trailing_zeros` scan over the occupancy words:
    /// the first (partial) word masked to residues past the cursor,
    /// then whole words wrapping around the ring. The cursor's own
    /// residue can never be occupied (its live epoch would be
    /// `cursor + NUM_BUCKETS`, which lands in overflow), so a set bit
    /// always names a strictly later epoch.
    #[inline]
    fn next_ring_epoch(&self) -> Option<u64> {
        let start = ((self.cursor + 1) & EPOCH_MASK) as usize;
        let mut w = start / 64;
        let mut word = self.occupancy[w] & (!0u64 << (start % 64));
        for _ in 0..=OCC_WORDS {
            if word != 0 {
                let slot = (w * 64 + word.trailing_zeros() as usize) as u64;
                let d = slot.wrapping_sub(self.cursor) & EPOCH_MASK;
                debug_assert_ne!(d, 0, "cursor residue cannot be occupied");
                return Some(self.cursor + d);
            }
            w = (w + 1) % OCC_WORDS;
            word = self.occupancy[w];
        }
        None
    }

    /// The pre-bitmap strategy: probe ring buckets one by one outward
    /// from the cursor, giving up once `bound` (the overflow minimum)
    /// is at least as near. Reachable only through
    /// [`CalendarQueue::new_linear_scan`].
    fn next_ring_epoch_linear(&self, bound: Option<u64>) -> Option<u64> {
        for d in 1..NUM_BUCKETS as u64 {
            let ep = self.cursor + d;
            if matches!(bound, Some(limit) if ep >= limit) {
                return None;
            }
            if !self.ring[(ep & EPOCH_MASK) as usize].is_empty() {
                return Some(ep);
            }
        }
        None
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packs_lexicographically() {
        let early = key(Nanos::from_nanos(10), u64::MAX);
        let late = key(Nanos::from_nanos(11), 0);
        assert_eq!(key_time(early), Nanos::from_nanos(10));
        assert_eq!(key_time(late), Nanos::from_nanos(11));
        assert!(early < late, "time dominates seq");
        let tie_a = key(Nanos::from_nanos(5), 1);
        let tie_b = key(Nanos::from_nanos(5), 2);
        assert!(tie_a < tie_b, "equal times break ties by insertion order");
    }

    /// Pops every event from both queues, asserting identical order.
    fn drain_both(mut cal: CalendarQueue<u32>, mut heap: HeapQueue<u32>) {
        assert_eq!(cal.len(), heap.len());
        loop {
            assert_eq!(cal.peek_key(), heap.peek_key());
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_matches_heap_within_window() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, ns) in [30u64, 10, 20, 10, 0, 4096, 5000].iter().enumerate() {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn wheel_matches_heap_through_overflow() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        // Far beyond the window (cursor 0, window ~4.2 ms) plus near
        // events; the far ones must migrate back in, in order.
        let times = [
            1u64 << 40,
            (1 << 40) + 1,
            5,
            1 << 33,
            (1 << 33) + (1 << 22),
            u64::MAX,
        ];
        for (i, ns) in times.iter().enumerate() {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut push = |cal: &mut CalendarQueue<u32>, heap: &mut HeapQueue<u32>, ns: u64| {
            let k = key(Nanos::from_nanos(ns), seq);
            cal.push(k, seq as u32);
            heap.push(k, seq as u32);
            seq += 1;
        };
        for ns in [100u64, 9_000, 50_000_000] {
            push(&mut cal, &mut heap, ns);
        }
        assert_eq!(cal.pop(), heap.pop()); // pops t=100
                                           // Push behind the cursor's epoch but after the popped key.
        push(&mut cal, &mut heap, 150);
        push(&mut cal, &mut heap, 8_999);
        drain_both(cal, heap);
    }

    #[test]
    fn epoch_rollover_wraps_ring_residues() {
        // Two epochs NUM_BUCKETS apart share a ring residue; the second
        // must wait for the window to slide, not corrupt the first.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let bucket_ns = 1u64 << DEFAULT_BUCKET_BITS;
        let window = bucket_ns * NUM_BUCKETS as u64;
        for (i, ns) in [bucket_ns, bucket_ns + window, bucket_ns + 2 * window]
            .iter()
            .enumerate()
        {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn sparse_spacing_matches_heap_and_linear_reference() {
        // Millisecond-scale spacing (hundreds of empty buckets between
        // events) drives the bitmap scan through full-word skips and
        // ring wrap-around; the linear-scan reference must agree too.
        let mut cal = CalendarQueue::new();
        let mut lin = CalendarQueue::new_linear_scan();
        let mut heap = HeapQueue::new();
        let mut ns = 0u64;
        for i in 0..64u64 {
            ns += 700_000 + (i * 137_911) % 2_900_000; // 0.7–3.6 ms gaps
            let k = key(Nanos::from_nanos(ns), i);
            cal.push(k, i as u32);
            lin.push(k, i as u32);
            heap.push(k, i as u32);
        }
        loop {
            assert_eq!(cal.peek_key(), heap.peek_key());
            assert_eq!(lin.peek_key(), heap.peek_key());
            let (a, b, c) = (cal.pop(), lin.pop(), heap.pop());
            assert_eq!(a, c);
            assert_eq!(b, c);
            if c.is_none() {
                break;
            }
        }
    }

    #[test]
    fn adaptive_widening_matches_heap_on_sparse_schedule() {
        // A self-perpetuating sparse schedule: every pop schedules the
        // next event ~1 ms out, so the cursor leaps ~244 epochs per
        // advance at the default 4.1 µs width. After ADAPT_PERIOD
        // advances the adaptive queue must have widened its buckets —
        // and still pop in exactly the heap's order throughout.
        let mut cal = CalendarQueue::new();
        let mut fixed = CalendarQueue::new_fixed_width();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut ns = 0u64;
        for _ in 0..8 {
            ns += 900_000 + (seq * 77_017) % 300_000;
            let k = key(Nanos::from_nanos(ns), seq);
            cal.push(k, seq as u32);
            fixed.push(k, seq as u32);
            heap.push(k, seq as u32);
            seq += 1;
        }
        for _ in 0..1500 {
            let (k, v) = heap.pop().expect("heap has events");
            assert_eq!(cal.pop(), Some((k, v)), "adaptive pop order diverged");
            assert_eq!(fixed.pop(), Some((k, v)), "fixed pop order diverged");
            ns = key_time(k).as_nanos() + 900_000 + (seq * 77_017) % 300_000;
            let nk = key(Nanos::from_nanos(ns), seq);
            cal.push(nk, seq as u32);
            fixed.push(nk, seq as u32);
            heap.push(nk, seq as u32);
            seq += 1;
        }
        assert!(
            cal.bucket_bits() > DEFAULT_BUCKET_BITS,
            "sparse schedule should widen buckets, still at {}",
            cal.bucket_bits()
        );
        assert_eq!(fixed.bucket_bits(), DEFAULT_BUCKET_BITS);
        // Drain the remainder in lockstep too.
        loop {
            let (a, b, c) = (cal.pop(), fixed.pop(), heap.pop());
            assert_eq!(a, c);
            assert_eq!(b, c);
            if c.is_none() {
                break;
            }
        }
    }

    #[test]
    fn adaptive_narrowing_matches_heap_on_dense_schedule() {
        // Dense microsecond-scale traffic under artificially wide
        // buckets: drive the width up first with a sparse phase, then
        // flood with dense events and check the queue narrows back while
        // preserving heap order.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut ns = 0u64;
        // Sparse phase: jittered ~1 ms spacing (distinct timestamps, so
        // every pop drains the open bucket and triggers an advance)
        // widens the buckets.
        for _ in 0..4 {
            ns += 900_000 + (seq * 77_017) % 300_000;
            let k = key(Nanos::from_nanos(ns), seq);
            cal.push(k, seq as u32);
            heap.push(k, seq as u32);
            seq += 1;
        }
        for _ in 0..1500 {
            let (k, v) = heap.pop().unwrap();
            assert_eq!(cal.pop(), Some((k, v)));
            ns = key_time(k).as_nanos() + 900_000 + (seq * 77_017) % 300_000;
            let nk = key(Nanos::from_nanos(ns), seq);
            cal.push(nk, seq as u32);
            heap.push(nk, seq as u32);
            seq += 1;
        }
        let widened = cal.bucket_bits();
        assert!(widened > DEFAULT_BUCKET_BITS, "setup should widen first");
        // Dense phase: 50 events in flight rescheduled ~40 µs out, so
        // the in-flight span (~40 µs, under one wide bucket) makes each
        // advance open the whole crowd while the cursor moves one epoch
        // at a time. The adaptation window straddling the regime change
        // may widen once more (its average jump is still
        // sparse-dominated); the loop runs until the width drops below
        // the sparse-phase plateau, bounded well past the advances the
        // narrowing checks need.
        for _ in 0..50 {
            ns += 38_000 + (seq * 131) % 4_000;
            let k = key(Nanos::from_nanos(ns), seq);
            cal.push(k, seq as u32);
            heap.push(k, seq as u32);
            seq += 1;
        }
        let mut narrowed = false;
        for _ in 0..400_000 {
            let (k, v) = heap.pop().unwrap();
            assert_eq!(cal.pop(), Some((k, v)), "dense pop order diverged");
            ns = key_time(k).as_nanos() + 38_000 + (seq * 131) % 4_000;
            let nk = key(Nanos::from_nanos(ns), seq);
            cal.push(nk, seq as u32);
            heap.push(nk, seq as u32);
            seq += 1;
            if cal.bucket_bits() < widened {
                narrowed = true;
                break;
            }
        }
        assert!(
            narrowed,
            "dense schedule should narrow buckets back, still at {}",
            cal.bucket_bits()
        );
        loop {
            let (a, c) = (cal.pop(), heap.pop());
            assert_eq!(a, c);
            if c.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reset_queue_is_observationally_fresh() {
        // Drive an adaptive queue through a sparse phase so it widens its
        // buckets and populates every tier, then reset and replay a fixed
        // schedule against a genuinely fresh queue: pops must agree and
        // the adaptive state must have rewound.
        let mut used = CalendarQueue::new();
        let mut seq = 0u64;
        let mut ns = 0u64;
        for _ in 0..8 {
            ns += 900_000 + (seq * 77_017) % 300_000;
            used.push(key(Nanos::from_nanos(ns), seq), seq as u32);
            seq += 1;
        }
        for _ in 0..1500 {
            let (k, _) = used.pop().expect("events pending");
            ns = key_time(k).as_nanos() + 900_000 + (seq * 77_017) % 300_000;
            used.push(key(Nanos::from_nanos(ns), seq), seq as u32);
            seq += 1;
        }
        assert!(used.bucket_bits() > DEFAULT_BUCKET_BITS, "setup must widen");
        // Leave ring + overflow populated, then reset.
        used.push(key(Nanos::from_secs(30), seq), 0);
        used.reset();
        assert!(used.is_empty());
        assert_eq!(used.bucket_bits(), DEFAULT_BUCKET_BITS);
        let mut fresh = CalendarQueue::new();
        for (i, t) in [5u64, 4096, 1 << 33, 1 << 40, 12].iter().enumerate() {
            let k = key(Nanos::from_nanos(*t), i as u64);
            used.push(k, i as u32);
            fresh.push(k, i as u32);
        }
        loop {
            assert_eq!(used.peek_key(), fresh.peek_key());
            let (a, b) = (used.pop(), fresh.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut cal: CalendarQueue<u8> = CalendarQueue::new();
        assert!(cal.is_empty());
        cal.push(key(Nanos::from_nanos(1), 0), 1); // current epoch
        cal.push(key(Nanos::from_micros(100), 1), 2); // ring
        cal.push(key(Nanos::from_secs(10), 2), 3); // overflow
        assert_eq!(cal.len(), 3);
        assert!(!cal.is_empty());
        while cal.pop().is_some() {}
        assert_eq!(cal.len(), 0);
    }
}
