//! Calendar-queue event storage for the DES engine.
//!
//! A [`CalendarQueue`] replaces the engine's former `BinaryHeap` with a
//! timing wheel: pending events are bucketed by simulated-time *epoch*
//! (`time >> BUCKET_BITS`), with a small overflow heap catching events
//! scheduled beyond the wheel's window. The hot operations become O(1)
//! amortised — a push is a bucket index plus a `Vec` push, a pop takes
//! the tail of a pre-sorted front bucket — instead of O(log n) sift
//! chains whose `u128` compares dominate a saturated simulation.
//!
//! # Determinism
//!
//! Both queue implementations in this module pop keys in strictly
//! ascending `u128` order, and the engine packs `(time, seq)` into that
//! key lexicographically (`time` in the high 64 bits, the insertion
//! sequence number in the low 64). Equal keys cannot exist because the
//! sequence number is unique, so the pop order — time first, insertion
//! order within an instant — is a total order independent of the
//! container: heap and wheel are observationally identical. The
//! [`HeapQueue`] reference implementation (the engine's previous
//! container, verbatim) exists so tests and the `queue_bench` binary can
//! check that equivalence empirically on random schedules.
//!
//! # Structure
//!
//! * `current` — the open bucket: every pending event with epoch ≤
//!   `cursor`, sorted by key *descending* so the next event to fire is a
//!   plain `Vec::pop` from the tail.
//! * `ring` — `NUM_BUCKETS` unsorted buckets for epochs in
//!   `(cursor, cursor + NUM_BUCKETS)`. Within that half-open window each
//!   residue class `epoch % NUM_BUCKETS` contains exactly one epoch, so
//!   a live bucket only ever holds keys of a single epoch.
//! * `overflow` — a min-heap for events at or beyond the window's far
//!   edge; entries migrate onto the ring as the cursor advances.
//!
//! When `current` drains, the queue advances: the nearest populated
//! epoch (scanning the ring, bounded by the overflow minimum) becomes
//! the new cursor, overflow entries now inside the window migrate, and
//! the cursor's ring bucket is sorted into `current`. Each event is
//! touched a constant number of times on its way through — push, one
//! migration at most, one sort, pop — which is where the wheel beats the
//! heap's per-operation log factor.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// log2 of the bucket width in nanoseconds: 2^12 ns ≈ 4.1 µs per
/// bucket. Service times and RTTs in the workload models are
/// microsecond-scale, so a saturated simulation lands a handful of
/// events in each bucket.
const BUCKET_BITS: u32 = 12;
/// Number of wheel buckets (power of two). 1024 buckets × 4.1 µs ≈
/// 4.2 ms of look-ahead window; events beyond it wait in the overflow
/// heap.
const NUM_BUCKETS: usize = 1 << 10;
const EPOCH_MASK: u64 = NUM_BUCKETS as u64 - 1;

/// Packs an absolute time and a sequence number into one scalar key
/// whose `u128` order is the lexicographic `(time, seq)` order.
#[inline]
pub fn key(at: Nanos, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

/// Recovers the time half of a packed key.
#[inline]
pub fn key_time(key: u128) -> Nanos {
    Nanos::from_nanos((key >> 64) as u64)
}

#[inline]
fn epoch_of(key: u128) -> u64 {
    ((key >> 64) as u64) >> BUCKET_BITS
}

/// One pending event: a packed `(time, seq)` key plus its payload.
///
/// Ordering is *inverted* on the key so that a `BinaryHeap` (a
/// max-heap) pops the smallest key first.
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// The engine's previous event container — a plain binary min-heap on
/// the packed key — kept as the reference implementation the calendar
/// queue is checked against (equivalence proptest, `queue_bench`).
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> HeapQueue<E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty heap with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts an event under a packed key.
    #[inline]
    pub fn push(&mut self, key: u128, event: E) {
        self.heap.push(Entry { key, event });
    }

    /// Removes and returns the smallest-keyed event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u128, E)> {
        self.heap.pop().map(|e| (e.key, e.event))
    }

    /// The smallest pending key, if any. (`&mut` for API symmetry with
    /// [`CalendarQueue::peek_key`].)
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        self.heap.peek().map(|e| e.key)
    }

    /// Removes and returns the smallest-keyed event iff its key is at
    /// most `limit`.
    #[inline]
    pub fn pop_due(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.heap.peek()?.key > limit {
            return None;
        }
        self.heap.pop().map(|e| (e.key, e.event))
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

/// A timing-wheel priority queue over packed `(time, seq)` keys.
///
/// Pops keys in strictly ascending order, exactly like [`HeapQueue`]
/// (see the module docs for the argument), with O(1) amortised push and
/// pop. The one contract inherited from the engine: a pushed key must
/// not be smaller than the last key popped (the engine's
/// "no scheduling into the past" rule guarantees it).
pub struct CalendarQueue<E> {
    /// Open bucket: all events with epoch ≤ `cursor`, sorted by key
    /// descending (next event at the tail).
    current: Vec<Entry<E>>,
    /// Epoch covered by `current`.
    cursor: u64,
    /// The wheel. Lazily allocated on first use; bucket `epoch & MASK`
    /// holds events of the single live epoch in that residue class.
    ring: Vec<Vec<Entry<E>>>,
    /// Total events stored across all ring buckets.
    ring_len: usize,
    /// Events at or beyond the window's far edge, min-keyed first.
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the cursor at epoch zero.
    pub fn new() -> Self {
        CalendarQueue {
            current: Vec::new(),
            cursor: 0,
            ring: Vec::new(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Creates an empty queue with the open bucket pre-sized for
    /// `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = CalendarQueue::new();
        q.current.reserve(capacity);
        q
    }

    /// Reserves room for at least `additional` more events in the open
    /// bucket.
    pub fn reserve(&mut self, additional: usize) {
        self.current.reserve(additional);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.current.len() + self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an event under a packed key.
    #[inline]
    pub fn push(&mut self, key: u128, event: E) {
        let epoch = epoch_of(key);
        if epoch <= self.cursor {
            // The open bucket: binary-insert to keep the descending
            // order. Most same-instant work lands at the tail.
            let idx = self.current.partition_point(|e| e.key > key);
            self.current.insert(idx, Entry { key, event });
        } else if epoch - self.cursor < NUM_BUCKETS as u64 {
            if self.ring.is_empty() {
                self.ring = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
            }
            self.ring[(epoch & EPOCH_MASK) as usize].push(Entry { key, event });
            self.ring_len += 1;
        } else {
            self.overflow.push(Entry { key, event });
        }
    }

    /// Removes and returns the smallest-keyed event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u128, E)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        self.current.pop().map(|e| (e.key, e.event))
    }

    /// The smallest pending key, if any. Takes `&mut self` because
    /// finding the front may advance the wheel cursor.
    #[inline]
    pub fn peek_key(&mut self) -> Option<u128> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        self.current.last().map(|e| e.key)
    }

    /// Removes and returns the smallest-keyed event iff its key is at
    /// most `limit` — a fused peek-then-pop, so bounded drains
    /// (`run_until`) find the front once per event instead of twice.
    #[inline]
    pub fn pop_due(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        match self.current.last() {
            Some(e) if e.key <= limit => self.current.pop().map(|e| (e.key, e.event)),
            _ => None,
        }
    }

    /// Refills the drained open bucket from the nearest populated
    /// epoch. Returns `false` when no events remain anywhere.
    ///
    /// Deliberately *not* `#[cold]`: in a steady closed loop the event
    /// spacing is close to one bucket width, so the wheel advances
    /// nearly once per pop and this path is as hot as the pop itself.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        if self.ring_len == 0 && self.overflow.is_empty() {
            return false;
        }
        // The next cursor is the nearest populated epoch: scan the ring
        // outward from the cursor, stopping early if the overflow
        // minimum is nearer. A live ring bucket holds a single epoch,
        // so a non-empty bucket at distance d *is* epoch cursor + d.
        let overflow_epoch = self.overflow.peek().map(|e| epoch_of(e.key));
        let mut next = overflow_epoch;
        if self.ring_len > 0 {
            for d in 1..NUM_BUCKETS as u64 {
                let ep = self.cursor + d;
                if matches!(next, Some(limit) if ep >= limit) {
                    break;
                }
                if !self.ring[(ep & EPOCH_MASK) as usize].is_empty() {
                    next = Some(ep);
                    break;
                }
            }
        }
        let Some(next) = next else { return false };
        self.cursor = next;
        // Pull overflow entries that are now inside the window. The
        // minimum's epoch is already in hand, so the common case (empty
        // or still-distant overflow) costs no second heap peek.
        if overflow_epoch.is_some_and(|ep| ep - self.cursor < NUM_BUCKETS as u64) {
            while let Some(e) = self.overflow.peek() {
                let ep = epoch_of(e.key);
                if ep <= self.cursor {
                    let e = self.overflow.pop().expect("peeked entry");
                    self.current.push(e);
                } else if ep - self.cursor < NUM_BUCKETS as u64 {
                    let e = self.overflow.pop().expect("peeked entry");
                    if self.ring.is_empty() {
                        self.ring = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
                    }
                    self.ring[(ep & EPOCH_MASK) as usize].push(e);
                    self.ring_len += 1;
                } else {
                    break;
                }
            }
        }
        // Open the cursor's ring bucket.
        if self.ring_len > 0 {
            let bucket = &mut self.ring[(self.cursor & EPOCH_MASK) as usize];
            self.ring_len -= bucket.len();
            self.current.append(bucket);
        }
        // Near-empty buckets are the steady state when event spacing is
        // comparable to the bucket width; skip the sort-call overhead
        // for the singleton case.
        if self.current.len() > 1 {
            self.current
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
        }
        debug_assert!(!self.current.is_empty());
        true
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packs_lexicographically() {
        let early = key(Nanos::from_nanos(10), u64::MAX);
        let late = key(Nanos::from_nanos(11), 0);
        assert_eq!(key_time(early), Nanos::from_nanos(10));
        assert_eq!(key_time(late), Nanos::from_nanos(11));
        assert!(early < late, "time dominates seq");
        let tie_a = key(Nanos::from_nanos(5), 1);
        let tie_b = key(Nanos::from_nanos(5), 2);
        assert!(tie_a < tie_b, "equal times break ties by insertion order");
    }

    /// Pops every event from both queues, asserting identical order.
    fn drain_both(mut cal: CalendarQueue<u32>, mut heap: HeapQueue<u32>) {
        assert_eq!(cal.len(), heap.len());
        loop {
            assert_eq!(cal.peek_key(), heap.peek_key());
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_matches_heap_within_window() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, ns) in [30u64, 10, 20, 10, 0, 4096, 5000].iter().enumerate() {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn wheel_matches_heap_through_overflow() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        // Far beyond the window (cursor 0, window ~4.2 ms) plus near
        // events; the far ones must migrate back in, in order.
        let times = [
            1u64 << 40,
            (1 << 40) + 1,
            5,
            1 << 33,
            (1 << 33) + (1 << 22),
            u64::MAX,
        ];
        for (i, ns) in times.iter().enumerate() {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut push = |cal: &mut CalendarQueue<u32>, heap: &mut HeapQueue<u32>, ns: u64| {
            let k = key(Nanos::from_nanos(ns), seq);
            cal.push(k, seq as u32);
            heap.push(k, seq as u32);
            seq += 1;
        };
        for ns in [100u64, 9_000, 50_000_000] {
            push(&mut cal, &mut heap, ns);
        }
        assert_eq!(cal.pop(), heap.pop()); // pops t=100
                                           // Push behind the cursor's epoch but after the popped key.
        push(&mut cal, &mut heap, 150);
        push(&mut cal, &mut heap, 8_999);
        drain_both(cal, heap);
    }

    #[test]
    fn epoch_rollover_wraps_ring_residues() {
        // Two epochs NUM_BUCKETS apart share a ring residue; the second
        // must wait for the window to slide, not corrupt the first.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let bucket_ns = 1u64 << BUCKET_BITS;
        let window = bucket_ns * NUM_BUCKETS as u64;
        for (i, ns) in [bucket_ns, bucket_ns + window, bucket_ns + 2 * window]
            .iter()
            .enumerate()
        {
            let k = key(Nanos::from_nanos(*ns), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
        }
        drain_both(cal, heap);
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut cal: CalendarQueue<u8> = CalendarQueue::new();
        assert!(cal.is_empty());
        cal.push(key(Nanos::from_nanos(1), 0), 1); // current epoch
        cal.push(key(Nanos::from_micros(100), 1), 2); // ring
        cal.push(key(Nanos::from_secs(10), 2), 3); // overflow
        assert_eq!(cal.len(), 3);
        assert!(!cal.is_empty());
        while cal.pop().is_some() {}
        assert_eq!(cal.len(), 0);
    }
}
