//! Property-based tests for the simulation substrate: event ordering,
//! statistics invariants, and RNG bounds.

use proptest::prelude::*;
use xc_sim::calendar::{key, CalendarQueue, HeapQueue};
use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::rng::Rng;
use xc_sim::stats::{Histogram, Summary};
use xc_sim::time::Nanos;

/// World that records (time, tag) for every event it sees.
struct Recorder {
    log: Vec<(u64, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: Nanos, tag: u32, _q: &mut EventQueue<u32>) {
        self.log.push((now.as_nanos(), tag));
    }
}

proptest! {
    /// Events fire in nondecreasing time order, and equal-time events in
    /// insertion order — regardless of the scheduling order.
    #[test]
    fn event_order_is_total(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        for (tag, &t) in times.iter().enumerate() {
            sim.queue_mut().schedule_at(Nanos::from_nanos(t), tag as u32);
        }
        sim.run();
        let log = &sim.world().log;
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "insertion order on ties");
            }
        }
    }

    /// run_until never processes an event past the deadline, and the
    /// remainder still fires afterwards.
    #[test]
    fn run_until_partitions_cleanly(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        deadline in 0u64..10_000,
    ) {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        for (tag, &t) in times.iter().enumerate() {
            sim.queue_mut().schedule_at(Nanos::from_nanos(t), tag as u32);
        }
        sim.run_until(Nanos::from_nanos(deadline));
        let before = sim.world().log.len();
        let expected_before = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(before, expected_before);
        sim.run();
        prop_assert_eq!(sim.world().log.len(), times.len());
    }

    /// Summary mean/min/max always bracket correctly and merging any
    /// split equals the whole.
    #[test]
    fn summary_merge_invariant(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert!(whole.min() <= whole.mean() && whole.mean() <= whole.max());
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let h: Histogram = values.iter().copied().collect();
        let mut prev = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev, "monotone");
            prev = q;
        }
        prop_assert!(h.quantile(0.0) >= h.min());
        prop_assert!(h.quantile(1.0) <= h.max().max(h.min()));
    }

    /// Bounded RNG draws never escape their range, for any seed.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.next_below(bound) < bound);
            let f = r.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Derived RNG streams are stable functions of (parent seed, label).
    #[test]
    fn rng_derivation_is_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a = Rng::new(seed).derive(&label).next_u64();
        let b = Rng::new(seed).derive(&label).next_u64();
        prop_assert_eq!(a, b);
    }

    /// Merging per-shard histograms (in any chunking) is *exactly* the
    /// single-stream histogram: every bucket count, and therefore every
    /// quantile, matches — including values sitting right on power-of-two
    /// bucket boundaries, which the generator aims for deliberately.
    #[test]
    fn histogram_shard_merge_equals_single_stream(
        codes in proptest::collection::vec(0u64..180, 1..300),
        shards in 1usize..8,
    ) {
        // Decode (exponent, offset) pairs into values at 2^e - 1, 2^e,
        // and 2^e + 1 — the edges where bucket indexing changes.
        let values: Vec<u64> = codes
            .iter()
            .map(|&c| {
                let base = 1u64 << (c / 3).min(60);
                match c % 3 {
                    0 => base.saturating_sub(1),
                    1 => base,
                    _ => base + 1,
                }
            })
            .collect();
        let whole: Histogram = values.iter().copied().collect();
        let mut merged = Histogram::new();
        for chunk in values.chunks(values.len().div_ceil(shards)) {
            let shard: Histogram = chunk.iter().copied().collect();
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.mean().to_bits(), whole.mean().to_bits());
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// The calendar queue pops random interleaved schedules in exactly
    /// the order the old binary heap did: same keys, same payloads, same
    /// peeks, through pushes that land in the open bucket, the ring, and
    /// the overflow heap (delays up to 2^36 ns span many windows).
    #[test]
    fn calendar_queue_matches_heap_on_random_interleaves(
        ops in proptest::collection::vec((0u64..(1 << 36), any::<bool>()), 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut now = 0u64;
        for (i, &(delay, pop)) in ops.iter().enumerate() {
            // Schedule relative to the last popped time, like the engine.
            let k = key(Nanos::from_nanos(now.saturating_add(delay)), i as u64);
            cal.push(k, i as u32);
            heap.push(k, i as u32);
            prop_assert_eq!(cal.len(), heap.len());
            if pop {
                prop_assert_eq!(cal.peek_key(), heap.peek_key());
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if let Some((k, _)) = a {
                    now = (k >> 64) as u64;
                }
            }
        }
        loop {
            prop_assert_eq!(cal.peek_key(), heap.peek_key());
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The occupancy-bitmap advance agrees with the binary heap (and the
    /// reference linear bucket scan) under sparse and bursty schedules:
    /// delays alternate between sub-µs bursts (events pile into one or
    /// two buckets) and millisecond gaps (hundreds of empty buckets —
    /// the regime where the bitmap scan, not the per-bucket probe, finds
    /// the next occupied epoch).
    #[test]
    fn calendar_queue_matches_heap_on_sparse_bursty_schedules(
        ops in proptest::collection::vec(
            (0u64..3_800_000, any::<bool>(), any::<bool>()),
            1..300,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut lin = CalendarQueue::new_linear_scan();
        let mut heap = HeapQueue::new();
        let mut now = 0u64;
        for (i, &(raw, burst, pop)) in ops.iter().enumerate() {
            // Bimodal delays: bursts land within a bucket or two, gaps
            // skip 50–1000 bucket widths.
            let delay = if burst { raw % 2_000 } else { 200_000 + raw };
            let k = key(Nanos::from_nanos(now.saturating_add(delay)), i as u64);
            cal.push(k, i as u32);
            lin.push(k, i as u32);
            heap.push(k, i as u32);
            if pop {
                prop_assert_eq!(cal.peek_key(), heap.peek_key());
                let (a, l, b) = (cal.pop(), lin.pop(), heap.pop());
                prop_assert_eq!(a, b);
                prop_assert_eq!(l, b);
                if let Some((k, _)) = a {
                    now = (k >> 64) as u64;
                }
            }
        }
        loop {
            prop_assert_eq!(cal.peek_key(), heap.peek_key());
            prop_assert_eq!(lin.peek_key(), heap.peek_key());
            let (a, l, b) = (cal.pop(), lin.pop(), heap.pop());
            prop_assert_eq!(a, b);
            prop_assert_eq!(l, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// `merge_many` over any shard partition — flat, or as a two-level
    /// tree of arbitrary fan-out, or with the shard order rotated — is
    /// byte-identical to the sequential `merge` fold: integer bucket
    /// adds commute and associate, so the lane-chunked batch reducer
    /// may regroup freely without moving a single quantile.
    #[test]
    fn histogram_merge_many_is_order_and_shape_free(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
        shards in 1usize..9,
        fanout in 1usize..4,
        rotate in 0usize..8,
    ) {
        let parts: Vec<Histogram> = values
            .chunks(values.len().div_ceil(shards))
            .map(|c| c.iter().copied().collect())
            .collect();

        // Reference: sequential pairwise merges in shard order.
        let mut sequential = Histogram::new();
        for p in &parts {
            sequential.merge(p);
        }

        // Flat batch.
        let mut flat = Histogram::new();
        flat.merge_many(&parts.iter().collect::<Vec<_>>());

        // Two-level tree: reduce `fanout`-sized groups, then the roots.
        let mid: Vec<Histogram> = parts
            .chunks(fanout)
            .map(|group| {
                let mut h = Histogram::new();
                h.merge_many(&group.iter().collect::<Vec<_>>());
                h
            })
            .collect();
        let mut tree = Histogram::new();
        tree.merge_many(&mid.iter().collect::<Vec<_>>());

        // Commutativity: rotated shard order.
        let mut rotated_parts: Vec<&Histogram> = parts.iter().collect();
        rotated_parts.rotate_left(rotate % parts.len().max(1));
        let mut rotated = Histogram::new();
        rotated.merge_many(&rotated_parts);

        for h in [&flat, &tree, &rotated] {
            prop_assert_eq!(h.count(), sequential.count());
            prop_assert_eq!(h.min(), sequential.min());
            prop_assert_eq!(h.max(), sequential.max());
            prop_assert_eq!(h.mean().to_bits(), sequential.mean().to_bits());
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                prop_assert_eq!(h.quantile(q), sequential.quantile(q));
            }
        }
    }

    /// `Summary::merge_many` is defined as exactly the sequential fold
    /// (float joins are order-sensitive, so the batch entry point must
    /// not re-associate) — bit-for-bit across every moment.
    #[test]
    fn summary_merge_many_is_the_sequential_fold(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
        shards in 1usize..9,
    ) {
        let parts: Vec<Summary> = xs
            .chunks(xs.len().div_ceil(shards))
            .map(|c| c.iter().copied().collect())
            .collect();
        let mut sequential = Summary::new();
        for p in &parts {
            sequential.merge(p);
        }
        let mut batched = Summary::new();
        batched.merge_many(&parts.iter().collect::<Vec<_>>());
        prop_assert_eq!(batched.count(), sequential.count());
        prop_assert_eq!(batched.min().to_bits(), sequential.min().to_bits());
        prop_assert_eq!(batched.max().to_bits(), sequential.max().to_bits());
        prop_assert_eq!(batched.sum().to_bits(), sequential.sum().to_bits());
        prop_assert_eq!(batched.mean().to_bits(), sequential.mean().to_bits());
        prop_assert_eq!(batched.stddev().to_bits(), sequential.stddev().to_bits());
    }

    /// Merging per-shard summaries across any shard count matches the
    /// single-stream summary (count/min/max exactly, moments within fp
    /// tolerance) — the contract the parallel runner's sharded
    /// statistics rely on.
    #[test]
    fn summary_shard_merge_equals_single_stream(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
        shards in 1usize..8,
    ) {
        let whole: Summary = xs.iter().copied().collect();
        let mut merged = Summary::new();
        for chunk in xs.chunks(xs.len().div_ceil(shards)) {
            let shard: Summary = chunk.iter().copied().collect();
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        let tol = 1e-9 * (1.0 + whole.sum().abs());
        prop_assert!((merged.sum() - whole.sum()).abs() <= tol);
        prop_assert!(
            (merged.mean() - whole.mean()).abs() <= 1e-9 * (1.0 + whole.mean().abs())
        );
        prop_assert!(
            (merged.stddev() - whole.stddev()).abs() <= 1e-6 * (1.0 + whole.stddev().abs())
        );
    }
}
