//! Precomputed per-platform derived costs.
//!
//! A closed-loop (or open-loop) simulation never consults the
//! [`Platform`] or [`CostModel`] mid-run: the platform enters the
//! event stream only through three derived scalars — the per-request
//! service time, the wire round-trip, and the effective parallelism.
//! [`PlatformCosts`] computes those once per
//! `(Platform, CostModel, RequestProfile)` so the per-event hot path is
//! pure queue arithmetic, world state is trivially cheap to clone into
//! per-shard copies, and caches can key on exactly the values the
//! simulation can observe.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::http::ServerModel;

/// Everything a request/response simulation needs to know about a
/// deployment, derived once up front.
///
/// Two deployments with equal `PlatformCosts` are indistinguishable to
/// the simulator — same event stream, same histograms — which is the
/// invariant the [`ClosedLoopCache`](crate::http::ClosedLoopCache)
/// keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformCosts {
    /// CPU time one request burns on a server worker
    /// ([`RequestProfile::service_time`](crate::http::RequestProfile::service_time)
    /// on the deployment's platform).
    pub service: Nanos,
    /// Wire round-trip between client and server.
    pub rtt: Nanos,
    /// Concurrent server workers
    /// ([`ServerModel::parallelism`]).
    pub parallelism: u32,
}

impl PlatformCosts {
    /// Derives the table for one deployment. The only place the
    /// platform/cost model is consulted — everything downstream reads
    /// these three fields.
    pub fn derive(server: &ServerModel, costs: &CostModel) -> Self {
        PlatformCosts {
            service: server.profile.service_time(&server.platform, costs),
            rtt: server.platform.net_stack(costs).wire_latency(costs),
            parallelism: server.parallelism(),
        }
    }

    /// FNV-1a digest of the derived values — a compact identity for
    /// reports and bench metadata. Cache lookups compare the full
    /// values, not this digest, so a collision can never alias two
    /// simulations.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        for word in [
            self.service.as_nanos(),
            self.rtt.as_nanos(),
            u64::from(self.parallelism),
        ] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Open-loop capacity ceiling in requests/second.
    pub fn capacity_rps(&self) -> f64 {
        f64::from(self.parallelism) / self.service.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use xc_runtimes::cloud::CloudEnv;
    use xc_runtimes::platform::Platform;

    #[test]
    fn derive_matches_per_event_derivation_across_matrix() {
        // The exhaustive version of the proptest: every platform in the
        // evaluation matrix × every figure-3 profile derives the same
        // service time through PlatformCosts as through the direct
        // per-event path.
        let costs = CostModel::skylake_cloud();
        for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
            for patched in [true, false] {
                let platforms = [
                    Platform::docker(cloud, patched),
                    Platform::xen_container(cloud, patched),
                    Platform::x_container(cloud, patched),
                    Platform::gvisor(cloud, patched),
                ];
                for platform in platforms {
                    for profile in apps::figure3_profiles() {
                        let server = ServerModel {
                            platform: platform.clone(),
                            profile: profile.clone(),
                            workers: 4,
                            cores: 4,
                        };
                        let table = PlatformCosts::derive(&server, &costs);
                        assert_eq!(
                            table.service,
                            server.profile.service_time(&server.platform, &costs),
                            "{} on {}",
                            profile.name,
                            platform.name()
                        );
                        assert_eq!(
                            table.rtt,
                            server.platform.net_stack(&costs).wire_latency(&costs)
                        );
                        assert_eq!(table.parallelism, server.parallelism());
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_separates_distinct_tables() {
        let costs = CostModel::skylake_cloud();
        let mk = |platform: Platform| ServerModel {
            platform,
            profile: apps::nginx_static(),
            workers: 1,
            cores: 4,
        };
        let docker =
            PlatformCosts::derive(&mk(Platform::docker(CloudEnv::AmazonEc2, true)), &costs);
        let xc = PlatformCosts::derive(
            &mk(Platform::x_container(CloudEnv::AmazonEc2, true)),
            &costs,
        );
        assert_ne!(docker, xc);
        assert_ne!(docker.fingerprint(), xc.fingerprint());
        // X-Containers ignore host patch state: identical tables,
        // identical fingerprints — the collapse the cache exploits.
        let xc_unpatched = PlatformCosts::derive(
            &mk(Platform::x_container(CloudEnv::AmazonEc2, false)),
            &costs,
        );
        assert_eq!(xc, xc_unpatched);
        assert_eq!(xc.fingerprint(), xc_unpatched.fingerprint());
    }
}
