//! Figure 8 — throughput scalability from 1 to 400 containers.
//!
//! The experiment: N `webdevops/php-nginx` containers (NGINX + PHP-FPM,
//! one worker each — 4 processes per container) on one 16-core, 96 GB
//! machine, each driven by a dedicated `wrk` thread with 5 connections.
//! Four configurations: native Docker, X-Containers, and Docker inside
//! ordinary Xen HVM / Xen PV VMs.
//!
//! The mechanisms that shape the curves (§5.6):
//!
//! * **Flat scheduling degrades.** Docker's host kernel schedules 4N
//!   processes; per-switch cost grows with runqueue length, and each
//!   request forces several switches (NGINX ↔ PHP-FPM).
//! * **Hierarchical scheduling holds.** The X-Kernel schedules N
//!   single-vCPU domains; each X-LibOS schedules only its own 4
//!   processes, so the inner runqueue never grows.
//! * **Per-container parallelism.** At low N a Docker container's two
//!   busy processes can spread over idle cores, while an X-Container is
//!   pinned to its single vCPU — Docker's early lead.
//! * **I/O indirection.** X-Containers pay the split-driver/dom0 path per
//!   request; full VMs pay that *plus* a complete second network stack
//!   and the idle load of a full guest OS.
//! * **Memory density.** 512 MiB VMs exhaust 96 GB near 190 instances;
//!   the paper could not boot more than 250 PV / 200 HVM instances even
//!   after squeezing to 256 MiB.

use xc_runtimes::cloud::CloudEnv;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::apps::nginx_php_fpm;

/// The four Figure 8 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalabilityConfig {
    /// Native Docker on the host kernel.
    Docker,
    /// X-Containers (1 vCPU, 128 MiB each).
    XContainer,
    /// Docker inside Xen HVM instances (1 vCPU, 512 MiB each).
    XenHvm,
    /// Docker inside Xen PV instances (1 vCPU, 512 MiB each).
    XenPv,
}

impl ScalabilityConfig {
    /// All configurations in figure order.
    pub const ALL: [ScalabilityConfig; 4] = [
        ScalabilityConfig::Docker,
        ScalabilityConfig::XContainer,
        ScalabilityConfig::XenHvm,
        ScalabilityConfig::XenPv,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            ScalabilityConfig::Docker => "Docker",
            ScalabilityConfig::XContainer => "X-Container",
            ScalabilityConfig::XenHvm => "Xen HVM",
            ScalabilityConfig::XenPv => "Xen PV",
        }
    }

    /// Maximum bootable instances on the 96 GB host (§5.6: beyond 200
    /// VMs the paper squeezed memory to 256 MiB and still could not pass
    /// 250 PV / 200 HVM).
    pub fn max_instances(self) -> u64 {
        match self {
            ScalabilityConfig::Docker => 1_000,
            ScalabilityConfig::XContainer => 700, // 128 MiB each in 96 GB
            ScalabilityConfig::XenPv => 250,
            ScalabilityConfig::XenHvm => 200,
        }
    }

    fn platform(self) -> Platform {
        let cloud = CloudEnv::LocalCluster;
        match self {
            ScalabilityConfig::Docker => Platform::docker(cloud, true),
            ScalabilityConfig::XContainer => Platform::x_container(cloud, true),
            // Docker inside a guest: guest kernel is an ordinary patched
            // Linux; PV guests forward syscalls, HVM guests trap natively
            // but exit on I/O.
            ScalabilityConfig::XenPv => Platform::xen_container(cloud, true),
            ScalabilityConfig::XenHvm => Platform::docker(cloud, true),
        }
    }

    /// Idle/background CPU load of one instance (full guest OS images run
    /// systemd, cron, agents…; containers and X-Containers boot only the
    /// application).
    fn background_core_per_instance(self) -> f64 {
        match self {
            ScalabilityConfig::Docker => 0.001,
            ScalabilityConfig::XContainer => 0.003,
            ScalabilityConfig::XenPv | ScalabilityConfig::XenHvm => 0.040,
        }
    }
}

/// Per-request process switches (wrk → NGINX → PHP-FPM → NGINX → wrk).
const SWITCHES_PER_REQUEST: u64 = 4;

/// Extra per-request cost of the dom0/split-driver I/O path for
/// Xen-hosted configurations (netback processing, bridge, grant copies
/// for ~4 packets).
const DOM0_IO_TAX: Nanos = Nanos::from_micros(40);

/// Extra per-request cost for full VMs: the second network stack (guest
/// bridge + docker proxy inside the VM).
const DOUBLE_STACK_TAX: Nanos = Nanos::from_micros(55);

/// Additional HVM-only per-request cost: virtio VM exits for I/O.
const HVM_IO_EXITS: Nanos = Nanos::from_micros(18);

/// One point of the Figure 8 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of containers requested.
    pub containers: u64,
    /// Aggregate requests/second, or `None` when the configuration
    /// cannot run this many instances.
    pub throughput_rps: Option<f64>,
}

/// CPU time one request consumes under `config` with `n` containers.
pub fn per_request_cpu(config: ScalabilityConfig, n: u64, costs: &CostModel) -> Nanos {
    let platform = config.platform();
    let profile = nginx_php_fpm();

    // Base: syscalls + network + app/kernel work (no switches here; they
    // are priced below with the right runqueue length).
    let net = platform.net_stack(costs);
    let base = platform.syscall_cost(costs) * profile.syscalls
        + net.recv_cost(costs, profile.recv_bytes)
        + net.send_cost(costs, profile.send_bytes)
        + profile.app_compute
        + profile.kernel_work;

    // Scheduling: flat configurations see all containers' busy processes
    // on one runqueue (≈ 2 busy of 4 per container); hierarchical ones
    // see only the container's own 4 tasks, plus one vCPU switch per
    // request once vCPUs outnumber cores.
    let cores = u64::from(CloudEnv::LocalCluster.cores());
    let switch = match config {
        ScalabilityConfig::Docker => platform.context_switch_cost(costs, 2 * n),
        ScalabilityConfig::XContainer | ScalabilityConfig::XenPv | ScalabilityConfig::XenHvm => {
            platform.context_switch_cost(costs, 4)
        }
    };
    let mut total = base + switch * SWITCHES_PER_REQUEST;

    match config {
        ScalabilityConfig::Docker => {}
        ScalabilityConfig::XContainer => {
            total += DOM0_IO_TAX;
            if n > cores {
                // Waking this container's vCPU evicts another: one
                // cross-container switch (full TLB flush) per request,
                // plus credit-queue scan.
                total += platform.context_switch_cost(costs, n / cores);
            }
        }
        ScalabilityConfig::XenPv => {
            total += DOM0_IO_TAX + DOUBLE_STACK_TAX;
            if n > cores {
                total += platform.context_switch_cost(costs, n / cores);
            }
        }
        ScalabilityConfig::XenHvm => {
            total += DOM0_IO_TAX + DOUBLE_STACK_TAX + HVM_IO_EXITS + (costs.vmexit * 4); // 4 packets' worth of exits
            if n > cores {
                total += platform.context_switch_cost(costs, n / cores);
            }
        }
    }
    platform.environment_adjust(total)
}

/// Aggregate throughput with `n` containers under `config`.
pub fn throughput(config: ScalabilityConfig, n: u64, costs: &CostModel) -> Option<f64> {
    if n == 0 {
        return Some(0.0);
    }
    if n > config.max_instances() {
        return None;
    }
    let cores = f64::from(CloudEnv::LocalCluster.cores());
    let per_request = per_request_cpu(config, n, costs).as_secs_f64();

    // Background load of idle instances eats into capacity.
    let background = config.background_core_per_instance() * n as f64;
    let usable = (cores - background).max(0.5);
    let capacity = usable / per_request;

    // Per-container ceiling: Docker's two busy processes can use up to
    // two cores; single-vCPU instances are capped at one.
    let per_container_cores = match config {
        ScalabilityConfig::Docker => 2.0,
        _ => 1.0,
    };
    let offered = n as f64 * per_container_cores / per_request;

    Some(capacity.min(offered))
}

/// The container counts the figure sweeps.
pub fn figure8_points() -> Vec<u64> {
    vec![1, 5, 10, 25, 50, 75, 100, 150, 200, 250, 300, 350, 400]
}

/// Runs the full Figure 8 sweep for one configuration.
pub fn sweep(config: ScalabilityConfig, costs: &CostModel) -> Vec<ScalabilityPoint> {
    figure8_points()
        .into_iter()
        .map(|n| ScalabilityPoint {
            containers: n,
            throughput_rps: throughput(config, n, costs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn docker_leads_at_low_density() {
        let costs = c();
        for n in [16, 32, 64] {
            let d = throughput(ScalabilityConfig::Docker, n, &costs).unwrap();
            let x = throughput(ScalabilityConfig::XContainer, n, &costs).unwrap();
            assert!(d > x, "n={n}: docker {d:.0} must lead x {x:.0}");
        }
    }

    #[test]
    fn x_container_wins_at_400_by_double_digits() {
        // §5.6: "with N = 400, X-Containers outperformed Docker by 18%".
        let costs = c();
        let d = throughput(ScalabilityConfig::Docker, 400, &costs).unwrap();
        let x = throughput(ScalabilityConfig::XContainer, 400, &costs).unwrap();
        let gain = x / d - 1.0;
        assert!(
            (0.08..0.35).contains(&gain),
            "gain at 400: {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn docker_throughput_declines_past_peak() {
        let costs = c();
        let peak = throughput(ScalabilityConfig::Docker, 50, &costs).unwrap();
        let tail = throughput(ScalabilityConfig::Docker, 400, &costs).unwrap();
        assert!(tail < peak * 0.95, "peak {peak:.0} tail {tail:.0}");
    }

    #[test]
    fn x_container_stays_flat() {
        let costs = c();
        let mid = throughput(ScalabilityConfig::XContainer, 100, &costs).unwrap();
        let tail = throughput(ScalabilityConfig::XContainer, 400, &costs).unwrap();
        assert!(
            (tail / mid - 1.0).abs() < 0.15,
            "mid {mid:.0} tail {tail:.0}"
        );
    }

    #[test]
    fn vm_configs_truncate_and_trail() {
        let costs = c();
        assert!(throughput(ScalabilityConfig::XenPv, 251, &costs).is_none());
        assert!(throughput(ScalabilityConfig::XenHvm, 201, &costs).is_none());
        assert!(throughput(ScalabilityConfig::XenPv, 250, &costs).is_some());
        for n in [50, 100, 200] {
            let pv = throughput(ScalabilityConfig::XenPv, n, &costs).unwrap();
            let hvm = throughput(ScalabilityConfig::XenHvm, n, &costs).unwrap();
            let x = throughput(ScalabilityConfig::XContainer, n, &costs).unwrap();
            assert!(pv < x, "n={n}: pv {pv:.0} below x {x:.0}");
            assert!(hvm < x, "n={n}: hvm {hvm:.0} below x {x:.0}");
        }
    }

    #[test]
    fn sweep_covers_figure_points() {
        let costs = c();
        let points = sweep(ScalabilityConfig::XenHvm, &costs);
        assert_eq!(points.len(), figure8_points().len());
        // HVM truncates after 200.
        let at_400 = points.iter().find(|p| p.containers == 400).unwrap();
        assert!(at_400.throughput_rps.is_none());
    }

    #[test]
    fn throughput_rises_before_saturation() {
        let costs = c();
        for config in ScalabilityConfig::ALL {
            let t1 = throughput(config, 1, &costs).unwrap();
            let t5 = throughput(config, 5, &costs).unwrap();
            assert!(t5 > t1 * 3.0, "{}: t1 {t1:.0} t5 {t5:.0}", config.label());
        }
    }
}
