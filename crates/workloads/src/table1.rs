//! Table 1 — ABOM syscall reduction per application.
//!
//! §5.2: the authors count, in the X-Kernel, how many syscalls were
//! forwarded versus converted, for the top-10 containerized applications
//! plus kernel compilation and MySQL. This module reproduces the study
//! **through the real patcher**: each application is modelled as its
//! syscall *wrapper-site mix* — which wrapper code styles its runtime
//! linkage uses and how its dynamic syscalls distribute over them — and
//! the reduction numbers fall out of executing those wrappers on the
//! interpreter under ABOM.
//!
//! What is modelled per app (inputs, documented on each profile):
//!
//! * the wrapper style mix (glibc 5-byte/7-byte movs, Go stack wrappers,
//!   libpthread cancellable wrappers, a libc `syscall(nr)` shim residue),
//! * process churn (kernel compilation spawns a fresh address space every
//!   few hundred syscalls, so every site re-traps once per process).
//!
//! What is measured (outputs): trap vs function-call counts from
//! `xc-abom`'s kernel, identical in kind to the paper's X-Kernel counter.

use std::fmt;

use xc_abom::binaries::{invoke_reusing, library_image, WrapperSpec, WrapperStyle};
use xc_abom::handler::XContainerKernel;
use xc_abom::offline::OfflinePatcher;
use xc_isa::cpu::Cpu;
use xc_isa::image::BinaryImage;
use xc_sim::rng::Rng;

/// How an application achieves concurrency (§2.2's informal survey: all
/// top-10 containerized applications use an event loop or threads, never
/// a process per client — the observation that makes intra-container
/// process isolation redundant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcurrencyModel {
    /// Single-threaded event loop (Redis, Node-style).
    EventDriven,
    /// One process, many threads (memcached, JVM, BEAM, Go runtimes).
    MultiThreaded,
    /// A small pool of worker processes, each serving many clients
    /// (NGINX, Fluentd, Apache-style) — processes for *concurrency*,
    /// not per-client isolation.
    WorkerProcessPool,
    /// Batch tools spawning short-lived processes (compilers).
    ProcessPerTask,
}

impl ConcurrencyModel {
    /// Whether the model dedicates a process to each client — the §2.2
    /// survey found none of the popular images do.
    pub fn process_per_client(self) -> bool {
        false // by construction of the observed models
    }
}

impl fmt::Display for ConcurrencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConcurrencyModel::EventDriven => "event-driven",
            ConcurrencyModel::MultiThreaded => "multi-threaded",
            ConcurrencyModel::WorkerProcessPool => "worker process pool",
            ConcurrencyModel::ProcessPerTask => "process per task",
        })
    }
}

/// One wrapper site in an application's profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteMix {
    /// Wrapper code style.
    pub style: WrapperStyle,
    /// Syscall number served by this site.
    pub nr: u64,
    /// Fraction of the app's dynamic syscalls that flow through it.
    pub weight: f64,
}

/// An application row of Table 1.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name as printed in the table.
    pub name: &'static str,
    /// Role description (Table 1 column 2).
    pub description: &'static str,
    /// Implementation language/runtime (column 3).
    pub language: &'static str,
    /// Benchmark used as the driver (column 4).
    pub benchmark: &'static str,
    /// The paper's measured reduction, for side-by-side reporting.
    pub paper_reduction: f64,
    /// The paper's reduction after manual/offline patching, if reported.
    pub paper_manual: Option<f64>,
    /// Dynamic syscall distribution over wrapper sites.
    pub sites: Vec<SiteMix>,
    /// Syscalls a process performs before the workload replaces it with a
    /// fresh one (`None` = long-lived daemon). Kernel compilation's
    /// process churn re-traps every site once per process.
    pub syscalls_per_process: Option<u64>,
    /// §2.2 concurrency classification.
    pub concurrency: ConcurrencyModel,
}

/// Measured outcome for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMeasurement {
    /// Application name.
    pub name: &'static str,
    /// Percentage of syscalls converted to function calls by online ABOM.
    pub online_reduction: f64,
    /// Reduction with the offline tool applied first (only meaningfully
    /// different for apps with cancellable wrappers).
    pub offline_reduction: f64,
    /// Total syscalls executed in the measurement.
    pub total_syscalls: u64,
}

impl AppProfile {
    /// Builds the wrapper library for this app's site mix — one
    /// `wrapper_<index>` per [`SiteMix`] entry. Public so the
    /// `verify_study` harness can run the static analyzer over the same
    /// images the reduction study executes.
    pub fn library(&self) -> BinaryImage {
        let specs: Vec<WrapperSpec> = self
            .sites
            .iter()
            .enumerate()
            .map(|(index, s)| WrapperSpec {
                index,
                style: s.style,
                nr: s.nr,
            })
            .collect();
        library_image(&specs)
    }

    fn run(&self, template: &BinaryImage, syscalls: u64, rng: &mut Rng) -> XContainerKernel {
        let weights: Vec<f64> = self.sites.iter().map(|s| s.weight).collect();
        // Resolve every wrapper entry once up front — the addresses are
        // identical in every clone of the template — and reuse one CPU
        // across invocations; both lookups sat on the hot loop before.
        let entries: Vec<u64> = (0..self.sites.len())
            .map(|idx| {
                template
                    .symbol(&format!("wrapper_{idx}"))
                    .expect("wrapper symbol")
            })
            .collect();
        let mut kernel = XContainerKernel::new();
        let mut cpu = Cpu::new(0);
        // Fresh process image: patches do not persist across exec unless
        // the dirty pages were flushed (we model the no-flush prototype).
        let mut image = template.clone();
        let mut in_process = 0u64;
        for _ in 0..syscalls {
            if let Some(limit) = self.syscalls_per_process {
                if in_process == limit {
                    image.clone_from(template);
                    in_process = 0;
                }
            }
            let idx = rng.pick_weighted(&weights);
            let site = self.sites[idx];
            let stack = site.style.takes_stack_number().then_some(site.nr);
            let rdi = site.style.takes_register_number().then_some(site.nr);
            invoke_reusing(&mut cpu, &mut image, &mut kernel, entries[idx], stack, rdi)
                .expect("wrapper invocation");
            in_process += 1;
        }
        kernel
    }

    /// Runs `syscalls` dynamic syscalls through the app's wrappers under
    /// online ABOM, and again with the offline tool pre-applied.
    pub fn measure(&self, syscalls: u64, seed: u64) -> AppMeasurement {
        let template = self.library();
        let mut rng = Rng::new(seed);
        let online = self.run(&template, syscalls, &mut rng);

        let (offline_template, _) = OfflinePatcher::new()
            .patch(&template)
            .expect("offline patching");
        let mut rng = Rng::new(seed);
        let offline = self.run(&offline_template, syscalls, &mut rng);

        AppMeasurement {
            name: self.name,
            online_reduction: online.stats().reduction_percent(),
            offline_reduction: offline.stats().reduction_percent(),
            total_syscalls: online.stats().total_syscalls(),
        }
    }
}

fn glibc_sites(weights: &[(u64, f64)]) -> Vec<SiteMix> {
    weights
        .iter()
        .map(|&(nr, weight)| SiteMix {
            style: if nr < 256 {
                WrapperStyle::GlibcSmall
            } else {
                WrapperStyle::GlibcLarge
            },
            nr,
            weight,
        })
        .collect()
}

fn go_sites(weight: f64) -> SiteMix {
    SiteMix {
        style: WrapperStyle::GoStack,
        nr: 0,
        weight,
    }
}

fn cancellable(nr: u64, weight: f64) -> SiteMix {
    SiteMix {
        style: WrapperStyle::PthreadCancellable,
        nr,
        weight,
    }
}

fn libc_shim(weight: f64) -> SiteMix {
    SiteMix {
        style: WrapperStyle::LibcShim,
        nr: 39,
        weight,
    }
}

/// The twelve Table 1 rows.
///
/// Site mixes are the modelled inputs (derived from each runtime's
/// linkage: pure-glibc event loops, Go runtimes, JVM/BEAM pthread pools,
/// libpthread-heavy MySQL); reductions are measured outputs.
pub fn table1_profiles() -> Vec<AppProfile> {
    vec![
        AppProfile {
            name: "memcached",
            description: "Memory caching system",
            language: "C/C++",
            benchmark: "memtier_benchmark",
            paper_reduction: 100.0,
            paper_manual: None,
            // Event loop on glibc wrappers only.
            sites: glibc_sites(&[(0, 0.30), (1, 0.30), (232, 0.25), (288, 0.15)]),
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "Redis",
            description: "In-memory database",
            language: "C/C++",
            benchmark: "redis-benchmark",
            paper_reduction: 100.0,
            paper_manual: None,
            sites: glibc_sites(&[(0, 0.35), (1, 0.35), (232, 0.20), (35, 0.10)]),
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::EventDriven,
        },
        AppProfile {
            name: "etcd",
            description: "Key-value store",
            language: "Go",
            benchmark: "etcd-benchmark",
            paper_reduction: 100.0,
            paper_manual: None,
            // Go funnels everything through syscall.Syscall (case 2).
            sites: vec![
                go_sites(0.85),
                SiteMix {
                    style: WrapperStyle::GoStack,
                    nr: 0,
                    weight: 0.15,
                },
            ],
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "MongoDB",
            description: "NoSQL Database",
            language: "C/C++",
            benchmark: "YCSB",
            paper_reduction: 100.0,
            paper_manual: None,
            sites: glibc_sites(&[(0, 0.25), (1, 0.25), (17, 0.20), (18, 0.15), (281, 0.15)]),
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "InfluxDB",
            description: "Time series database",
            language: "Go",
            benchmark: "influxdb-comparisons",
            paper_reduction: 100.0,
            paper_manual: None,
            sites: vec![go_sites(1.0)],
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "Postgres",
            description: "Database",
            language: "C/C++",
            benchmark: "pgbench",
            paper_reduction: 99.80,
            paper_manual: None,
            // A sliver of traffic through a cancellable latch wait.
            sites: {
                let mut s = glibc_sites(&[(0, 0.42), (1, 0.40), (232, 0.178)]);
                s.push(cancellable(202, 0.002));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::WorkerProcessPool,
        },
        AppProfile {
            name: "Fluentd",
            description: "Data collector",
            language: "Ruby",
            benchmark: "fluentd-benchmark",
            paper_reduction: 99.40,
            paper_manual: None,
            sites: {
                let mut s = glibc_sites(&[(0, 0.55), (1, 0.444)]);
                s.push(cancellable(271, 0.006));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::WorkerProcessPool,
        },
        AppProfile {
            name: "Elasticsearch",
            description: "Search engine",
            language: "JAVA",
            benchmark: "elasticsearch-stress-test",
            paper_reduction: 98.80,
            paper_manual: None,
            // JVM: epoll loops via glibc, plus pthread-pool park/unpark.
            sites: {
                let mut s = glibc_sites(&[(0, 0.45), (1, 0.35), (281, 0.188)]);
                s.push(cancellable(202, 0.012));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "RabbitMQ",
            description: "Message broker",
            language: "Erlang",
            benchmark: "rabbitmq-perf-test",
            paper_reduction: 98.60,
            paper_manual: None,
            sites: {
                let mut s = glibc_sites(&[(0, 0.40), (1, 0.40), (232, 0.186)]);
                s.push(cancellable(202, 0.014));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
        AppProfile {
            name: "Kernel Compilation",
            description: "Code Compilation",
            language: "Various tools",
            benchmark: "Linux kernel with tiny config",
            paper_reduction: 95.30,
            paper_manual: None,
            // All-glibc sites, but a fresh cc/ld process every ~300
            // syscalls re-traps each of the ~14 hot sites once.
            sites: glibc_sites(&[
                (0, 0.18),
                (1, 0.14),
                (2, 0.10),
                (3, 0.10),
                (9, 0.08),
                (10, 0.06),
                (11, 0.06),
                (12, 0.05),
                (21, 0.05),
                (4, 0.05),
                (5, 0.04),
                (257, 0.04),
                (262, 0.03),
                (8, 0.02),
            ]),
            syscalls_per_process: Some(300),
            concurrency: ConcurrencyModel::ProcessPerTask,
        },
        AppProfile {
            name: "Nginx",
            description: "Webserver",
            language: "C/C++",
            benchmark: "Apache ab",
            paper_reduction: 92.30,
            paper_manual: None,
            // Worker loop on glibc, but the connection-close path runs
            // through cancellable wrappers.
            sites: {
                let mut s = glibc_sites(&[(0, 0.30), (1, 0.30), (232, 0.173), (40, 0.15)]);
                s.push(cancellable(3, 0.077));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::WorkerProcessPool,
        },
        AppProfile {
            name: "MySQL",
            description: "Database",
            language: "C/C++",
            benchmark: "sysbench",
            paper_reduction: 44.60,
            paper_manual: Some(92.20),
            // "MySQL … uses cancellable system calls implemented in the
            // libpthread library that are not recognized by ABOM" (§5.2);
            // the offline tool recovers them, minus a libc-style
            // `syscall(nr, ...)` shim residue whose number only the
            // interprocedural analyzer can see.
            sites: {
                let mut s = glibc_sites(&[(1, 0.246), (0, 0.20)]);
                s.push(cancellable(0, 0.25));
                s.push(cancellable(1, 0.226));
                s.push(libc_shim(0.078));
                s
            },
            syscalls_per_process: None,
            concurrency: ConcurrencyModel::MultiThreaded,
        },
    ]
}

/// Runs the full Table 1 study.
pub fn run_table1(syscalls_per_app: u64, seed: u64) -> Vec<(AppProfile, AppMeasurement)> {
    table1_profiles()
        .into_iter()
        .map(|p| {
            let m = p.measure(syscalls_per_app, seed ^ fxhash(p.name));
            (p, m)
        })
        .collect()
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNS: u64 = 4_000;

    #[test]
    fn weights_sum_to_one() {
        for p in table1_profiles() {
            let total: f64 = p.sites.iter().map(|s| s.weight).sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "{}: weights sum {total}",
                p.name
            );
        }
    }

    #[test]
    fn pure_glibc_and_go_apps_reach_full_reduction() {
        for p in table1_profiles()
            .into_iter()
            .filter(|p| p.paper_reduction == 100.0)
        {
            let m = p.measure(RUNS, 42);
            // Warm-up traps only: a handful of sites out of thousands of
            // calls.
            assert!(
                m.online_reduction > 99.5,
                "{}: got {:.2}%",
                p.name,
                m.online_reduction
            );
        }
    }

    #[test]
    fn measured_reductions_track_paper_rows() {
        for (p, m) in run_table1(RUNS, 7) {
            let tolerance = if p.syscalls_per_process.is_some() {
                1.5
            } else {
                1.0
            };
            assert!(
                (m.online_reduction - p.paper_reduction).abs() < tolerance,
                "{}: measured {:.2}% vs paper {:.2}%",
                p.name,
                m.online_reduction,
                p.paper_reduction
            );
        }
    }

    #[test]
    fn mysql_offline_patching_recovers() {
        let mysql = table1_profiles()
            .into_iter()
            .find(|p| p.name == "MySQL")
            .unwrap();
        let m = mysql.measure(RUNS, 3);
        assert!(
            (m.online_reduction - 44.6).abs() < 2.0,
            "online {:.2}",
            m.online_reduction
        );
        assert!(
            (m.offline_reduction - 92.2).abs() < 2.0,
            "offline {:.2}",
            m.offline_reduction
        );
        assert!(
            m.offline_reduction < 99.0,
            "shim residue must remain under the default (intraprocedural) tool"
        );
    }

    #[test]
    fn kernel_compilation_cold_start_mechanism() {
        let kc = table1_profiles()
            .into_iter()
            .find(|p| p.name == "Kernel Compilation")
            .unwrap();
        let churn = kc.measure(RUNS, 5).online_reduction;
        // Same sites without process churn: reduction ≈ 100%.
        let mut long_lived = kc.clone();
        long_lived.syscalls_per_process = None;
        let steady = long_lived.measure(RUNS, 5).online_reduction;
        assert!(steady > 99.0);
        assert!(churn < steady, "process churn must cost traps");
        assert!((churn - 95.3).abs() < 1.5, "churn reduction {churn:.2}");
    }

    #[test]
    fn twelve_rows_like_the_paper() {
        assert_eq!(table1_profiles().len(), 12);
    }

    #[test]
    fn section_2_2_survey_no_process_per_client() {
        // "All the top 10 most popular containerized applications … use
        // either a single-threaded event-driven model or multi-threading
        // instead of multiple processes" — worker pools serve many
        // clients per process; nothing isolates clients by process.
        for p in table1_profiles() {
            assert!(
                !p.concurrency.process_per_client(),
                "{} must not use process-per-client",
                p.name
            );
        }
        let pools = table1_profiles()
            .iter()
            .filter(|p| p.concurrency == ConcurrencyModel::WorkerProcessPool)
            .count();
        assert!(pools >= 2, "NGINX and Fluentd use worker pools (§2.2)");
        assert!(!ConcurrencyModel::EventDriven.to_string().is_empty());
    }
}
