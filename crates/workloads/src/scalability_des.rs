//! Event-driven cross-validation of the Figure 8 model.
//!
//! [`crate::scalability`] computes aggregate throughput in closed form
//! (capacity vs offered load). This module re-runs the same scenario as
//! a **discrete-event simulation** on the `xc-sim` engine — N containers,
//! each a closed loop of 5 wrk connections feeding a bounded-parallelism
//! server, all competing for 16 cores — and the integration suite
//! requires the two approaches to agree. Disagreement would mean the
//! closed-form shortcut (not the architecture comparison) is wrong.

use std::collections::VecDeque;

use xc_runtimes::cloud::CloudEnv;
use xc_sim::cost::CostModel;
use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::time::Nanos;

use crate::scalability::{per_request_cpu, ScalabilityConfig};

/// Connections per container (the paper's wrk setup).
const CONNECTIONS: u32 = 5;

/// Client round-trip before reissuing a request.
const CLIENT_RTT: Nanos = Nanos::from_micros(56);

struct ContainerState {
    in_service: u32,
    waiting: VecDeque<()>,
}

struct Fleet {
    service: Nanos,
    cores: u32,
    busy_cores: u32,
    per_container_limit: u32,
    containers: Vec<ContainerState>,
    /// Containers with work ready but no core (FIFO for fairness).
    core_queue: VecDeque<usize>,
    completed: u64,
}

enum Ev {
    Arrive(usize),
    Finish(usize),
}

impl Fleet {
    fn try_start(&mut self, c: usize, queue: &mut EventQueue<Ev>) {
        let limit = self.per_container_limit;
        let state = &mut self.containers[c];
        if state.waiting.is_empty() || state.in_service >= limit || self.busy_cores >= self.cores {
            return;
        }
        state.waiting.pop_front();
        state.in_service += 1;
        self.busy_cores += 1;
        queue.schedule_in(self.service, Ev::Finish(c));
    }

    fn drain_core_queue(&mut self, queue: &mut EventQueue<Ev>) {
        // Hand freed cores to waiting containers in FIFO order.
        while self.busy_cores < self.cores {
            let Some(c) = self.core_queue.pop_front() else {
                break;
            };
            let before = self.busy_cores;
            self.try_start(c, queue);
            if self.busy_cores == before {
                // Container no longer eligible (own limit hit / no work).
                continue;
            }
        }
    }
}

impl World for Fleet {
    type Event = Ev;

    fn handle(&mut self, _now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive(c) => {
                self.containers[c].waiting.push_back(());
                if self.busy_cores < self.cores {
                    self.try_start(c, queue);
                } else {
                    self.core_queue.push_back(c);
                }
            }
            Ev::Finish(c) => {
                self.completed += 1;
                self.containers[c].in_service -= 1;
                self.busy_cores -= 1;
                // The connection thinks for an RTT, then reissues.
                queue.schedule_in(CLIENT_RTT, Ev::Arrive(c));
                // This container may have queued work, and others may be
                // starved for cores.
                self.try_start(c, queue);
                self.drain_core_queue(queue);
            }
        }
    }
}

/// Runs the event-driven fleet and returns aggregate requests/second.
pub fn des_throughput(
    config: ScalabilityConfig,
    n: u64,
    duration: Nanos,
    costs: &CostModel,
) -> f64 {
    let service = per_request_cpu(config, n, costs);
    let per_container_limit = match config {
        ScalabilityConfig::Docker => 2,
        _ => 1,
    };
    let fleet = Fleet {
        service,
        cores: CloudEnv::LocalCluster.cores(),
        busy_cores: 0,
        per_container_limit,
        containers: (0..n)
            .map(|_| ContainerState {
                in_service: 0,
                waiting: VecDeque::new(),
            })
            .collect(),
        core_queue: VecDeque::new(),
        completed: 0,
    };
    // One pending event per connection per container at steady state.
    let mut sim = Simulation::with_capacity(fleet, n as usize * CONNECTIONS as usize + 1);
    for c in 0..n as usize {
        for k in 0..CONNECTIONS {
            // Stagger connection start-up across one RTT.
            let offset = CLIENT_RTT * u64::from(k) / u64::from(CONNECTIONS);
            sim.queue_mut().schedule_at(offset, Ev::Arrive(c));
        }
    }
    sim.run_until(duration);
    sim.world().completed as f64 / duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalability::throughput;

    /// The closed-form and event-driven models must agree within 20%
    /// wherever the closed form claims the machine is CPU-saturated.
    #[test]
    fn closed_form_matches_des_at_saturation() {
        let costs = CostModel::skylake_cloud();
        let window = Nanos::from_millis(300);
        for config in [ScalabilityConfig::Docker, ScalabilityConfig::XContainer] {
            for n in [32u64, 64, 128] {
                let analytic = throughput(config, n, &costs).expect("bootable");
                let des = des_throughput(config, n, window, &costs);
                let err = (des - analytic).abs() / analytic;
                assert!(
                    err < 0.20,
                    "{} n={n}: analytic {analytic:.0} vs DES {des:.0} ({:.0}% off)",
                    config.label(),
                    err * 100.0
                );
            }
        }
    }

    /// The DES preserves the Figure 8 ordering independently of the
    /// closed form: Docker leads at moderate N.
    #[test]
    fn des_reproduces_docker_lead_at_low_density() {
        let costs = CostModel::skylake_cloud();
        let window = Nanos::from_millis(200);
        let d = des_throughput(ScalabilityConfig::Docker, 48, window, &costs);
        let x = des_throughput(ScalabilityConfig::XContainer, 48, window, &costs);
        assert!(d > x, "docker {d:.0} vs x {x:.0}");
    }

    #[test]
    fn des_is_deterministic() {
        let costs = CostModel::skylake_cloud();
        let a = des_throughput(
            ScalabilityConfig::XContainer,
            40,
            Nanos::from_millis(100),
            &costs,
        );
        let b = des_throughput(
            ScalabilityConfig::XContainer,
            40,
            Nanos::from_millis(100),
            &costs,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn des_work_conserving() {
        // One container cannot exceed its parallelism limit; many
        // containers cannot exceed the core count.
        let costs = CostModel::skylake_cloud();
        let service = per_request_cpu(ScalabilityConfig::XContainer, 1, &costs);
        let one = des_throughput(
            ScalabilityConfig::XContainer,
            1,
            Nanos::from_millis(200),
            &costs,
        );
        let cap_one = 1.0 / service.as_secs_f64();
        assert!(one <= cap_one * 1.01, "one {one:.0} cap {cap_one:.0}");

        let service_many = per_request_cpu(ScalabilityConfig::XContainer, 200, &costs);
        let many = des_throughput(
            ScalabilityConfig::XContainer,
            200,
            Nanos::from_millis(200),
            &costs,
        );
        let cap_many = 16.0 / service_many.as_secs_f64();
        assert!(many <= cap_many * 1.01, "many {many:.0} cap {cap_many:.0}");
    }
}
