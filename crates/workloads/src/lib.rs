//! # xc-workloads — benchmark workloads for every table and figure
//!
//! Each module reproduces one of the paper's workload generators, driving
//! the platform models of `xc-runtimes` (and, for Table 1, the *real*
//! ABOM patcher of `xc-abom`):
//!
//! * [`unixbench`] — the §5.4 microbenchmark suite: System Call, Execl,
//!   File Copy, Pipe Throughput, Context Switching, Process Creation
//!   (Figures 4 and 5),
//! * [`iperf`] — TCP stream throughput (Figure 5),
//! * [`http`] — the closed-loop request/response engine behind `ab`,
//!   `wrk` and `memtier_benchmark`, decomposed into per-worker shard
//!   worlds ([`http::run_closed_loop_sharded`]),
//! * [`costs`] — the precomputed [`PlatformCosts`] table every
//!   request/response simulation reads instead of re-deriving platform
//!   costs per event,
//! * [`cluster`] — the cluster-scale open-loop study: simulated hosts ×
//!   X-Container domains under traffic from millions of modelled
//!   clients,
//! * [`apps`] — per-application service profiles: NGINX, memcached,
//!   Redis, PHP, MySQL, PHP-FPM (Figures 3 and 6),
//! * [`table1`] — the ABOM syscall-reduction study over synthetic
//!   application wrapper libraries, measured through the real patcher
//!   (Table 1),
//! * [`scalability`] — N-container NGINX+PHP throughput under
//!   hierarchical vs flat scheduling (Figure 8),
//! * [`loadbalance`] — HAProxy vs IPVS NAT vs IPVS direct routing
//!   (Figure 9).
//!
//! # Example
//!
//! ```
//! use xc_runtimes::{CloudEnv, Platform};
//! use xc_sim::cost::CostModel;
//! use xc_workloads::unixbench::SystemCallBench;
//!
//! let costs = CostModel::skylake_cloud();
//! let docker = SystemCallBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
//! let xc = SystemCallBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
//! assert!(xc / docker > 10.0); // Figure 4's shape
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cluster;
pub mod costs;
pub mod fig6;
pub mod http;
pub mod iperf;
pub mod kv;
pub mod loadbalance;
pub mod rdma;
pub mod scalability;
pub mod scalability_des;
pub mod table1;
pub mod unixbench;

pub use costs::PlatformCosts;
pub use http::{ClosedLoopResult, LoopArena, RequestProfile, ServerModel};
