//! UnixBench **Process Creation** (Figure 5).
//!
//! "The Process Creation benchmark measures the performance of spawning
//! new processes with the fork system call" (§5.4): fork + immediate
//! child exit + parent wait, dominated by address-space construction —
//! the other benchmark X-Containers lose, since every PTE update is
//! validated by the X-Kernel.

use xc_libos::process::ProcessTable;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::domain::DomainId;
use xc_xen::pgtable::PageTables;

/// Resident pages of the forking benchmark process.
pub const BENCH_PAGES: u64 = 500;
/// Forks measured per score call.
pub const FORKS: u64 = 200;

/// The Process Creation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessCreationBench;

impl ProcessCreationBench {
    /// fork+exit pairs per second, driven through the real process table
    /// (address spaces are created and destroyed in the hypervisor model).
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let mut pt = PageTables::new();
        let mut procs = ProcessTable::new(platform.backend(), DomainId(1));
        let (init, _) = procs
            .spawn_init("unixbench", BENCH_PAGES, &mut pt, costs)
            .expect("spawn init");
        let dispatch = platform.syscall_cost(costs);
        let mut total = Nanos::ZERO;
        for _ in 0..FORKS {
            // fork syscall + platform-specific fork work.
            let (child, fork_cost) = procs.fork(init, &mut pt, costs).expect("fork");
            // Platform interposition surcharge (e.g. gVisor sentry
            // emulation) over the raw backend fork.
            let surcharge = platform
                .fork_cost(costs, BENCH_PAGES)
                .saturating_sub(fork_cost);
            // child exits; parent waits.
            let teardown = procs.exit(child, &mut pt, costs).expect("exit");
            total += dispatch * 2 + fork_cost + surcharge + teardown;
        }
        assert_eq!(procs.total_forks(), FORKS);
        assert_eq!(procs.len(), 1, "all children reaped");
        let total = platform.environment_adjust(total);
        FORKS as f64 / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_loses_process_creation() {
        let costs = CostModel::skylake_cloud();
        let docker =
            ProcessCreationBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc =
            ProcessCreationBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let rel = xc / docker;
        assert!((0.3..1.0).contains(&rel), "process creation relative {rel}");
    }

    #[test]
    fn gvisor_process_creation_collapses() {
        let costs = CostModel::skylake_cloud();
        let docker =
            ProcessCreationBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let gv = ProcessCreationBench::score(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        assert!(gv < docker * 0.4);
    }
}
