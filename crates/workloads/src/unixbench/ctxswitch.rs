//! UnixBench **Context Switching** (Figure 5).
//!
//! "The Context Switching benchmark tests the speed of two processes
//! communicating with a pipe" (§5.4): a token bounces between two
//! processes through a pipe pair, forcing two process context switches
//! per round trip — the benchmark where X-Containers *lose* to Docker
//! because page-table installation must cross into the X-Kernel.

use xc_libos::pipe::Pipe;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Token size (UnixBench spopen-style ping-pong).
pub const TOKEN: usize = 4;
/// Round trips measured per score call.
pub const ROUND_TRIPS: u64 = 1_000;

/// The Context Switching benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSwitchBench;

impl ContextSwitchBench {
    /// Round trips per second (each round trip = 2 switches + 4 pipe
    /// syscalls).
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let mut a_to_b = Pipe::new();
        let mut b_to_a = Pipe::new();
        let dispatch = platform.syscall_cost(costs);
        // Two processes alive; blockers leave the runqueue short.
        let switch = platform.context_switch_cost(costs, 2);
        let token = [0xffu8; TOKEN];
        let mut buf = [0u8; TOKEN];
        let mut total = Nanos::ZERO;
        for _ in 0..ROUND_TRIPS {
            // A writes, blocks reading the reply → switch to B.
            let (_, w1) = a_to_b.write(&token, costs).expect("a→b write");
            total += dispatch + w1 + switch;
            let (_, r1) = a_to_b.read(&mut buf, costs).expect("b reads");
            let (_, w2) = b_to_a.write(&token, costs).expect("b→a write");
            total += dispatch * 2 + r1 + w2 + switch;
            let (_, r2) = b_to_a.read(&mut buf, costs).expect("a reads");
            total += dispatch + r2;
        }
        let total = platform.environment_adjust(total);
        ROUND_TRIPS as f64 / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_loses_context_switching() {
        // §5.4: page-table operations must be done in the X-Kernel.
        let costs = CostModel::skylake_cloud();
        let docker =
            ContextSwitchBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc =
            ContextSwitchBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let rel = xc / docker;
        assert!((0.4..1.0).contains(&rel), "ctx switch relative {rel}");
    }

    #[test]
    fn unpatched_docker_fastest() {
        let costs = CostModel::skylake_cloud();
        let patched =
            ContextSwitchBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let unpatched =
            ContextSwitchBench::score(&Platform::docker(CloudEnv::AmazonEc2, false), &costs);
        assert!(unpatched > patched);
    }

    #[test]
    fn pv_worst_of_the_vm_family() {
        let costs = CostModel::skylake_cloud();
        let xen =
            ContextSwitchBench::score(&Platform::xen_container(CloudEnv::AmazonEc2, true), &costs);
        let xc =
            ContextSwitchBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        assert!(
            xen < xc,
            "full-flush PV switches must trail global-bit X switches"
        );
    }
}
