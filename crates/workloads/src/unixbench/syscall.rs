//! UnixBench **System Call** (Figure 4).
//!
//! "The System Call benchmark tests the speed of issuing a series of
//! nonblocking system calls, including dup, close, getpid, getuid, and
//! umask" (§5.4). One iteration = five trivial syscalls plus loop
//! overhead; the score is iterations per second.

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;

/// Syscalls per benchmark iteration (dup, close, getpid, getuid, umask).
pub const CALLS_PER_ITERATION: u64 = 5;

/// The System Call benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemCallBench;

impl SystemCallBench {
    /// Iterations per second on `platform`. All five wrappers are
    /// glibc-style `mov`+`syscall` pairs, so on X-Containers every site is
    /// ABOM-patched after the first pass (steady state measured, as in
    /// the paper's multi-second runs).
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let dispatch = platform.syscall_cost(costs);
        let per_call = dispatch + costs.syscall_body;
        let per_iteration =
            platform.environment_adjust(per_call * CALLS_PER_ITERATION + costs.loop_iteration);
        1.0 / per_iteration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_headline_ratio() {
        // "up to 27× higher raw system call throughput compared to Docker
        // containers" (abstract) — accept the 20–40× band.
        let costs = CostModel::skylake_cloud();
        for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
            let docker = SystemCallBench::score(&Platform::docker(cloud, true), &costs);
            let xc = SystemCallBench::score(&Platform::x_container(cloud, true), &costs);
            let ratio = xc / docker;
            assert!((15.0..45.0).contains(&ratio), "{cloud:?}: ratio {ratio}");
        }
    }

    #[test]
    fn gvisor_at_single_digit_percent() {
        let costs = CostModel::skylake_cloud();
        let docker = SystemCallBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let gv = SystemCallBench::score(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        let frac = gv / docker;
        assert!((0.03..0.15).contains(&frac), "gVisor fraction {frac}");
    }

    #[test]
    fn xen_container_below_docker() {
        let costs = CostModel::skylake_cloud();
        let docker = SystemCallBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xen =
            SystemCallBench::score(&Platform::xen_container(CloudEnv::AmazonEc2, true), &costs);
        assert!(xen < docker);
    }

    #[test]
    fn patch_hurts_docker_not_x() {
        let costs = CostModel::skylake_cloud();
        let cloud = CloudEnv::GoogleGce;
        let d_p = SystemCallBench::score(&Platform::docker(cloud, true), &costs);
        let d_u = SystemCallBench::score(&Platform::docker(cloud, false), &costs);
        assert!(d_u > d_p * 1.5);
        let x_p = SystemCallBench::score(&Platform::x_container(cloud, true), &costs);
        let x_u = SystemCallBench::score(&Platform::x_container(cloud, false), &costs);
        assert_eq!(x_p, x_u);
    }
}
