//! The UnixBench microbenchmark suite (§5.4, Figures 4 and 5).
//!
//! Each benchmark reports a *score* in iterations per second of simulated
//! time; the figure harnesses normalize scores to patched Docker exactly
//! as the paper does. The File Copy, Pipe and Context Switching
//! benchmarks move real bytes through the `xc-libos` VFS and pipes; the
//! others compose costs from the platform model.

mod ctxswitch;
mod execl;
mod filecopy;
mod pipe;
mod spawn;
mod syscall;

pub use ctxswitch::ContextSwitchBench;
pub use execl::ExeclBench;
pub use filecopy::FileCopyBench;
pub use pipe::PipeThroughputBench;
pub use spawn::ProcessCreationBench;
pub use syscall::SystemCallBench;

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;

/// The Figure 5 benchmark set (System Call is Figure 4's own panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroBench {
    /// UnixBench Execl.
    Execl,
    /// UnixBench File Copy (1 KiB buffer).
    FileCopy,
    /// UnixBench Pipe Throughput.
    PipeThroughput,
    /// UnixBench Pipe-based Context Switching.
    ContextSwitching,
    /// UnixBench Process Creation.
    ProcessCreation,
}

impl MicroBench {
    /// All Figure 5 benchmarks, in figure order.
    pub const ALL: [MicroBench; 5] = [
        MicroBench::Execl,
        MicroBench::FileCopy,
        MicroBench::PipeThroughput,
        MicroBench::ContextSwitching,
        MicroBench::ProcessCreation,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MicroBench::Execl => "Execl",
            MicroBench::FileCopy => "File Copy",
            MicroBench::PipeThroughput => "Pipe Throughput",
            MicroBench::ContextSwitching => "Context Switching",
            MicroBench::ProcessCreation => "Process Creation",
        }
    }

    /// Runs the benchmark on a platform, returning its score
    /// (iterations/second; higher is better).
    pub fn score(self, platform: &Platform, costs: &CostModel) -> f64 {
        match self {
            MicroBench::Execl => ExeclBench::score(platform, costs),
            MicroBench::FileCopy => FileCopyBench::score(platform, costs),
            MicroBench::PipeThroughput => PipeThroughputBench::score(platform, costs),
            MicroBench::ContextSwitching => ContextSwitchBench::score(platform, costs),
            MicroBench::ProcessCreation => ProcessCreationBench::score(platform, costs),
        }
    }
}

/// Concurrency scaling for the "concurrent" panels: the paper runs 4
/// copies simultaneously on 4 cores / 8 threads, so per-copy scores hold
/// roughly steady for multicore-capable platforms and collapse for
/// single-core ones.
pub fn concurrent_score(single: f64, platform: &Platform, copies: u32) -> f64 {
    if platform.supports_multicore() {
        // Mild SMT/cache contention at 4 copies on 4 physical cores.
        single * f64::from(copies) * 0.88
    } else {
        // Serialized: the copies time-share one logical CPU.
        single
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn all_benches_produce_positive_scores() {
        let costs = CostModel::skylake_cloud();
        for platform in Platform::cloud_configurations(CloudEnv::GoogleGce) {
            for bench in MicroBench::ALL {
                let s = bench.score(&platform, &costs);
                assert!(s > 0.0, "{} on {} gave {s}", bench.label(), platform.name());
            }
        }
    }

    #[test]
    fn figure5_shape_for_x_container() {
        // §5.4: X wins File Copy / Pipe / Execl, loses Context Switching
        // and Process Creation.
        let costs = CostModel::skylake_cloud();
        let docker = Platform::docker(CloudEnv::AmazonEc2, true);
        let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
        let rel = |b: MicroBench| b.score(&xc, &costs) / b.score(&docker, &costs);

        assert!(
            rel(MicroBench::Execl) > 1.0,
            "execl {}",
            rel(MicroBench::Execl)
        );
        assert!(
            rel(MicroBench::FileCopy) > 1.5,
            "filecopy {}",
            rel(MicroBench::FileCopy)
        );
        assert!(
            rel(MicroBench::PipeThroughput) > 1.5,
            "pipe {}",
            rel(MicroBench::PipeThroughput)
        );
        assert!(
            rel(MicroBench::ContextSwitching) < 1.0,
            "ctxswitch {}",
            rel(MicroBench::ContextSwitching)
        );
        assert!(
            rel(MicroBench::ProcessCreation) < 1.0,
            "spawn {}",
            rel(MicroBench::ProcessCreation)
        );
    }

    #[test]
    fn concurrent_panel_scaling() {
        let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
        let gv = Platform::gvisor(CloudEnv::AmazonEc2, true);
        assert!(concurrent_score(100.0, &xc, 4) > 300.0);
        assert_eq!(concurrent_score(100.0, &gv, 4), 100.0);
    }
}
