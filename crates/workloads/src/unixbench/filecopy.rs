//! UnixBench **File Copy** with a 1 KiB buffer (Figure 5).
//!
//! Per iteration the benchmark `read`s 1 KiB from a source file and
//! `write`s it to a destination file — two syscalls plus VFS/page-cache
//! work. The bytes really move through the `xc-libos` VFS so the copy
//! loop is exercised end to end; the platform determines the dispatch
//! cost attached to each call.

use xc_libos::vfs::Vfs;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Copy buffer size (the paper's 1 KB variant).
pub const BUFFER: usize = 1024;
/// Size of the file shuttled per measured pass.
pub const FILE_SIZE: usize = 64 * 1024;

/// The File Copy benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCopyBench;

impl FileCopyBench {
    /// Copy iterations (1 KiB read+write pairs) per second.
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let mut fs = Vfs::new();
        fs.create("/src").expect("fresh fs");
        fs.create("/dst").expect("fresh fs");
        let src = fs.open("/src").expect("open src");
        fs.write(src, &vec![0xabu8; FILE_SIZE], costs)
            .expect("seed src");
        fs.seek(src, 0).expect("rewind");
        let dst = fs.open("/dst").expect("open dst");

        let dispatch = platform.syscall_cost(costs);
        let kernel_mult = platform.kernel_ops_multiplier();
        let mut buf = [0u8; BUFFER];
        let mut total = Nanos::ZERO;
        let mut iterations = 0u64;
        loop {
            let (n, read_cost) = fs.read(src, &mut buf, costs).expect("read");
            if n == 0 {
                break;
            }
            let write_cost = fs.write(dst, &buf[..n], costs).expect("write");
            total += dispatch * 2 + (read_cost + write_cost).scale(kernel_mult);
            iterations += 1;
        }
        assert_eq!(fs.size("/dst").expect("dst exists"), FILE_SIZE);
        let total = platform.environment_adjust(total);
        iterations as f64 / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_wins_file_copy() {
        let costs = CostModel::skylake_cloud();
        let docker = FileCopyBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc = FileCopyBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let rel = xc / docker;
        assert!((1.5..4.5).contains(&rel), "file copy relative {rel}");
    }

    #[test]
    fn xen_container_slowest_of_vm_family() {
        let costs = CostModel::skylake_cloud();
        let xen = FileCopyBench::score(&Platform::xen_container(CloudEnv::AmazonEc2, true), &costs);
        let docker = FileCopyBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        assert!(xen < docker);
    }

    #[test]
    fn score_is_deterministic() {
        let costs = CostModel::skylake_cloud();
        let p = Platform::docker(CloudEnv::GoogleGce, false);
        assert_eq!(
            FileCopyBench::score(&p, &costs),
            FileCopyBench::score(&p, &costs)
        );
    }
}
