//! UnixBench **Execl** (Figure 5).
//!
//! "The Execl benchmark measures the speed of the exec system call, which
//! overlays a new binary on the current process" (§5.4). Dominated by the
//! loader's syscall storm plus page-table rebuild.

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;

/// Resident pages of the benchmark binary being re-exec'd.
pub const IMAGE_PAGES: u64 = 150;
/// Syscalls performed while loading the image (ELF headers, `mmap`s,
/// dynamic-linker `openat`/`read`/`close` storms).
pub const LOADER_SYSCALLS: u64 = 140;

/// The Execl benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExeclBench;

impl ExeclBench {
    /// `execl` iterations per second.
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let per_exec =
            platform.environment_adjust(platform.exec_cost(costs, IMAGE_PAGES, LOADER_SYSCALLS));
        1.0 / per_exec.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_wins_execl() {
        let costs = CostModel::skylake_cloud();
        let docker = ExeclBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc = ExeclBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let rel = xc / docker;
        assert!((1.05..3.0).contains(&rel), "execl relative {rel}");
    }

    #[test]
    fn gvisor_execl_collapses() {
        let costs = CostModel::skylake_cloud();
        let docker = ExeclBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let gv = ExeclBench::score(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        assert!(gv < docker * 0.5);
    }

    #[test]
    fn unpatched_docker_faster() {
        let costs = CostModel::skylake_cloud();
        let p = ExeclBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let u = ExeclBench::score(&Platform::docker(CloudEnv::AmazonEc2, false), &costs);
        assert!(u > p);
    }
}
