//! UnixBench **Pipe Throughput** (Figure 5).
//!
//! "The Pipe Throughput benchmark measures the throughput of a single
//! process reading and writing in a pipe" (§5.4): 512-byte writes
//! immediately read back — two syscalls and two small copies per
//! iteration, no context switch.

use xc_libos::pipe::Pipe;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Payload per write/read pair (UnixBench uses 512 bytes).
pub const PAYLOAD: usize = 512;
/// Iterations measured per score call.
pub const ITERATIONS: u64 = 1_000;

/// The Pipe Throughput benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeThroughputBench;

impl PipeThroughputBench {
    /// Write+read pairs per second.
    pub fn score(platform: &Platform, costs: &CostModel) -> f64 {
        let mut pipe = Pipe::new();
        let dispatch = platform.syscall_cost(costs);
        let kernel_mult = platform.kernel_ops_multiplier();
        let payload = [0x5au8; PAYLOAD];
        let mut buf = [0u8; PAYLOAD];
        let mut total = Nanos::ZERO;
        for _ in 0..ITERATIONS {
            let (written, wcost) = pipe.write(&payload, costs).expect("pipe write");
            assert_eq!(written, PAYLOAD);
            let (read, rcost) = pipe.read(&mut buf, costs).expect("pipe read");
            assert_eq!(read, PAYLOAD);
            total += dispatch * 2 + (wcost + rcost).scale(kernel_mult);
        }
        assert_eq!(pipe.bytes_through(), ITERATIONS * PAYLOAD as u64);
        let total = platform.environment_adjust(total);
        ITERATIONS as f64 / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn x_container_wins_pipe() {
        let costs = CostModel::skylake_cloud();
        let docker =
            PipeThroughputBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc =
            PipeThroughputBench::score(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let rel = xc / docker;
        assert!((1.5..5.0).contains(&rel), "pipe relative {rel}");
    }

    #[test]
    fn gvisor_pipe_collapses() {
        let costs = CostModel::skylake_cloud();
        let docker =
            PipeThroughputBench::score(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let gv = PipeThroughputBench::score(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        assert!(gv < docker * 0.2);
    }
}
