//! Software RDMA (§5.7, first paragraph).
//!
//! "The X-Containers platform enables applications that require customized
//! kernel modules to run in containers. For example, X-Containers can run
//! software RDMA (both Soft-iwarp and Soft-ROCE) applications. In Docker
//! environments, such modules require root privilege and expose the host
//! network to the container directly, raising security concerns."
//!
//! The model compares a ping-pong message exchange over plain TCP sockets
//! against soft-RDMA verbs: after memory registration, an RDMA write is
//! issued by ringing a doorbell on a mapped queue pair — **no syscall, no
//! socket buffer copy on the send side** — while the soft transport still
//! runs the wire protocol in the kernel. The capability gate is the real
//! point: loading `rdma_rxe`/`siw` needs a kernel *you own*.

use xc_libos::config::KernelModule;
use xc_runtimes::platform::{Platform, PlatformKind};
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Transport for the ping-pong exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Plain TCP sockets (`send`/`recv` syscalls per message).
    TcpSockets,
    /// Soft-RDMA verbs (kernel-bypass submission onto a mapped QP).
    SoftRdma,
}

/// Whether the platform can use a transport at all.
///
/// Docker cannot load RDMA modules without host root and host-network
/// exposure (§5.7); any platform owning its kernel just loads the module.
pub fn transport_available(platform: &Platform, transport: Transport) -> bool {
    match transport {
        Transport::TcpSockets => true,
        Transport::SoftRdma => matches!(
            platform.kind(),
            PlatformKind::XContainer | PlatformKind::XenContainer | PlatformKind::Unikernel
        ),
    }
}

/// Loads the soft-RDMA module into an X-Container's kernel config,
/// returning the updated config (a no-op capability demonstration for
/// other platforms — see [`transport_available`]).
pub fn with_soft_rdma(platform: &Platform) -> xc_libos::config::KernelConfig {
    let mut cfg = platform.guest_config().clone();
    cfg.load_module(KernelModule::SoftRoce);
    cfg
}

/// One-way latency of a `bytes`-sized message on `platform` over
/// `transport`, or `None` when the transport is unavailable.
pub fn message_latency(
    platform: &Platform,
    transport: Transport,
    bytes: u64,
    costs: &CostModel,
) -> Option<Nanos> {
    if !transport_available(platform, transport) {
        return None;
    }
    let net = platform.net_stack(costs);
    let latency = match transport {
        Transport::TcpSockets => {
            // send syscall + kernel TX path on one side, RX path + recv
            // syscall on the other, plus the wire.
            platform.syscall_cost(costs)
                + net.send_cost(costs, bytes)
                + net.wire_latency(costs)
                + net.recv_cost(costs, bytes)
                + platform.syscall_cost(costs)
        }
        Transport::SoftRdma => {
            // Doorbell write (user space), soft transport runs the wire
            // protocol in-kernel but skips the socket layer and the
            // receiver is completed by polling a CQ — no syscalls.
            let doorbell = costs.function_call + costs.memcpy_per_kb; // WQE write
            let soft_tx = (costs.tcp_segment / 2) * xc_libos::net::NetStack::segments(bytes)
                + costs.copy_bytes(bytes);
            let completion_poll = costs.function_call * 2;
            doorbell + soft_tx + net.wire_latency(costs) + completion_poll
        }
    };
    Some(platform.environment_adjust(latency))
}

/// Round-trip latency (the ping-pong benchmark's unit).
pub fn ping_pong_latency(
    platform: &Platform,
    transport: Transport,
    bytes: u64,
    costs: &CostModel,
) -> Option<Nanos> {
    message_latency(platform, transport, bytes, costs).map(|l| l * 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    fn c() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn docker_cannot_use_soft_rdma() {
        let costs = c();
        let docker = Platform::docker(CloudEnv::LocalCluster, true);
        assert!(message_latency(&docker, Transport::SoftRdma, 64, &costs).is_none());
        assert!(message_latency(&docker, Transport::TcpSockets, 64, &costs).is_some());
    }

    #[test]
    fn x_container_loads_the_module_and_wins_small_messages() {
        let costs = c();
        let xc = Platform::x_container(CloudEnv::LocalCluster, true);
        let cfg = with_soft_rdma(&xc);
        assert!(cfg.has_module(KernelModule::SoftRoce));
        let tcp = ping_pong_latency(&xc, Transport::TcpSockets, 64, &costs).unwrap();
        let rdma = ping_pong_latency(&xc, Transport::SoftRdma, 64, &costs).unwrap();
        assert!(
            rdma < tcp,
            "verbs must beat sockets for small messages: rdma {rdma} tcp {tcp}"
        );
    }

    #[test]
    fn advantage_holds_at_every_size_and_grows_with_bulk() {
        // Small messages are wire-latency-bound (the in-host RTT dwarfs
        // the stack savings); bulk transfers expose the socket layer's
        // per-segment overhead, so soft-RDMA's relative edge *grows*.
        let costs = c();
        let xc = Platform::x_container(CloudEnv::LocalCluster, true);
        let ratio = |bytes: u64| {
            let tcp = ping_pong_latency(&xc, Transport::TcpSockets, bytes, &costs).unwrap();
            let rdma = ping_pong_latency(&xc, Transport::SoftRdma, bytes, &costs).unwrap();
            tcp.as_nanos() as f64 / rdma.as_nanos() as f64
        };
        assert!(ratio(64) > 1.0, "verbs never lose: {:.2}", ratio(64));
        assert!(
            ratio(256 * 1024) > ratio(64),
            "bulk exposes socket overhead: {:.2} vs {:.2}",
            ratio(256 * 1024),
            ratio(64)
        );
    }

    #[test]
    fn latency_monotone_in_size() {
        let costs = c();
        let xc = Platform::x_container(CloudEnv::LocalCluster, true);
        for transport in [Transport::TcpSockets, Transport::SoftRdma] {
            let small = message_latency(&xc, transport, 64, &costs).unwrap();
            let large = message_latency(&xc, transport, 1 << 20, &costs).unwrap();
            assert!(large > small);
        }
    }
}
