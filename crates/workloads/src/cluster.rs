//! Cluster-scale open-loop study: hosts × domains × modelled clients.
//!
//! The paper's macrobenchmarks drive one server; this module asks the
//! cloud operator's question instead — how many X-Container domains
//! does a *host* sustain, and what do the tails look like when a whole
//! cluster of them serves an open-loop population of clients? Each
//! simulated host runs `domains_per_host` single-process container
//! domains (one [`microservice`](crate::apps::microservice)-class
//! service each) on `host_cores` cores. A shard of the global client
//! population drives the host with Poisson arrivals (aggregate rate
//! `clients_on_host / think_time`), domain popularity is Zipf-skewed,
//! and every domain owns a bounded FIFO — requests arriving at a full
//! queue are dropped, which is how saturation (gVisor at high density)
//! becomes visible as loss instead of unbounded latency.
//!
//! # Determinism and sharding
//!
//! A host is an independent world seeded by
//! [`Rng::substream`]`(seed, host_index)` serving
//! [`shard_share`]`(clients, hosts, host_index)` clients, so the
//! cluster decomposes exactly like the per-worker closed loop: any
//! contiguous partition of the host range, simulated in any
//! arrangement of threads and merged back in host-index order, yields
//! byte-identical results. The bench harness exploits that by making
//! host chunks its parallel runner cells.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::rng::Rng;
use xc_sim::stats::{shard_share, Histogram};
use xc_sim::time::Nanos;

use crate::costs::PlatformCosts;

/// Shape of one cluster experiment (everything but the platform, which
/// enters through the derived [`PlatformCosts`] table).
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Simulated hosts in the cluster.
    pub hosts: u32,
    /// Container domains packed onto each host.
    pub domains_per_host: u32,
    /// Modelled clients across the whole cluster (each host serves its
    /// [`shard_share`]).
    pub clients: u64,
    /// Mean client think time between a response and the next request.
    pub think_time: Nanos,
    /// Simulated duration per host.
    pub duration: Nanos,
    /// Per-domain pending-request cap; arrivals beyond it are dropped.
    pub queue_cap: usize,
    /// Zipf skew of domain popularity in `[0, 1)` (0 = uniform).
    pub zipf_theta: f64,
    /// CPU cores per host.
    pub host_cores: u32,
    /// Master seed; host `h` uses substream `h`.
    pub seed: u64,
}

impl ClusterParams {
    /// Total domains across the cluster.
    pub fn total_domains(&self) -> u64 {
        u64::from(self.hosts) * u64::from(self.domains_per_host)
    }

    /// Aggregate offered load in requests/second.
    pub fn offered_rps(&self) -> f64 {
        self.clients as f64 / self.think_time.as_secs_f64()
    }
}

/// Flat per-domain bounded FIFOs plus in-service flags.
///
/// Every domain used to own a `VecDeque` (cap-bounded by the drop
/// check), so a 2 880-domain host world was 2 880 separate ring
/// buffers. This packs them into **one** slab: `stride` slots per
/// domain (the queue cap rounded up to a power of two) with per-domain
/// wrapping `u32` head/tail counters, so `len = tail - head` and the
/// slot index is `d * stride + (counter & (stride - 1))`. The logical
/// queue discipline — FIFO order, drop when `len >= queue_cap` — is
/// exactly the old per-deque behaviour (a unit test pins the cap-64
/// drop boundary against a `VecDeque` model).
#[derive(Default)]
struct DomainFifos {
    /// All domains' ring storage, `stride` slots each. Slack beyond the
    /// live `domains * stride` prefix (from a larger earlier grid) is
    /// dead data — indexing never leaves a domain's own window.
    slots: Vec<Nanos>,
    /// Per-domain head counters (wrapping).
    heads: Vec<u32>,
    /// Per-domain tail counters (wrapping).
    tails: Vec<u32>,
    /// Whether each domain has a request on a core.
    in_service: Vec<bool>,
    /// Power-of-two slots per domain (≥ the logical queue cap).
    stride: usize,
}

impl DomainFifos {
    /// Number of domains currently configured.
    #[cfg(test)]
    fn domains(&self) -> usize {
        self.heads.len()
    }

    /// Queued requests in domain `d`'s FIFO.
    #[inline]
    fn len(&self, d: usize) -> usize {
        self.tails[d].wrapping_sub(self.heads[d]) as usize
    }

    /// Whether domain `d`'s FIFO is empty.
    #[inline]
    fn is_empty(&self, d: usize) -> bool {
        self.heads[d] == self.tails[d]
    }

    /// Appends an arrival timestamp to domain `d`'s FIFO. The caller
    /// enforces the logical cap; the ring itself never overflows
    /// because `len <= queue_cap <= stride`.
    #[inline]
    fn push(&mut self, d: usize, v: Nanos) {
        debug_assert!(self.len(d) < self.stride, "ring overfull");
        let t = self.tails[d];
        self.slots[d * self.stride + (t as usize & (self.stride - 1))] = v;
        self.tails[d] = t.wrapping_add(1);
    }

    /// Pops the oldest arrival from domain `d`'s FIFO.
    #[inline]
    fn pop(&mut self, d: usize) -> Nanos {
        debug_assert!(!self.is_empty(d), "ready domain has pending work");
        let h = self.heads[d];
        let v = self.slots[d * self.stride + (h as usize & (self.stride - 1))];
        self.heads[d] = h.wrapping_add(1);
        v
    }

    /// Whether domain `d` has a request on a core.
    #[inline]
    fn in_service(&self, d: usize) -> bool {
        self.in_service[d]
    }

    #[inline]
    fn set_in_service(&mut self, d: usize, v: bool) {
        self.in_service[d] = v;
    }

    /// Reconfigures for `domains` domains with logical cap `queue_cap`,
    /// emptying every FIFO (counters to zero) while keeping the slab
    /// allocation when it is already large enough. Stale slot contents
    /// are unreachable once `head == tail`, so they are left in place.
    fn reset(&mut self, domains: usize, queue_cap: usize) {
        self.stride = queue_cap.max(1).next_power_of_two();
        let need = domains * self.stride;
        if self.slots.len() < need {
            self.slots.resize(need, Nanos::ZERO);
        }
        self.heads.clear();
        self.heads.resize(domains, 0);
        self.tails.clear();
        self.tails.resize(domains, 0);
        self.in_service.clear();
        self.in_service.resize(domains, false);
    }

    /// Whether the slab already covers `domains` domains at `queue_cap`
    /// (i.e. a [`DomainFifos::reset`] would not allocate).
    fn covers(&self, domains: usize, queue_cap: usize) -> bool {
        let stride = queue_cap.max(1).next_power_of_two();
        self.slots.len() >= domains * stride && self.heads.capacity() >= domains
    }
}

/// One host's world: open-loop Poisson arrivals over Zipf-ranked
/// domains, cores as the shared bottleneck.
///
/// The heap-backed pieces (domain FIFOs, the core run queue, the
/// latency histogram) are *borrowed* from a [`WorldArena`] so the
/// cluster grid reuses one set of allocations across hosts and cells
/// instead of rebuilding them per host; the histogram doubles as the
/// range accumulator (integer bucket adds are order-independent, so
/// recording hosts straight into one histogram is byte-identical to
/// merging per-host ones).
struct HostWorld<'a> {
    table: PlatformCosts,
    jitter: f64,
    arrival_mean_ns: f64,
    zipf_theta: f64,
    queue_cap: usize,
    cores: u32,
    busy_cores: u32,
    /// Domains on this host (the Zipf draw's range; the ring slab's
    /// configured domain count always matches).
    n_domains: u64,
    fifos: &'a mut DomainFifos,
    /// Domains ready to serve (idle, pending non-empty) waiting for a
    /// free core, FIFO. A domain is queued at most once: it enters only
    /// on its idle-with-work transition and leaves when started.
    core_queue: &'a mut VecDeque<u32>,
    completed: u64,
    dropped: u64,
    latency: &'a mut Histogram,
    /// Total core-time consumed by completed-or-running service.
    busy_ns: u64,
    rng: Rng,
}

enum Ev {
    /// The next client request reaches the host.
    Arrive,
    /// Domain `domain` finishes the request that arrived at `issued`.
    Finish { domain: u32, issued: Nanos },
}

impl HostWorld<'_> {
    #[inline]
    fn sample_service(&mut self) -> Nanos {
        let f = 1.0 + self.jitter * (self.rng.next_f64() * 2.0 - 1.0);
        self.table.service.scale(f)
    }

    /// Puts ready domain `d` on a core, or in line for one.
    fn dispatch(&mut self, d: u32, queue: &mut EventQueue<Ev>) {
        if self.busy_cores < self.cores {
            self.start(d, queue);
        } else {
            self.core_queue.push_back(d);
        }
    }

    fn start(&mut self, d: u32, queue: &mut EventQueue<Ev>) {
        let issued = self.fifos.pop(d as usize);
        self.fifos.set_in_service(d as usize, true);
        self.busy_cores += 1;
        let st = self.sample_service();
        self.busy_ns += st.as_nanos();
        queue.schedule_in(st, Ev::Finish { domain: d, issued });
    }
}

impl World for HostWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive => {
                // Self-perpetuating Poisson process: draw the next
                // inter-arrival first so the stream's RNG usage is
                // independent of what this arrival does.
                let gap = self.rng.exponential(self.arrival_mean_ns);
                queue.schedule_in(Nanos::from_nanos(gap as u64), Ev::Arrive);
                let d = self.rng.zipf(self.n_domains, self.zipf_theta) as u32;
                let du = d as usize;
                if self.fifos.in_service(du) || !self.fifos.is_empty(du) {
                    // Busy or already in line: join the domain FIFO.
                    if self.fifos.len(du) >= self.queue_cap {
                        self.dropped += 1;
                    } else {
                        self.fifos.push(du, now);
                    }
                } else {
                    self.fifos.push(du, now);
                    self.dispatch(d, queue);
                }
            }
            Ev::Finish { domain, issued } => {
                self.completed += 1;
                self.latency.record_nanos((now - issued) + self.table.rtt);
                self.fifos.set_in_service(domain as usize, false);
                self.busy_cores -= 1;
                if !self.fifos.is_empty(domain as usize) {
                    // Re-compete for a core behind anyone already waiting.
                    self.core_queue.push_back(domain);
                }
                while self.busy_cores < self.cores {
                    let Some(next) = self.core_queue.pop_front() else {
                        break;
                    };
                    self.start(next, queue);
                }
            }
        }
    }
}

/// One host's contribution to a cluster run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostResult {
    /// Requests served to completion.
    pub completed: u64,
    /// Requests dropped at a full domain queue.
    pub dropped: u64,
    /// Completed-request latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Core-nanoseconds of service consumed.
    pub busy_ns: u64,
}

/// Merged results of a host range (or the whole cluster).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterResult {
    /// Hosts merged into this result.
    pub hosts: u32,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests dropped at a full domain queue.
    pub dropped: u64,
    /// Completed-request latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Core-nanoseconds of service consumed across the range.
    pub busy_ns: u64,
}

impl ClusterResult {
    /// Folds `host` in. Callers must merge in host-index order — the
    /// histogram merge is exact, so order only matters for keeping the
    /// float throughput sums bit-identical across run arrangements.
    pub fn absorb(&mut self, host: &HostResult) {
        self.hosts += 1;
        self.completed += host.completed;
        self.dropped += host.dropped;
        self.latency.merge(&host.latency);
        self.busy_ns += host.busy_ns;
    }

    /// Folds another merged range in (same ordering contract).
    pub fn merge(&mut self, other: &ClusterResult) {
        self.hosts += other.hosts;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.latency.merge(&other.latency);
        self.busy_ns += other.busy_ns;
    }

    /// Folds a whole slice of merged ranges in with a single pass over
    /// the latency buckets ([`Histogram::merge_many`]). The scalar
    /// counters are integer sums, so this is byte-identical to calling
    /// [`merge`](Self::merge) once per element in order — the bench
    /// harness uses it to reduce a platform's host chunks in one go.
    pub fn merge_many(&mut self, others: &[&ClusterResult]) {
        for other in others {
            self.hosts += other.hosts;
            self.completed += other.completed;
            self.dropped += other.dropped;
            self.busy_ns += other.busy_ns;
        }
        let hists: Vec<&Histogram> = others.iter().map(|o| &o.latency).collect();
        self.latency.merge_many(&hists);
    }

    /// Served requests per second across the merged hosts.
    pub fn throughput_rps(&self, duration: Nanos) -> f64 {
        self.completed as f64 / duration.as_secs_f64()
    }

    /// Fraction of arrivals dropped at full queues.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.completed + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Mean core utilization over the merged hosts.
    pub fn utilization(&self, host_cores: u32, duration: Nanos) -> f64 {
        let capacity = u64::from(self.hosts) * u64::from(host_cores) * duration.as_nanos();
        if capacity == 0 {
            0.0
        } else {
            self.busy_ns as f64 / capacity as f64
        }
    }

    /// Latency quantile in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1_000_000.0
    }

    /// Per-host density: how many domains of this load class one host
    /// sustains at full cores, from the observed mean service time and
    /// the per-domain offered rate. The headline "containers per host"
    /// number the platform comparison is about.
    pub fn density_domains_per_host(&self, params: &ClusterParams) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let mean_service_ns = self.busy_ns as f64 / self.completed as f64;
        let per_domain_rps =
            params.offered_rps() / params.hosts as f64 / f64::from(params.domains_per_host);
        let cores_per_domain = per_domain_rps * mean_service_ns / 1e9;
        f64::from(params.host_cores) / cores_per_domain
    }
}

/// Worlds assembled from freshly allocated (or grown) storage.
static ARENA_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Worlds assembled entirely from recycled arena storage.
static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(allocated, reused)` world-construction counters across
/// every thread's arena, for the bench ledger: in steady state the grid
/// should report almost all reuses — one allocation per worker thread
/// per storage growth, not one per host.
pub fn arena_counters() -> (u64, u64) {
    (
        ARENA_ALLOCS.load(Ordering::Relaxed),
        ARENA_REUSES.load(Ordering::Relaxed),
    )
}

/// Reusable backing storage for [`HostWorld`]s and their event queues.
///
/// Every host in the cluster grid needs the same heap structure — the
/// flat [`DomainFifos`] ring slab, a core run queue, a 2 048-bucket
/// latency histogram, and a calendar-queue wheel — so the arena keeps
/// one set alive and hands it out reset instead of letting each host
/// reallocate it. The resets restore the exact logical state of fresh
/// storage ([`EventQueue::reset`] rewinds even the adaptive bucket
/// width), so arena-backed runs are byte-identical to
/// freshly-allocated ones — a feature-gated proptest pins that
/// equivalence.
#[derive(Default)]
pub struct WorldArena {
    fifos: DomainFifos,
    core_queue: VecDeque<u32>,
    queue: Option<EventQueue<Ev>>,
}

impl WorldArena {
    /// Creates an empty arena; storage is allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the pooled storage for a world of `domains` domains with
    /// per-domain queue cap `queue_cap` and bumps the global alloc/reuse
    /// counters. The ring slab keeps its buffer whenever it already
    /// covers the requested geometry.
    fn prepare(
        &mut self,
        domains: usize,
        queue_cap: usize,
        queue_capacity: usize,
    ) -> EventQueue<Ev> {
        let reused = self.queue.is_some() && self.fifos.covers(domains, queue_cap);
        if reused {
            ARENA_REUSES.fetch_add(1, Ordering::Relaxed);
        } else {
            ARENA_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        self.fifos.reset(domains, queue_cap);
        self.core_queue.clear();
        match self.queue.take() {
            Some(mut q) => {
                q.reset();
                q
            }
            None => EventQueue::with_capacity(queue_capacity),
        }
    }
}

thread_local! {
    /// One arena per worker thread: the parallel runner hands each
    /// thread a stream of grid cells, and every cell on that thread
    /// reuses the same world storage.
    static ARENA: RefCell<WorldArena> = RefCell::new(WorldArena::new());
}

/// Simulates one host of the cluster. Pure function of
/// `(table, params, host_index)` — the unit every driver composes from.
pub fn simulate_host(table: &PlatformCosts, params: &ClusterParams, host: u32) -> HostResult {
    let mut arena = WorldArena::new();
    let r = run_cluster_range_in(&mut arena, table, params, host, 1);
    HostResult {
        completed: r.completed,
        dropped: r.dropped,
        latency: r.latency,
        busy_ns: r.busy_ns,
    }
}

/// Simulates the contiguous host range `[first, first + count)` into a
/// single [`ClusterResult`], drawing world storage from `arena`.
///
/// Byte-identical to simulating each host with fresh storage and
/// merging in host-index order: the resets restore fresh logical state,
/// and the shared latency histogram accumulates integer bucket counts,
/// which sum the same whether recorded directly or merged per host.
pub fn run_cluster_range_in(
    arena: &mut WorldArena,
    table: &PlatformCosts,
    params: &ClusterParams,
    first: u32,
    count: u32,
) -> ClusterResult {
    let mut out = ClusterResult::default();
    for host in first..first + count {
        out.hosts += 1;
        let clients = shard_share(params.clients, u64::from(params.hosts), u64::from(host));
        if clients == 0 || params.domains_per_host == 0 {
            continue;
        }
        let n = params.domains_per_host as usize;
        let queue = arena.prepare(n, params.queue_cap.max(1), n + 2);
        let world = HostWorld {
            table: *table,
            jitter: 0.15,
            arrival_mean_ns: params.think_time.as_nanos() as f64 / clients as f64,
            zipf_theta: params.zipf_theta,
            queue_cap: params.queue_cap.max(1),
            cores: params.host_cores.max(1),
            busy_cores: 0,
            n_domains: n as u64,
            fifos: &mut arena.fifos,
            core_queue: &mut arena.core_queue,
            completed: 0,
            dropped: 0,
            latency: &mut out.latency,
            busy_ns: 0,
            rng: Rng::substream(params.seed, u64::from(host)),
        };
        let mut sim = Simulation::from_parts(world, queue);
        sim.queue_mut().schedule_at(Nanos::ZERO, Ev::Arrive);
        sim.run_until(params.duration);
        let (world, queue) = sim.into_parts();
        out.completed += world.completed;
        out.dropped += world.dropped;
        out.busy_ns += world.busy_ns;
        arena.queue = Some(queue);
    }
    out
}

/// Simulates the contiguous host range `[first, first + count)` and
/// merges in host-index order, using the calling thread's arena (world
/// storage is recycled across every range this thread simulates).
pub fn run_cluster_range(
    table: &PlatformCosts,
    params: &ClusterParams,
    first: u32,
    count: u32,
) -> ClusterResult {
    ARENA.with(|arena| run_cluster_range_in(&mut arena.borrow_mut(), table, params, first, count))
}

/// Simulates the whole cluster serially — the golden reference the
/// parallel harness cells must reproduce byte-for-byte.
pub fn run_cluster(table: &PlatformCosts, params: &ClusterParams) -> ClusterResult {
    run_cluster_range(table, params, 0, params.hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::http::ServerModel;
    use xc_runtimes::cloud::CloudEnv;
    use xc_runtimes::platform::Platform;
    use xc_sim::cost::CostModel;

    fn table(platform: Platform) -> PlatformCosts {
        let costs = CostModel::skylake_cloud();
        PlatformCosts::derive(
            &ServerModel {
                platform,
                profile: apps::microservice(),
                workers: 1,
                cores: 1,
            },
            &costs,
        )
    }

    fn params() -> ClusterParams {
        ClusterParams {
            hosts: 4,
            domains_per_host: 6,
            clients: 20_000,
            think_time: Nanos::from_secs(1),
            duration: Nanos::from_millis(80),
            queue_cap: 64,
            zipf_theta: 0.4,
            host_cores: 16,
            seed: 11,
        }
    }

    #[test]
    fn fifo_ring_matches_vecdeque_at_cap_64_drop_boundary() {
        // Drive the flat ring and a per-domain VecDeque model through an
        // identical operation stream with the production drop rule
        // (`len >= cap` ⇒ drop) at the study's cap of 64, crossing the
        // boundary repeatedly: fill past full, drain partially, refill.
        const CAP: usize = 64;
        const DOMS: usize = 3;
        let mut ring = DomainFifos::default();
        ring.reset(DOMS, CAP);
        assert_eq!(ring.domains(), DOMS);
        let mut model: Vec<VecDeque<Nanos>> = vec![VecDeque::new(); DOMS];
        let mut rng = Rng::new(7);
        let mut drops = (0u64, 0u64);
        for step in 0..10_000u64 {
            let d = (rng.next_u64() % DOMS as u64) as usize;
            let push = !rng.next_u64().is_multiple_of(3); // pushes outnumber pops
            if push {
                let v = Nanos::from_nanos(step);
                if ring.len(d) >= CAP {
                    drops.0 += 1;
                } else {
                    ring.push(d, v);
                }
                if model[d].len() >= CAP {
                    drops.1 += 1;
                } else {
                    model[d].push_back(v);
                }
            } else if !ring.is_empty(d) {
                assert_eq!(Some(ring.pop(d)), model[d].pop_front());
            } else {
                assert!(model[d].is_empty());
            }
            assert_eq!(ring.len(d), model[d].len());
            assert_eq!(ring.is_empty(d), model[d].is_empty());
        }
        assert_eq!(drops.0, drops.1);
        assert!(drops.0 > 0, "stream must actually hit the drop boundary");
        // Residual contents drain in identical FIFO order.
        for (d, m) in model.iter_mut().enumerate() {
            while let Some(v) = m.pop_front() {
                assert_eq!(ring.pop(d), v);
            }
            assert!(ring.is_empty(d));
        }
        // A reset empties every FIFO without reallocating the slab.
        ring.push(1, Nanos::from_nanos(9));
        ring.set_in_service(2, true);
        assert!(ring.covers(DOMS, CAP));
        ring.reset(DOMS, CAP);
        assert!(ring.is_empty(1) && !ring.in_service(2));
    }

    #[test]
    fn deterministic_and_range_merge_invariant() {
        let t = table(Platform::docker(CloudEnv::LocalCluster, true));
        let p = params();
        let a = run_cluster(&t, &p);
        let b = run_cluster(&t, &p);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency, b.latency);
        // Splitting the host range anywhere and merging in order is the
        // same computation.
        for split in [1, 2, 3] {
            let mut merged = run_cluster_range(&t, &p, 0, split);
            merged.merge(&run_cluster_range(&t, &p, split, p.hosts - split));
            assert_eq!(merged.hosts, a.hosts);
            assert_eq!(merged.completed, a.completed);
            assert_eq!(merged.dropped, a.dropped);
            assert_eq!(merged.latency, a.latency);
            assert_eq!(merged.busy_ns, a.busy_ns);
        }
    }

    #[test]
    fn hosts_differ_but_all_serve() {
        // Substream seeding: hosts are distinct worlds, none degenerate.
        let t = table(Platform::docker(CloudEnv::LocalCluster, true));
        let p = params();
        let h0 = simulate_host(&t, &p, 0);
        let h1 = simulate_host(&t, &p, 1);
        assert!(h0.completed > 0 && h1.completed > 0);
        assert_ne!(
            h0.latency, h1.latency,
            "distinct substreams must decorrelate hosts"
        );
    }

    #[test]
    fn slow_platform_saturates_first() {
        let p = params();
        let docker = run_cluster(&table(Platform::docker(CloudEnv::LocalCluster, true)), &p);
        let gvisor = run_cluster(&table(Platform::gvisor(CloudEnv::LocalCluster, true)), &p);
        assert!(
            gvisor.completed < docker.completed,
            "gvisor {} vs docker {}",
            gvisor.completed,
            docker.completed
        );
        assert!(
            gvisor.quantile_ms(0.99) > docker.quantile_ms(0.99),
            "gvisor p99 {} vs docker p99 {}",
            gvisor.quantile_ms(0.99),
            docker.quantile_ms(0.99)
        );
        assert!(
            gvisor.density_domains_per_host(&p) < docker.density_domains_per_host(&p),
            "density must favor the faster platform"
        );
    }

    #[test]
    fn load_drives_utilization_and_drops() {
        let t = table(Platform::docker(CloudEnv::LocalCluster, true));
        let mut light = params();
        light.clients = 4_000;
        let mut heavy = params();
        heavy.clients = 200_000;
        let l = run_cluster(&t, &light);
        let h = run_cluster(&t, &heavy);
        assert!(h.utilization(16, heavy.duration) > l.utilization(16, light.duration) * 2.0);
        assert!(h.drop_rate() > l.drop_rate());
        assert!(h.quantile_ms(0.99) > l.quantile_ms(0.99));
    }
}
