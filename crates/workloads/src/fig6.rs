//! Figure 6 — comparison against Graphene and Unikernel (§5.5).
//!
//! Three panels on the local PowerEdge cluster:
//!
//! * **(a)** NGINX, one worker, one dedicated core: Graphene vs Unikernel
//!   vs X-Container. X ≈ Unikernel, ≈ 2× Graphene.
//! * **(b)** NGINX, four workers: Graphene vs X-Container only (a
//!   unikernel cannot run four processes). X > 1.5× Graphene, whose
//!   workers coordinate shared POSIX state over IPC.
//! * **(c)** Two PHP CGI servers backed by MySQL, in the three topologies
//!   of Figure 7: **Shared** (one DB for both), **Dedicated** (one DB
//!   each), and **Dedicated & Merged** (PHP and MySQL in *one*
//!   container — impossible on a single-process unikernel). Graphene
//!   cannot run the PHP CGI server at all.
//!
//! The PHP worker is a blocking, single-threaded server: while its query
//! is in flight it serves nobody, so the cross-VM round trip (wire +
//! wake-up scheduling at both ends) is the dominant term the Merged
//! topology deletes — the mechanism behind the ~3× over
//! Unikernel-Dedicated.

use xc_runtimes::cloud::CloudEnv;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::apps::{mysql_query, nginx_static, nginx_static_multiworker, php_page};

/// The §5.5 contestants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibOsPlatform {
    /// Graphene on Linux (no security module).
    Graphene,
    /// Rumprun unikernel on Xen.
    Unikernel,
    /// X-Container.
    XContainer,
}

impl LibOsPlatform {
    /// All three, in figure order (G, U, X).
    pub const ALL: [LibOsPlatform; 3] = [
        LibOsPlatform::Graphene,
        LibOsPlatform::Unikernel,
        LibOsPlatform::XContainer,
    ];

    /// Single-letter figure label.
    pub fn letter(self) -> &'static str {
        match self {
            LibOsPlatform::Graphene => "G",
            LibOsPlatform::Unikernel => "U",
            LibOsPlatform::XContainer => "X",
        }
    }

    /// The underlying platform model.
    pub fn platform(self) -> Platform {
        let cloud = CloudEnv::LocalCluster;
        match self {
            LibOsPlatform::Graphene => Platform::graphene(cloud),
            LibOsPlatform::Unikernel => Platform::unikernel(cloud),
            LibOsPlatform::XContainer => Platform::x_container(cloud, true),
        }
    }
}

/// Figure 6a: NGINX with a single worker on one dedicated core.
pub fn fig6a_nginx_1worker(p: LibOsPlatform, costs: &CostModel) -> f64 {
    let platform = p.platform();
    let service = nginx_static().service_time(&platform, costs);
    1.0 / service.as_secs_f64()
}

/// Figure 6b: NGINX with four worker processes (unsupported on a
/// unikernel — returns `None`).
pub fn fig6b_nginx_4workers(p: LibOsPlatform, costs: &CostModel) -> Option<f64> {
    let platform = p.platform();
    if !platform.supports_multiprocess() {
        return None;
    }
    let service = nginx_static_multiworker().service_time(&platform, costs);
    // Four workers on four cores, minus mild shared-socket contention.
    Some(4.0 * 0.92 / service.as_secs_f64())
}

/// The Figure 7 database topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbTopology {
    /// Both PHP servers share one MySQL instance (its own VM/container).
    Shared,
    /// Each PHP server has a dedicated MySQL instance.
    Dedicated,
    /// PHP and its dedicated MySQL share one container (X-Container
    /// only: needs two concurrent processes in one instance).
    DedicatedMerged,
}

impl DbTopology {
    /// All topologies in figure order.
    pub const ALL: [DbTopology; 3] = [
        DbTopology::Shared,
        DbTopology::Dedicated,
        DbTopology::DedicatedMerged,
    ];

    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            DbTopology::Shared => "Shared",
            DbTopology::Dedicated => "Dedicated",
            DbTopology::DedicatedMerged => "Dedicated&Merged",
        }
    }
}

/// Scheduling wake-up latency added to each end of a blocking RPC that
/// crosses VM/container boundaries (interrupt delivery + runqueue entry).
const CROSS_VM_WAKEUP: Nanos = Nanos::from_micros(15);
/// The same over an in-container unix socket.
const LOCAL_WAKEUP: Nanos = Nanos::from_micros(4);
/// Loopback "wire" latency inside one container.
const LOOPBACK_LATENCY: Nanos = Nanos::from_micros(2);

/// Latency of one blocking MySQL query round trip as seen by the PHP
/// worker.
fn query_latency(p: LibOsPlatform, merged: bool, costs: &CostModel) -> Nanos {
    let platform = p.platform();
    let db_service = mysql_query().service_time(&platform, costs);
    if merged {
        LOOPBACK_LATENCY * 2 + LOCAL_WAKEUP * 2 + db_service
    } else {
        let wire = platform.net_stack(costs).wire_latency(costs);
        // Wake-up handling runs in the guest kernel: slower kernels wake
        // slower.
        let wakeups = (CROSS_VM_WAKEUP * 2).scale(platform.kernel_ops_multiplier());
        wire * 2 + wakeups + db_service
    }
}

/// Figure 6c: total throughput of the two PHP servers under a topology.
///
/// Returns `None` for unsupported combinations: Graphene cannot run the
/// PHP CGI server at all; a unikernel cannot merge two processes into
/// one instance.
pub fn fig6c_php_mysql(p: LibOsPlatform, topology: DbTopology, costs: &CostModel) -> Option<f64> {
    if p == LibOsPlatform::Graphene {
        return None; // "Graphene does not support the PHP CGI server"
    }
    let merged = topology == DbTopology::DedicatedMerged;
    if merged && !p.platform().supports_multiprocess() {
        return None;
    }
    let platform = p.platform();
    let php_cpu = php_page().service_time(&platform, costs);
    let per_request = php_cpu + query_latency(p, merged, costs);
    // Single-threaded blocking PHP worker: one request in flight each.
    let per_server = 1.0 / per_request.as_secs_f64();

    // Database capacity can bind: one shared MySQL serves both PHP
    // servers; dedicated/merged give each server its own.
    let db_capacity = 1.0 / mysql_query().service_time(&platform, costs).as_secs_f64();
    let total = match topology {
        DbTopology::Shared => (2.0 * per_server).min(db_capacity),
        DbTopology::Dedicated | DbTopology::DedicatedMerged => 2.0 * per_server.min(db_capacity),
    };
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn fig6a_x_matches_unikernel_doubles_graphene() {
        let costs = c();
        let g = fig6a_nginx_1worker(LibOsPlatform::Graphene, &costs);
        let u = fig6a_nginx_1worker(LibOsPlatform::Unikernel, &costs);
        let x = fig6a_nginx_1worker(LibOsPlatform::XContainer, &costs);
        let xu = x / u;
        let xg = x / g;
        assert!((0.85..1.35).contains(&xu), "X/U {xu:.2}");
        assert!((1.6..2.8).contains(&xg), "X/G {xg:.2}");
    }

    #[test]
    fn fig6b_x_beats_graphene_by_half() {
        let costs = c();
        let g = fig6b_nginx_4workers(LibOsPlatform::Graphene, &costs).unwrap();
        let x = fig6b_nginx_4workers(LibOsPlatform::XContainer, &costs).unwrap();
        assert!(fig6b_nginx_4workers(LibOsPlatform::Unikernel, &costs).is_none());
        let ratio = x / g;
        assert!(ratio > 1.5, "X/G multi-worker {ratio:.2}");
        assert!(ratio < 3.5, "X/G multi-worker {ratio:.2}");
    }

    #[test]
    fn fig6c_support_matrix() {
        let costs = c();
        assert!(fig6c_php_mysql(LibOsPlatform::Graphene, DbTopology::Shared, &costs).is_none());
        assert!(fig6c_php_mysql(
            LibOsPlatform::Unikernel,
            DbTopology::DedicatedMerged,
            &costs
        )
        .is_none());
        for topo in DbTopology::ALL {
            assert!(
                fig6c_php_mysql(LibOsPlatform::XContainer, topo, &costs).is_some(),
                "X must support {topo:?}"
            );
        }
    }

    #[test]
    fn fig6c_x_beats_unikernel_by_40_percent() {
        // "With Shared and Dedicated configurations, X-Containers
        // outperformed Unikernel by over 40%."
        let costs = c();
        for topo in [DbTopology::Shared, DbTopology::Dedicated] {
            let u = fig6c_php_mysql(LibOsPlatform::Unikernel, topo, &costs).unwrap();
            let x = fig6c_php_mysql(LibOsPlatform::XContainer, topo, &costs).unwrap();
            let gain = x / u;
            assert!((1.25..2.0).contains(&gain), "{topo:?}: X/U {gain:.2}");
        }
    }

    #[test]
    fn fig6c_merged_triples_unikernel_dedicated() {
        // "X-Container throughput was about three times that of the
        // Unikernel Dedicated configuration."
        let costs = c();
        let u_ded =
            fig6c_php_mysql(LibOsPlatform::Unikernel, DbTopology::Dedicated, &costs).unwrap();
        let x_merged = fig6c_php_mysql(
            LibOsPlatform::XContainer,
            DbTopology::DedicatedMerged,
            &costs,
        )
        .unwrap();
        let ratio = x_merged / u_ded;
        assert!((2.0..4.0).contains(&ratio), "merged/U-dedicated {ratio:.2}");
    }

    #[test]
    fn fig6c_shared_binds_on_db() {
        // One MySQL serving two PHP streams caps below two dedicated DBs.
        let costs = c();
        let shared =
            fig6c_php_mysql(LibOsPlatform::XContainer, DbTopology::Shared, &costs).unwrap();
        let dedicated =
            fig6c_php_mysql(LibOsPlatform::XContainer, DbTopology::Dedicated, &costs).unwrap();
        assert!(shared <= dedicated);
    }

    #[test]
    fn letters_and_labels() {
        assert_eq!(LibOsPlatform::Graphene.letter(), "G");
        assert_eq!(DbTopology::DedicatedMerged.label(), "Dedicated&Merged");
    }
}
