//! Key-value benchmark clients: `memtier_benchmark` and YCSB.
//!
//! Table 1 drives MongoDB with YCSB and memcached/Redis with
//! `memtier_benchmark` (1:10 SET:GET, §5.3). This module generates the
//! actual operation streams — Zipf-distributed keys, configurable
//! read/write mixes — and executes them against a working in-memory
//! store with per-op platform costing, giving the macro numbers a
//! data-bearing backend instead of a pure cost formula.

use std::collections::HashMap;

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::rng::Rng;
use xc_sim::stats::Histogram;
use xc_sim::time::Nanos;

use crate::http::RequestProfile;

/// One client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(u64),
    /// Write a key with a payload size.
    Set(u64, u32),
}

/// A key-value workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct KvWorkload {
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipf skew θ (0 = uniform; YCSB default ≈ 0.99 clamped below 1).
    pub theta: f64,
    /// Fraction of reads.
    pub read_fraction: f64,
    /// Value size in bytes.
    pub value_bytes: u32,
}

impl KvWorkload {
    /// memtier's 1:10 SET:GET mix over 10 000 keys (§5.3).
    pub fn memtier() -> Self {
        KvWorkload {
            keys: 10_000,
            theta: 0.0,
            read_fraction: 10.0 / 11.0,
            value_bytes: 100,
        }
    }

    /// YCSB workload B (95% reads, Zipfian) as used for MongoDB.
    pub fn ycsb_b() -> Self {
        KvWorkload {
            keys: 100_000,
            theta: 0.9,
            read_fraction: 0.95,
            value_bytes: 1_000,
        }
    }

    /// Samples the next operation.
    pub fn next_op(&self, rng: &mut Rng) -> KvOp {
        let key = rng.zipf(self.keys, self.theta);
        if rng.chance(self.read_fraction) {
            KvOp::Get(key)
        } else {
            KvOp::Set(key, self.value_bytes)
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct KvRunResult {
    /// Operations per second.
    pub throughput_ops: f64,
    /// GET hit ratio (misses = keys never written).
    pub hit_ratio: f64,
    /// Per-op service-time distribution (ns).
    pub latency: Histogram,
    /// Final number of resident keys.
    pub resident_keys: usize,
}

/// Per-op kernel footprints: a GET is lighter than a SET (no value
/// upload, smaller response for misses).
fn op_profile(op: KvOp, base: &RequestProfile) -> RequestProfile {
    match op {
        KvOp::Get(_) => base.clone(),
        KvOp::Set(_, bytes) => RequestProfile {
            recv_bytes: base.recv_bytes + u64::from(bytes),
            send_bytes: 16, // "STORED"
            app_compute: base.app_compute + Nanos::from_nanos(400),
            ..base.clone()
        },
    }
}

/// Executes `ops` operations of `workload` against a real in-memory
/// store hosted on `platform`, returning measured results.
pub fn run_kv(
    workload: &KvWorkload,
    base_profile: &RequestProfile,
    platform: &Platform,
    costs: &CostModel,
    ops: u64,
    seed: u64,
) -> KvRunResult {
    let mut rng = Rng::new(seed);
    let mut store: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut latency = Histogram::new();
    let mut total = Nanos::ZERO;
    let mut gets = 0u64;
    let mut hits = 0u64;

    for _ in 0..ops {
        let op = workload.next_op(&mut rng);
        let service = op_profile(op, base_profile).service_time(platform, costs);
        total += service;
        latency.record_nanos(service);
        match op {
            KvOp::Get(k) => {
                gets += 1;
                if store.contains_key(&k) {
                    hits += 1;
                }
            }
            KvOp::Set(k, bytes) => {
                store.insert(k, vec![0u8; bytes as usize]);
            }
        }
    }

    KvRunResult {
        throughput_ops: ops as f64 / total.as_secs_f64(),
        hit_ratio: if gets == 0 {
            0.0
        } else {
            hits as f64 / gets as f64
        },
        latency,
        resident_keys: store.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::memcached;
    use xc_runtimes::cloud::CloudEnv;

    fn run(platform: &Platform, workload: &KvWorkload) -> KvRunResult {
        let costs = CostModel::skylake_cloud();
        run_kv(workload, &memcached(), platform, &costs, 20_000, 7)
    }

    #[test]
    fn memtier_mix_is_one_to_ten() {
        let mut rng = Rng::new(3);
        let w = KvWorkload::memtier();
        let sets = (0..50_000)
            .filter(|_| matches!(w.next_op(&mut rng), KvOp::Set(..)))
            .count();
        let ratio = sets as f64 / 50_000.0;
        assert!((ratio - 1.0 / 11.0).abs() < 0.01, "set fraction {ratio}");
    }

    #[test]
    fn zipf_concentrates_ycsb_hits() {
        // Skewed reads hit the written head of the keyspace quickly.
        let p = Platform::docker(CloudEnv::AmazonEc2, true);
        let ycsb = run(&p, &KvWorkload::ycsb_b());
        let uniform = run(
            &p,
            &KvWorkload {
                theta: 0.0,
                ..KvWorkload::ycsb_b()
            },
        );
        assert!(
            ycsb.hit_ratio > uniform.hit_ratio,
            "zipf {:.3} vs uniform {:.3}",
            ycsb.hit_ratio,
            uniform.hit_ratio
        );
    }

    #[test]
    fn x_container_outpaces_docker_on_memtier() {
        let docker = run(
            &Platform::docker(CloudEnv::AmazonEc2, true),
            &KvWorkload::memtier(),
        );
        let xc = run(
            &Platform::x_container(CloudEnv::AmazonEc2, true),
            &KvWorkload::memtier(),
        );
        let gain = xc.throughput_ops / docker.throughput_ops;
        assert!((1.2..2.6).contains(&gain), "memtier gain {gain:.2}");
    }

    #[test]
    fn sets_cost_more_than_gets() {
        let costs = CostModel::skylake_cloud();
        let p = Platform::docker(CloudEnv::AmazonEc2, true);
        let get = op_profile(KvOp::Get(1), &memcached()).service_time(&p, &costs);
        let set = op_profile(KvOp::Set(1, 1_000), &memcached()).service_time(&p, &costs);
        assert!(set > get);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = Platform::docker(CloudEnv::GoogleGce, false);
        let a = run(&p, &KvWorkload::memtier());
        let b = run(&p, &KvWorkload::memtier());
        assert_eq!(a.throughput_ops, b.throughput_ops);
        assert_eq!(a.resident_keys, b.resident_keys);
    }

    #[test]
    fn store_really_stores() {
        let p = Platform::docker(CloudEnv::AmazonEc2, true);
        let r = run(&p, &KvWorkload::memtier());
        assert!(r.resident_keys > 500, "writes landed: {}", r.resident_keys);
        assert!(r.latency.count() == 20_000);
    }
}
